"""A Turtle-subset parser and serializer.

Covers the Turtle most datasets are published in: ``@prefix`` / ``@base``
directives, prefixed names, predicate lists (``;``), object lists (``,``),
the ``a`` keyword, numeric / boolean / language-tagged / typed literals,
long strings, blank node labels, and comments. Collections ``( ... )`` and
anonymous blank-node property lists ``[ p o ]`` are out of scope (rare in
bulk data).
"""

from __future__ import annotations

import re
from typing import Iterator

from .graph import Graph
from .namespaces import RDF
from .terms import (
    BNode,
    Literal,
    Subject,
    Term,
    Triple,
    URI,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
)


class TurtleError(ValueError):
    """Malformed Turtle input."""


_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<comment>\#[^\n]*)
      | (?P<longstring>\"\"\"(?s:.*?)\"\"\"(?!\"))
      | (?P<string>"(?:[^"\\\n]|\\.)*")
      | (?P<iri><[^<>\s]*>)
      | (?P<bnode>_:[A-Za-z0-9_.-]+)
      | (?P<directive>@prefix\b|@base\b)
      | (?P<langtag>@[A-Za-z]+(?:-[A-Za-z0-9]+)*)
      | (?P<dtype>\^\^)
      | (?P<number>[+-]?(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?))
      | (?P<pname>(?:[A-Za-z_][A-Za-z0-9_.-]*)?:[A-Za-z0-9_][A-Za-z0-9_.-]*|(?:[A-Za-z_][A-Za-z0-9_.-]*)?:)
      | (?P<keyword>\ba\b|\btrue\b|\bfalse\b)
      | (?P<punct>[;,.\[\]])
    )
    """,
    re.VERBOSE,
)

_ESCAPES = {
    "\\n": "\n", "\\r": "\r", "\\t": "\t",
    '\\"': '"', "\\\\": "\\",
}


def _unescape(body: str) -> str:
    return re.sub(r"\\[nrt\"\\]", lambda m: _ESCAPES[m.group(0)], body)


class _Token:
    __slots__ = ("kind", "text")

    def __init__(self, kind: str, text: str) -> None:
        self.kind = kind
        self.text = text

    def __repr__(self) -> str:
        return f"{self.kind}:{self.text}"


def _tokenize(text: str) -> list[_Token]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match or match.end() == position:
            if text[position:].strip() == "":
                break
            raise TurtleError(
                f"cannot tokenize Turtle at: {text[position:position + 40]!r}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "comment":
            continue
        if kind == "directive":
            kind = "keyword"
        tokens.append(_Token(kind.upper(), match.group(match.lastgroup)))
    tokens.append(_Token("EOF", ""))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.position = 0
        self.prefixes: dict[str, str] = {}
        self.base: str | None = None

    @property
    def current(self) -> _Token:
        return self.tokens[self.position]

    def advance(self) -> _Token:
        token = self.current
        self.position += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.current
        if token.kind != kind or (text is not None and token.text != text):
            raise TurtleError(f"expected {text or kind}, found {token}")
        return self.advance()

    # ------------------------------------------------------------ document

    def parse(self) -> Iterator[Triple]:
        while self.current.kind != "EOF":
            if self.current.kind == "KEYWORD" and self.current.text == "@prefix":
                self._parse_prefix()
            elif self.current.kind == "KEYWORD" and self.current.text == "@base":
                self._parse_base()
            else:
                yield from self._parse_statement()

    def _parse_prefix(self) -> None:
        self.advance()
        pname = self.expect("PNAME").text
        prefix = pname[:-1] if pname.endswith(":") else pname.split(":", 1)[0]
        iri = self.expect("IRI").text[1:-1]
        self.prefixes[prefix] = self._resolve(iri)
        self.expect("PUNCT", ".")

    def _parse_base(self) -> None:
        self.advance()
        self.base = self.expect("IRI").text[1:-1]
        self.expect("PUNCT", ".")

    def _parse_statement(self) -> Iterator[Triple]:
        subject = self._parse_subject()
        while True:
            predicate = self._parse_predicate()
            while True:
                obj = self._parse_object()
                yield Triple(subject, predicate, obj)
                if self.current.kind == "PUNCT" and self.current.text == ",":
                    self.advance()
                    continue
                break
            if self.current.kind == "PUNCT" and self.current.text == ";":
                self.advance()
                # tolerate trailing ';' before '.'
                if self.current.kind == "PUNCT" and self.current.text == ".":
                    break
                continue
            break
        self.expect("PUNCT", ".")

    # --------------------------------------------------------------- terms

    def _resolve(self, iri: str) -> str:
        if self.base and not re.match(r"^[A-Za-z][A-Za-z0-9+.-]*:", iri):
            return self.base + iri
        return iri

    def _parse_iri(self) -> URI:
        token = self.current
        if token.kind == "IRI":
            self.advance()
            return URI(self._resolve(token.text[1:-1]))
        if token.kind == "PNAME":
            self.advance()
            prefix, _, local = token.text.partition(":")
            if prefix not in self.prefixes:
                raise TurtleError(f"undeclared prefix {prefix!r}:")
            return URI(self.prefixes[prefix] + local)
        raise TurtleError(f"expected IRI, found {token}")

    def _parse_subject(self) -> Subject:
        if self.current.kind == "BNODE":
            return BNode(self.advance().text[2:])
        return self._parse_iri()

    def _parse_predicate(self) -> URI:
        if self.current.kind == "KEYWORD" and self.current.text == "a":
            self.advance()
            return RDF.type
        return self._parse_iri()

    def _parse_object(self) -> Term:
        token = self.current
        if token.kind == "BNODE":
            self.advance()
            return BNode(token.text[2:])
        if token.kind in ("IRI", "PNAME"):
            return self._parse_iri()
        if token.kind in ("STRING", "LONGSTRING"):
            self.advance()
            body = token.text[3:-3] if token.kind == "LONGSTRING" else token.text[1:-1]
            value = _unescape(body)
            if self.current.kind == "LANGTAG":
                return Literal(value, lang=self.advance().text[1:])
            if self.current.kind == "DTYPE":
                self.advance()
                return Literal(value, datatype=self._parse_iri().value)
            return Literal(value)
        if token.kind == "NUMBER":
            self.advance()
            text = token.text
            if re.fullmatch(r"[+-]?\d+", text):
                return Literal(text, datatype=XSD_INTEGER)
            if "e" in text.lower():
                return Literal(text, datatype=XSD_DOUBLE)
            return Literal(text, datatype=XSD_DECIMAL)
        if token.kind == "KEYWORD" and token.text in ("true", "false"):
            self.advance()
            return Literal(token.text, datatype=XSD_BOOLEAN)
        raise TurtleError(f"expected an object term, found {token}")


def parse_turtle(text: str) -> Iterator[Triple]:
    """Yield triples from a Turtle document."""
    return _Parser(text).parse()


def load_turtle(text: str) -> Graph:
    """Parse a Turtle document into a Graph."""
    return Graph(parse_turtle(text))


def serialize_turtle(graph: Graph, prefixes: dict[str, str] | None = None) -> str:
    """Serialize a graph as (grouped) Turtle with optional prefix table."""
    prefixes = prefixes or {}
    reverse = sorted(prefixes.items(), key=lambda kv: -len(kv[1]))

    def shorten(term: Term) -> str:
        if isinstance(term, URI):
            for prefix, base in reverse:
                if term.value.startswith(base) and len(term.value) > len(base):
                    local = term.value[len(base):]
                    if re.fullmatch(r"[A-Za-z0-9_][A-Za-z0-9_.-]*", local):
                        return f"{prefix}:{local}"
        return term.n3()

    lines = [f"@prefix {p}: <{iri}> ." for p, iri in prefixes.items()]
    if lines:
        lines.append("")
    for subject in sorted(graph.subjects(), key=lambda s: s.n3()):
        triples = sorted(
            graph.triples_for_subject(subject),
            key=lambda t: (t.predicate.value, t.object.n3()),
        )
        by_predicate: dict[URI, list[Term]] = {}
        for triple in triples:
            by_predicate.setdefault(triple.predicate, []).append(triple.object)
        parts = []
        for predicate, objects in by_predicate.items():
            rendered = ", ".join(shorten(o) for o in objects)
            name = "a" if predicate == RDF.type else shorten(predicate)
            parts.append(f"{name} {rendered}")
        lines.append(f"{shorten(subject)} " + " ;\n    ".join(parts) + " .")
    return "\n".join(lines) + "\n"
