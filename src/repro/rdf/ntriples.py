"""N-Triples parser and serializer.

N-Triples is the line-oriented RDF exchange syntax; every workload generator
in :mod:`repro.workloads` can round-trip through it, and the loaders accept
it directly.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, TextIO

from .terms import BNode, Literal, Term, Triple, URI

_IRI = r"<([^>]*)>"
_BNODE = r"_:([A-Za-z0-9_.-]+)"
_LITERAL = r'"((?:[^"\\]|\\.)*)"(?:\^\^<([^>]*)>|@([A-Za-z0-9-]+))?'

_TERM_RE = re.compile(rf"\s*(?:{_IRI}|{_BNODE}|{_LITERAL})")

_ESCAPES = {
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
    '\\"': '"',
    "\\\\": "\\",
}
_ESCAPE_RE = re.compile(r"\\[nrt\"\\]")


class NTriplesError(ValueError):
    """Raised on malformed N-Triples input."""


def _unescape(value: str) -> str:
    return _ESCAPE_RE.sub(lambda m: _ESCAPES[m.group(0)], value)


def parse_term(text: str) -> Term:
    """Parse a single N-Triples term (used by tests and term round-trips)."""
    term, rest = _parse_term_at(text)
    if rest.strip():
        raise NTriplesError(f"trailing content after term: {rest!r}")
    return term


def _parse_term_at(text: str) -> tuple[Term, str]:
    match = _TERM_RE.match(text)
    if not match:
        raise NTriplesError(f"expected an RDF term at: {text[:60]!r}")
    iri, bnode, lit, datatype, lang = match.groups()
    rest = text[match.end():]
    if iri is not None:
        return URI(iri), rest
    if bnode is not None:
        return BNode(bnode), rest
    return Literal(_unescape(lit), datatype=datatype, lang=lang), rest


def parse_line(line: str) -> Triple | None:
    """Parse one N-Triples line; returns ``None`` for blanks and comments."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    subject, rest = _parse_term_at(stripped)
    if isinstance(subject, Literal):
        raise NTriplesError(f"literal subject is not allowed: {line!r}")
    predicate, rest = _parse_term_at(rest)
    if not isinstance(predicate, URI):
        raise NTriplesError(f"predicate must be a URI: {line!r}")
    obj, rest = _parse_term_at(rest)
    if rest.strip() != ".":
        raise NTriplesError(f"expected terminating '.': {line!r}")
    return Triple(subject, predicate, obj)


def parse(source: TextIO | str) -> Iterator[Triple]:
    """Yield triples from an N-Triples document (string or file object)."""
    # Split on newlines only: str.splitlines() also breaks on U+2028/U+2029
    # (and other Unicode line boundaries), which are legal *inside* literal
    # values and must not terminate a triple line.
    lines = source.split("\n") if isinstance(source, str) else source
    for number, line in enumerate(lines, start=1):
        try:
            triple = parse_line(line)
        except NTriplesError as exc:
            raise NTriplesError(f"line {number}: {exc}") from exc
        if triple is not None:
            yield triple


def serialize(triples: Iterable[Triple]) -> str:
    """Serialize triples to an N-Triples document."""
    return "".join(t.n3() + "\n" for t in triples)
