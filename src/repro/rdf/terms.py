"""RDF term model: URIs, literals, blank nodes, and triples.

The paper treats RDF values as opaque strings stored in relational columns;
this module gives those strings enough structure to parse, serialize, and
compare them the way a real store must (typed literals, language tags, blank
node scoping).

Terms are immutable and hashable so they can serve as dictionary keys in
indexes and as members of interference-graph node sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Union

# Well-known datatype URIs used for literal coercion.
XSD = "http://www.w3.org/2001/XMLSchema#"
XSD_STRING = XSD + "string"
XSD_INTEGER = XSD + "integer"
XSD_DECIMAL = XSD + "decimal"
XSD_DOUBLE = XSD + "double"
XSD_BOOLEAN = XSD + "boolean"

RDF_NS = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
RDF_TYPE = RDF_NS + "type"


@dataclass(frozen=True, slots=True)
class URI:
    """An IRI reference, e.g. ``URI("http://dbpedia.org/resource/IBM")``."""

    value: str

    def __str__(self) -> str:
        return self.value

    def n3(self) -> str:
        """Render in N-Triples syntax: ``<http://...>``."""
        return f"<{self.value}>"


@dataclass(frozen=True, slots=True)
class BNode:
    """A blank node with a document-scoped label."""

    label: str

    def __str__(self) -> str:
        return f"_:{self.label}"

    def n3(self) -> str:
        return f"_:{self.label}"


@dataclass(frozen=True, slots=True)
class Literal:
    """An RDF literal with optional datatype or language tag.

    ``Literal("4.1")`` is a plain literal; ``Literal("1850", datatype=
    XSD_INTEGER)`` is typed; ``Literal("chat", lang="fr")`` is language-tagged.
    A literal has at most one of ``datatype`` / ``lang``.
    """

    value: str
    datatype: str | None = None
    lang: str | None = None

    def __post_init__(self) -> None:
        if self.datatype is not None and self.lang is not None:
            raise ValueError("a literal cannot have both a datatype and a language tag")

    def __str__(self) -> str:
        return self.value

    def n3(self) -> str:
        escaped = (
            self.value.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        body = f'"{escaped}"'
        if self.lang:
            return f"{body}@{self.lang}"
        if self.datatype and self.datatype != XSD_STRING:
            return f"{body}^^<{self.datatype}>"
        return body

    def to_python(self) -> Union[str, int, float, bool]:
        """Coerce to the closest Python value for FILTER comparisons."""
        if self.datatype == XSD_INTEGER:
            return int(self.value)
        if self.datatype in (XSD_DECIMAL, XSD_DOUBLE):
            return float(self.value)
        if self.datatype == XSD_BOOLEAN:
            return self.value in ("true", "1")
        return self.value

    @property
    def is_numeric(self) -> bool:
        return self.datatype in (XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE)


Term = Union[URI, BNode, Literal]
Subject = Union[URI, BNode]


@dataclass(frozen=True, slots=True)
class Triple:
    """A single RDF statement (subject, predicate, object)."""

    subject: Subject
    predicate: URI
    object: Term

    def __iter__(self):
        return iter((self.subject, self.predicate, self.object))

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."


def term_key(term: Term) -> str:
    """A canonical string key for a term, used as the stored column value.

    The store keeps full N3 lexical forms for literals so that two literals
    differing only in datatype or language do not collide, while URIs and
    blank nodes are stored as their bare identifier (URIs dominate the data,
    and keeping them unwrapped makes generated SQL and debugging far more
    readable, exactly as the paper's figures show values like ``IBM``).
    """
    if isinstance(term, URI):
        return term.value
    if isinstance(term, BNode):
        return f"_:{term.label}"
    return term.n3()


@lru_cache(maxsize=65536)
def term_from_key(key: str) -> Term:
    """Inverse of :func:`term_key` (best effort for literals).

    Memoized: result decoding calls this once per value of every result
    row, and real workloads repeat the same entities across rows and
    queries. Terms are immutable, so sharing instances is safe.
    """
    if key.startswith("_:"):
        return BNode(key[2:])
    if key.startswith('"'):
        from .ntriples import parse_term  # local import to avoid cycle

        return parse_term(key)
    return URI(key)
