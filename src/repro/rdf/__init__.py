"""RDF data model substrate: terms, triples, graphs, and serialization."""

from .graph import Graph
from .namespaces import DC, FOAF, Namespace, RDF, RDFS
from .ntriples import NTriplesError, parse, parse_line, parse_term, serialize
from .turtle import TurtleError, load_turtle, parse_turtle, serialize_turtle
from .terms import (
    BNode,
    Literal,
    RDF_TYPE,
    Subject,
    Term,
    Triple,
    URI,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
    term_from_key,
    term_key,
)

__all__ = [
    "BNode",
    "DC",
    "FOAF",
    "Graph",
    "Literal",
    "Namespace",
    "NTriplesError",
    "RDF",
    "RDFS",
    "RDF_TYPE",
    "Subject",
    "Term",
    "Triple",
    "URI",
    "XSD_BOOLEAN",
    "XSD_DECIMAL",
    "XSD_DOUBLE",
    "XSD_INTEGER",
    "XSD_STRING",
    "TurtleError",
    "load_turtle",
    "parse",
    "parse_turtle",
    "parse_line",
    "parse_term",
    "serialize",
    "serialize_turtle",
    "term_from_key",
    "term_key",
]
