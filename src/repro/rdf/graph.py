"""An in-memory RDF graph.

This is the substrate's "ground truth" container: workload generators build
graphs, stores load from graphs, and the reference SPARQL evaluator runs
directly against a graph so that every store can be checked against it.

The graph keeps three permutation indexes (by subject, by object, and by
predicate) which is enough for the reference evaluator and for statistics
collection without the full hexastore machinery of the native baseline.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from .terms import Subject, Term, Triple, URI


class Graph:
    """A set of RDF triples with subject/predicate/object lookup."""

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        self._triples: set[Triple] = set()
        self._by_subject: dict[Subject, set[Triple]] = defaultdict(set)
        self._by_object: dict[Term, set[Triple]] = defaultdict(set)
        self._by_predicate: dict[URI, set[Triple]] = defaultdict(set)
        for triple in triples:
            self.add(triple)

    def add(self, triple: Triple) -> bool:
        """Add a triple; returns ``False`` if it was already present."""
        if triple in self._triples:
            return False
        self._triples.add(triple)
        self._by_subject[triple.subject].add(triple)
        self._by_object[triple.object].add(triple)
        self._by_predicate[triple.predicate].add(triple)
        return True

    def discard(self, triple: Triple) -> bool:
        """Remove a triple; returns ``False`` if it was not present."""
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        self._by_subject[triple.subject].discard(triple)
        self._by_object[triple.object].discard(triple)
        self._by_predicate[triple.predicate].discard(triple)
        return True

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def subjects(self) -> Iterable[Subject]:
        return self._by_subject.keys()

    def objects(self) -> Iterable[Term]:
        return self._by_object.keys()

    def predicates(self) -> Iterable[URI]:
        return self._by_predicate.keys()

    def triples_for_subject(self, subject: Subject) -> set[Triple]:
        return self._by_subject.get(subject, set())

    def triples_for_object(self, obj: Term) -> set[Triple]:
        return self._by_object.get(obj, set())

    def triples_for_predicate(self, predicate: URI) -> set[Triple]:
        return self._by_predicate.get(predicate, set())

    def match(
        self,
        subject: Subject | None = None,
        predicate: URI | None = None,
        obj: Term | None = None,
    ) -> Iterator[Triple]:
        """Yield triples matching the given constants (``None`` = wildcard).

        Picks the most selective available index, the same access-method menu
        (subject lookup, object lookup, scan) the paper's optimizer assumes.
        """
        if subject is not None:
            candidates: Iterable[Triple] = self._by_subject.get(subject, ())
        elif obj is not None:
            candidates = self._by_object.get(obj, ())
        elif predicate is not None:
            candidates = self._by_predicate.get(predicate, ())
        else:
            candidates = self._triples
        for triple in candidates:
            if predicate is not None and triple.predicate != predicate:
                continue
            if obj is not None and triple.object != obj:
                continue
            if subject is not None and triple.subject != subject:
                continue
            yield triple

    # ----------------------------------------------------------- file I/O

    @classmethod
    def from_file(cls, path) -> "Graph":
        """Load a graph from an N-Triples (``.nt``) or Turtle (``.ttl``,
        ``.turtle``) file, chosen by extension."""
        import pathlib

        file_path = pathlib.Path(path)
        text = file_path.read_text()
        if file_path.suffix in (".ttl", ".turtle"):
            from .turtle import parse_turtle

            return cls(parse_turtle(text))
        from .ntriples import parse

        return cls(parse(text))

    def to_file(self, path, prefixes: dict[str, str] | None = None) -> None:
        """Write the graph as N-Triples or Turtle, chosen by extension."""
        import pathlib

        file_path = pathlib.Path(path)
        if file_path.suffix in (".ttl", ".turtle"):
            from .turtle import serialize_turtle

            file_path.write_text(serialize_turtle(self, prefixes))
        else:
            from .ntriples import serialize

            file_path.write_text(serialize(sorted(self, key=lambda t: t.n3())))

    def predicate_sets_by_subject(self) -> dict[Subject, frozenset[URI]]:
        """Map each subject to the set of predicates it instantiates.

        This is the raw input to interference-graph construction (Section 2.2
        of the paper): two predicates interfere exactly when some subject has
        them both.
        """
        return {
            subject: frozenset(t.predicate for t in triples)
            for subject, triples in self._by_subject.items()
            if triples
        }

    def predicate_sets_by_object(self) -> dict[Term, frozenset[URI]]:
        """Map each object to the set of predicates pointing at it (for RPH)."""
        return {
            obj: frozenset(t.predicate for t in triples)
            for obj, triples in self._by_object.items()
            if triples
        }
