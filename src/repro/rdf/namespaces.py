"""Namespace helpers for building URIs tersely in generators and examples."""

from __future__ import annotations

from .terms import URI


class Namespace:
    """Callable URI factory: ``DBP = Namespace("http://dbpedia.org/");
    DBP("IBM")`` or attribute style ``DBP.IBM``."""

    def __init__(self, base: str) -> None:
        self.base = base

    def __call__(self, local: str) -> URI:
        return URI(self.base + local)

    def __getattr__(self, local: str) -> URI:
        if local.startswith("_"):
            raise AttributeError(local)
        return URI(self.base + local)

    def __repr__(self) -> str:
        return f"Namespace({self.base!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD_NS = Namespace("http://www.w3.org/2001/XMLSchema#")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")
DC = Namespace("http://purl.org/dc/elements/1.1/")
