"""Backend over the pure-Python relational engine (executes ASTs directly)."""

from __future__ import annotations

import time
from typing import Any, Iterable, Sequence

from ..relational import ast
from ..relational.catalog import DEFAULT_BATCH_SIZE, Database
from ..relational.types import ColumnType
from .base import Backend


class MiniRelSnapshot:
    """A pinned MVCC version; every table scan filters rows against it."""

    __slots__ = ("_mvcc", "version", "_released")

    def __init__(self, mvcc: Any) -> None:
        self._mvcc = mvcc
        self.version: int = mvcc.pin()
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._mvcc.unpin(self.version)


class MiniRelBackend(Backend):
    """The default backend: :class:`repro.relational.Database` in-process.

    ``batch_size`` selects the vectorized executor (0 = tuple-at-a-time,
    the measured baseline); ``intern_terms`` dictionary-encodes TEXT
    values (RDF term keys) into integer ids, decoded only at the result
    boundary. Both default on — the fast configuration.
    """

    name = "minirel"
    supports_snapshots = True

    def __init__(
        self,
        batch_size: int = DEFAULT_BATCH_SIZE,
        intern_terms: bool = True,
    ) -> None:
        self.db = Database(batch_size=batch_size, intern_strings=intern_terms)
        self._index_counter = 0

    def create_table(
        self,
        table_name: str,
        columns: Sequence[tuple[str, ColumnType]],
        if_not_exists: bool = False,
    ) -> None:
        self.db.create_table(table_name, columns, if_not_exists=if_not_exists)

    def create_index(
        self, index_name: str, table_name: str, columns: Sequence[str]
    ) -> None:
        self.db.create_index(index_name, table_name, columns, if_not_exists=True)

    def insert_many(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        return self.db.insert(table_name, rows)

    def execute(
        self,
        statement: ast.Statement | str,
        timeout: float | None = None,
        budget: Any = None,
        snapshot: Any = None,
    ) -> tuple[list[str], list[tuple]]:
        deadline = time.monotonic() + timeout if timeout is not None else None
        version = None if snapshot is None else snapshot.version
        result = self.db.execute(
            statement, deadline=deadline, budget=budget, version=version
        )
        return result.columns, result.rows

    def execute_profiled(
        self,
        statement: ast.Statement | str,
        timeout: float | None = None,
        tracer: Any = None,
        budget: Any = None,
        snapshot: Any = None,
    ) -> tuple[list[str], list[tuple]]:
        """Execute with the planner metering every operator iterator
        (scans, joins, filters, set ops, CTEs) into the trace."""
        if tracer is None or not tracer.enabled:
            return self.execute(
                statement, timeout=timeout, budget=budget, snapshot=snapshot
            )
        deadline = time.monotonic() + timeout if timeout is not None else None
        version = None if snapshot is None else snapshot.version
        with tracer.span(f"{self.name}.execute") as span:
            result = self.db.execute(
                statement,
                deadline=deadline,
                trace=span,
                budget=budget,
                version=version,
            )
            span.set("rows_out", len(result.rows))
        return result.columns, result.rows

    # ------------------------------------------------- write brackets/MVCC

    def begin_write(self) -> None:
        self.db.mvcc.begin()

    def commit_write(self) -> None:
        self.db.mvcc.publish()

    def abort_write(self) -> None:
        self.db.mvcc.abort()

    def open_snapshot(self) -> MiniRelSnapshot:
        return MiniRelSnapshot(self.db.mvcc)

    def table_names(self) -> list[str]:
        return [table.name for table in self.db.tables.values()]

    def row_count(self, table_name: str) -> int:
        return len(self.db.table(table_name))
