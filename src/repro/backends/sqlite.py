"""Backend over stdlib sqlite3 (renders ASTs to SQL text).

This backend exists for two reasons: it differentially tests the generated
SQL against an independent, battle-tested engine, and it shows that the
translator's output is plain portable SQL — the paper's central claim that
SPARQL can be compiled down to an ordinary relational database.
"""

from __future__ import annotations

import sqlite3
import time
from typing import Any, Iterable, Sequence

from ..relational import ast
from ..relational.errors import QueryTimeout
from ..relational.expressions import CUSTOM_FUNCTIONS
from ..relational.render import render_statement
from ..relational.types import ColumnType
from .base import Backend


class SqliteBackend(Backend):
    """In-memory (or file-backed) sqlite3 behind the Backend protocol."""

    name = "sqlite"

    #: VM instructions between progress-handler firings (deadline checks)
    PROGRESS_OPS = 10_000
    #: finer granularity when an intermediate-row budget is active: each
    #: firing counts as one work unit against ``max_intermediate_rows``
    PROGRESS_OPS_BUDGET = 1_000

    def __init__(self, path: str = ":memory:") -> None:
        self.connection = sqlite3.connect(path)
        self.connection.execute("PRAGMA synchronous=OFF")
        self._registered: set[str] = set()
        self._register_functions()
        self._index_counter = 0

    def _register_functions(self) -> None:
        """Expose the engine's custom scalar functions to sqlite."""
        for name, fn in CUSTOM_FUNCTIONS.items():
            if name in self._registered:
                continue
            # sqlite3 requires a fixed arity; -1 accepts any.
            self.connection.create_function(name, -1, fn, deterministic=True)
            self._registered.add(name)

    def create_table(
        self,
        table_name: str,
        columns: Sequence[tuple[str, ColumnType]],
        if_not_exists: bool = False,
    ) -> None:
        statement = ast.CreateTable(
            table_name,
            tuple(ast.ColumnDef(name, column_type) for name, column_type in columns),
            if_not_exists=if_not_exists,
        )
        self.connection.execute(render_statement(statement))

    def create_index(
        self, index_name: str, table_name: str, columns: Sequence[str]
    ) -> None:
        statement = ast.CreateIndex(
            index_name, table_name, tuple(columns), if_not_exists=True
        )
        self.connection.execute(render_statement(statement))

    def insert_many(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        materialized = [tuple(row) for row in rows]
        if not materialized:
            return 0
        placeholders = ", ".join("?" for _ in materialized[0])
        quoted = '"' + table_name.replace('"', '""') + '"'
        self.connection.executemany(
            f"INSERT INTO {quoted} VALUES ({placeholders})", materialized
        )
        return len(materialized)

    def execute(
        self,
        statement: ast.Statement | str,
        timeout: float | None = None,
        budget: Any = None,
    ) -> tuple[list[str], list[tuple]]:
        self._register_functions()  # pick up late registrations
        # sql_text memoizes rendering per AST instance: a warm plan-cache hit
        # executes the same AST object repeatedly and skips re-rendering too.
        sql = statement if isinstance(statement, str) else self.sql_text(statement)
        deadline = time.monotonic() + timeout if timeout is not None else None
        work_cap = None
        if budget is not None:
            if deadline is None:
                deadline = budget.deadline
            # Best-effort intermediate budget: sqlite cannot count operator
            # rows, so each progress firing (one per PROGRESS_OPS_BUDGET VM
            # instructions) counts as one work unit against the ceiling.
            work_cap = budget.max_intermediate_rows
        guarded = deadline is not None or work_cap is not None
        if guarded:

            def _checker() -> int:
                if work_cap is not None:
                    budget.ticks += 1
                    if budget.ticks > work_cap:
                        budget.tripped = "intermediate"
                        return 1
                if deadline is not None and time.monotonic() > deadline:
                    if budget is not None:
                        budget.tripped = "timeout"
                    return 1
                return 0

            ops = (
                self.PROGRESS_OPS_BUDGET
                if work_cap is not None
                else self.PROGRESS_OPS
            )
            self.connection.set_progress_handler(_checker, ops)
        try:
            cursor = self.connection.execute(sql)
            rows = cursor.fetchall()
        except sqlite3.OperationalError as exc:
            if "interrupted" in str(exc):
                if budget is not None and budget.tripped is not None:
                    budget.raise_tripped(exc)
                raise QueryTimeout("sqlite query exceeded its deadline") from exc
            raise
        finally:
            if guarded:
                self.connection.set_progress_handler(None, 0)
        columns = [d[0] for d in cursor.description] if cursor.description else []
        return columns, rows

    def execute_profiled(
        self,
        statement: ast.Statement | str,
        timeout: float | None = None,
        tracer: Any = None,
        budget: Any = None,
    ) -> tuple[list[str], list[tuple]]:
        """Execute with sqlite's own plan attached: an ``EXPLAIN QUERY
        PLAN`` span (one child per plan node) plus the result rowcount."""
        if tracer is None or not tracer.enabled:
            return self.execute(statement, timeout=timeout, budget=budget)
        with tracer.span(f"{self.name}.execute") as span:
            with tracer.span("explain-query-plan") as plan_span:
                plan_span.set("plan", self.explain_query_plan(statement))
            columns, rows = self.execute(statement, timeout=timeout, budget=budget)
            span.set("rows_out", len(rows))
        return columns, rows

    def explain_query_plan(
        self, statement: ast.Statement | str
    ) -> list[str]:
        """sqlite's ``EXPLAIN QUERY PLAN`` rows, rendered one node per line
        with ``.``-indentation following the plan tree."""
        sql = statement if isinstance(statement, str) else self.sql_text(statement)
        cursor = self.connection.execute("EXPLAIN QUERY PLAN " + sql)
        depths: dict[int, int] = {0: 0}
        lines: list[str] = []
        for node_id, parent_id, _, detail in cursor.fetchall():
            depth = depths.get(parent_id, 0) + 1
            depths[node_id] = depth
            lines.append("..." * (depth - 1) + detail)
        return lines

    def table_names(self) -> list[str]:
        cursor = self.connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table'"
        )
        return [row[0] for row in cursor.fetchall()]

    def row_count(self, table_name: str) -> int:
        quoted = '"' + table_name.replace('"', '""') + '"'
        cursor = self.connection.execute(f"SELECT COUNT(*) FROM {quoted}")
        return cursor.fetchone()[0]
