"""Backend over stdlib sqlite3 (renders ASTs to SQL text).

This backend exists for two reasons: it differentially tests the generated
SQL against an independent, battle-tested engine, and it shows that the
translator's output is plain portable SQL — the paper's central claim that
SPARQL can be compiled down to an ordinary relational database.

Concurrency model: one shared connection (``check_same_thread=False``
behind an RLock) serves latest-state reads and all writes, which the store
serializes into explicit ``BEGIN IMMEDIATE`` … ``COMMIT``/``ROLLBACK``
brackets. Snapshot reads get their own connection each: a WAL read
transaction for file-backed databases (readers never block the writer), or
a ``serialize()``/``deserialize()`` point-in-time copy for in-memory ones.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from typing import Any, Iterable, Sequence

from ..relational import ast
from ..relational.errors import QueryTimeout
from ..relational.expressions import CUSTOM_FUNCTIONS
from ..relational.render import render_statement
from ..relational.types import ColumnType
from .base import Backend


def _register_functions(connection: sqlite3.Connection, registered: set[str]) -> None:
    """Expose the engine's custom scalar functions to one connection."""
    for name, fn in CUSTOM_FUNCTIONS.items():
        if name in registered:
            continue
        # sqlite3 requires a fixed arity; -1 accepts any.
        connection.create_function(name, -1, fn, deterministic=True)
        registered.add(name)


class SqliteSnapshot:
    """A point-in-time read connection, released via :meth:`release`."""

    #: kept for interface parity with MiniRelSnapshot (sqlite pins state
    #: with a dedicated connection, not a version number)
    version = None

    def __init__(self, connection: sqlite3.Connection, read_txn: bool) -> None:
        self.connection = connection
        self.registered: set[str] = set()
        self.lock = threading.RLock()
        self._read_txn = read_txn
        self._released = False
        _register_functions(connection, self.registered)

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        with self.lock:
            try:
                if self._read_txn:
                    self.connection.execute("ROLLBACK")
            finally:
                self.connection.close()


class SqliteBackend(Backend):
    """In-memory (or file-backed) sqlite3 behind the Backend protocol."""

    name = "sqlite"
    supports_snapshots = True

    #: VM instructions between progress-handler firings (deadline checks)
    PROGRESS_OPS = 10_000
    #: finer granularity when an intermediate-row budget is active: each
    #: firing counts as one work unit against ``max_intermediate_rows``
    PROGRESS_OPS_BUDGET = 1_000

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        # autocommit + explicit write brackets; shared across reader threads
        self.connection = sqlite3.connect(
            path, check_same_thread=False, isolation_level=None
        )
        self._lock = threading.RLock()
        self.connection.execute("PRAGMA synchronous=OFF")
        self._wal_snapshots = False
        if path != ":memory:" and "mode=memory" not in path:
            # WAL lets snapshot connections hold a read transaction without
            # blocking the writer's COMMIT; fall back to serialize() copies
            # when the filesystem refuses WAL.
            mode = self.connection.execute("PRAGMA journal_mode=WAL").fetchone()
            self._wal_snapshots = bool(mode) and str(mode[0]).lower() == "wal"
        self._registered: set[str] = set()
        self._register_functions()
        self._index_counter = 0

    def _register_functions(self) -> None:
        _register_functions(self.connection, self._registered)

    def create_table(
        self,
        table_name: str,
        columns: Sequence[tuple[str, ColumnType]],
        if_not_exists: bool = False,
    ) -> None:
        statement = ast.CreateTable(
            table_name,
            tuple(ast.ColumnDef(name, column_type) for name, column_type in columns),
            if_not_exists=if_not_exists,
        )
        with self._lock:
            self.connection.execute(render_statement(statement))

    def create_index(
        self, index_name: str, table_name: str, columns: Sequence[str]
    ) -> None:
        statement = ast.CreateIndex(
            index_name, table_name, tuple(columns), if_not_exists=True
        )
        with self._lock:
            self.connection.execute(render_statement(statement))

    def insert_many(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        materialized = [tuple(row) for row in rows]
        if not materialized:
            return 0
        placeholders = ", ".join("?" for _ in materialized[0])
        quoted = '"' + table_name.replace('"', '""') + '"'
        with self._lock:
            self.connection.executemany(
                f"INSERT INTO {quoted} VALUES ({placeholders})", materialized
            )
        return len(materialized)

    def execute(
        self,
        statement: ast.Statement | str,
        timeout: float | None = None,
        budget: Any = None,
        snapshot: Any = None,
    ) -> tuple[list[str], list[tuple]]:
        if snapshot is not None:
            _register_functions(snapshot.connection, snapshot.registered)
            return self._execute_on(
                snapshot.connection, snapshot.lock, statement, timeout, budget
            )
        self._register_functions()  # pick up late registrations
        return self._execute_on(
            self.connection, self._lock, statement, timeout, budget
        )

    def _execute_on(
        self,
        connection: sqlite3.Connection,
        lock: threading.RLock,
        statement: ast.Statement | str,
        timeout: float | None,
        budget: Any,
    ) -> tuple[list[str], list[tuple]]:
        # sql_text memoizes rendering per AST instance: a warm plan-cache hit
        # executes the same AST object repeatedly and skips re-rendering too.
        sql = statement if isinstance(statement, str) else self.sql_text(statement)
        deadline = time.monotonic() + timeout if timeout is not None else None
        work_cap = None
        if budget is not None:
            if deadline is None:
                deadline = budget.deadline
            # Best-effort intermediate budget: sqlite cannot count operator
            # rows, so each progress firing (one per PROGRESS_OPS_BUDGET VM
            # instructions) counts as one work unit against the ceiling.
            work_cap = budget.max_intermediate_rows
        guarded = deadline is not None or work_cap is not None
        with lock:
            if guarded:

                def _checker() -> int:
                    if work_cap is not None:
                        budget.ticks += 1
                        if budget.ticks > work_cap:
                            budget.tripped = "intermediate"
                            return 1
                    if deadline is not None and time.monotonic() > deadline:
                        if budget is not None:
                            budget.tripped = "timeout"
                        return 1
                    return 0

                ops = (
                    self.PROGRESS_OPS_BUDGET
                    if work_cap is not None
                    else self.PROGRESS_OPS
                )
                connection.set_progress_handler(_checker, ops)
            try:
                cursor = connection.execute(sql)
                rows = cursor.fetchall()
            except sqlite3.OperationalError as exc:
                if "interrupted" in str(exc):
                    if budget is not None and budget.tripped is not None:
                        budget.raise_tripped(exc)
                    raise QueryTimeout(
                        "sqlite query exceeded its deadline"
                    ) from exc
                raise
            finally:
                if guarded:
                    connection.set_progress_handler(None, 0)
        columns = [d[0] for d in cursor.description] if cursor.description else []
        return columns, rows

    # ------------------------------------------------- write brackets/MVCC

    def begin_write(self) -> None:
        with self._lock:
            self.connection.execute("BEGIN IMMEDIATE")

    def commit_write(self) -> None:
        with self._lock:
            self.connection.execute("COMMIT")

    def abort_write(self) -> None:
        with self._lock:
            self.connection.execute("ROLLBACK")

    def open_snapshot(self) -> SqliteSnapshot:
        with self._lock:
            if self._wal_snapshots:
                connection = sqlite3.connect(
                    self.path, check_same_thread=False, isolation_level=None
                )
                # A deferred transaction plus one read pins the WAL frame
                # this snapshot will keep seeing.
                connection.execute("BEGIN")
                connection.execute(
                    "SELECT COUNT(*) FROM sqlite_master"
                ).fetchone()
                return SqliteSnapshot(connection, read_txn=True)
            data = self.connection.serialize()
        connection = sqlite3.connect(
            ":memory:", check_same_thread=False, isolation_level=None
        )
        connection.deserialize(data)
        return SqliteSnapshot(connection, read_txn=False)

    def execute_profiled(
        self,
        statement: ast.Statement | str,
        timeout: float | None = None,
        tracer: Any = None,
        budget: Any = None,
        snapshot: Any = None,
    ) -> tuple[list[str], list[tuple]]:
        """Execute with sqlite's own plan attached: an ``EXPLAIN QUERY
        PLAN`` span (one child per plan node) plus the result rowcount."""
        if tracer is None or not tracer.enabled:
            return self.execute(
                statement, timeout=timeout, budget=budget, snapshot=snapshot
            )
        with tracer.span(f"{self.name}.execute") as span:
            with tracer.span("explain-query-plan") as plan_span:
                plan_span.set("plan", self.explain_query_plan(statement))
            columns, rows = self.execute(
                statement, timeout=timeout, budget=budget, snapshot=snapshot
            )
            span.set("rows_out", len(rows))
        return columns, rows

    def explain_query_plan(
        self, statement: ast.Statement | str
    ) -> list[str]:
        """sqlite's ``EXPLAIN QUERY PLAN`` rows, rendered one node per line
        with ``.``-indentation following the plan tree."""
        sql = statement if isinstance(statement, str) else self.sql_text(statement)
        with self._lock:
            cursor = self.connection.execute("EXPLAIN QUERY PLAN " + sql)
            plan_rows = cursor.fetchall()
        depths: dict[int, int] = {0: 0}
        lines: list[str] = []
        for node_id, parent_id, _, detail in plan_rows:
            depth = depths.get(parent_id, 0) + 1
            depths[node_id] = depth
            lines.append("..." * (depth - 1) + detail)
        return lines

    def table_names(self) -> list[str]:
        with self._lock:
            cursor = self.connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
            return [row[0] for row in cursor.fetchall()]

    def row_count(self, table_name: str) -> int:
        quoted = '"' + table_name.replace('"', '""') + '"'
        with self._lock:
            cursor = self.connection.execute(f"SELECT COUNT(*) FROM {quoted}")
            return cursor.fetchone()[0]
