"""Relational back-ends: the pure-Python engine and stdlib sqlite3."""

from .base import Backend
from .minirel import MiniRelBackend
from .sqlite import SqliteBackend

__all__ = ["Backend", "MiniRelBackend", "SqliteBackend"]


def make_backend(name: str) -> Backend:
    """Factory used by the benchmark harness (``"minirel"`` or ``"sqlite"``)."""
    if name == "minirel":
        return MiniRelBackend()
    if name == "sqlite":
        return SqliteBackend()
    raise ValueError(f"unknown backend {name!r}")
