"""The backend protocol: what any relational back-end must provide.

The paper's system sits on DB2; this reproduction runs identically on two
back-ends — the pure-Python engine and stdlib sqlite3 — behind this small
interface. The translator emits SQL ASTs; each backend decides whether to
execute the AST directly or render it to text first.
"""

from __future__ import annotations

import abc
from typing import Any, Iterable, Sequence

from ..relational import ast
from ..relational.types import ColumnType


class Backend(abc.ABC):
    """Abstract relational back-end used by the RDF store layers."""

    name: str = "abstract"

    @abc.abstractmethod
    def create_table(
        self,
        table_name: str,
        columns: Sequence[tuple[str, ColumnType]],
        if_not_exists: bool = False,
    ) -> None:
        """Create a table with the given (name, type) columns."""

    @abc.abstractmethod
    def create_index(
        self, index_name: str, table_name: str, columns: Sequence[str]
    ) -> None:
        """Create an equality index."""

    @abc.abstractmethod
    def insert_many(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-insert rows; returns the number inserted."""

    @abc.abstractmethod
    def execute(
        self, statement: ast.Statement | str, timeout: float | None = None
    ) -> tuple[list[str], list[tuple]]:
        """Run a statement; returns (column names, rows).

        ``timeout`` is in seconds; expiry raises
        :class:`repro.relational.errors.QueryTimeout` on either backend.
        """

    @abc.abstractmethod
    def table_names(self) -> list[str]:
        """All table names currently in the catalog."""

    @abc.abstractmethod
    def row_count(self, table_name: str) -> int:
        """Number of rows in a table (cheap metadata access)."""

    def sql_text(self, statement: ast.Statement) -> str:
        """Render a statement to this backend's SQL dialect (for EXPLAIN-style
        introspection; both backends share the SQLite-ish dialect)."""
        from ..relational.render import render_statement

        return render_statement(statement)
