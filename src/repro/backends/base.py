"""The backend protocol: what any relational back-end must provide.

The paper's system sits on DB2; this reproduction runs identically on two
back-ends — the pure-Python engine and stdlib sqlite3 — behind this small
interface. The translator emits SQL ASTs; each backend decides whether to
execute the AST directly or render it to text first.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import Any, Iterable, Sequence

from ..relational import ast
from ..relational.types import ColumnType


class RenderMemo:
    """A small bounded memo from SQL AST instance to rendered text.

    Cached query plans hand the *same* immutable AST object to the backend
    on every execution, so re-rendering it to text is pure waste. Keyed by
    object identity (the AST is also kept as the value, so an id can never
    be reused while its entry is alive); bounded LRU to stay O(plans kept).
    """

    def __init__(self, maxsize: int = 64) -> None:
        self.maxsize = maxsize
        self._entries: OrderedDict[int, tuple[ast.Statement, str]] = OrderedDict()

    def render(self, statement: ast.Statement) -> str:
        key = id(statement)
        entry = self._entries.get(key)
        if entry is not None and entry[0] is statement:
            self._entries.move_to_end(key)
            return entry[1]
        from ..relational.render import render_statement

        text = render_statement(statement)
        self._entries[key] = (statement, text)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return text


class Backend(abc.ABC):
    """Abstract relational back-end used by the RDF store layers."""

    name: str = "abstract"
    #: True when :meth:`open_snapshot` hands out point-in-time read handles
    supports_snapshots: bool = False

    @abc.abstractmethod
    def create_table(
        self,
        table_name: str,
        columns: Sequence[tuple[str, ColumnType]],
        if_not_exists: bool = False,
    ) -> None:
        """Create a table with the given (name, type) columns."""

    @abc.abstractmethod
    def create_index(
        self, index_name: str, table_name: str, columns: Sequence[str]
    ) -> None:
        """Create an equality index."""

    @abc.abstractmethod
    def insert_many(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-insert rows; returns the number inserted."""

    @abc.abstractmethod
    def execute(
        self,
        statement: ast.Statement | str,
        timeout: float | None = None,
        budget: Any = None,
        snapshot: Any = None,
    ) -> tuple[list[str], list[tuple]]:
        """Run a statement; returns (column names, rows).

        ``timeout`` is in seconds; expiry raises
        :class:`repro.relational.errors.QueryTimeout` on either backend.
        ``budget`` is an optional guardrail object (duck-typed,
        :class:`repro.core.resilience.Budget`): its deadline and
        intermediate-row ceiling are enforced cooperatively during
        execution and trips raise the typed guardrail errors.
        ``snapshot`` is a handle from :meth:`open_snapshot`; when given,
        the statement reads the point-in-time state the handle pins
        instead of the latest state.
        """

    # ------------------------------------------------------ write brackets

    def begin_write(self) -> None:
        """Open a write bracket (one writer at a time, enforced above)."""

    def commit_write(self) -> None:
        """Publish the bracket's writes to new snapshots."""

    def abort_write(self) -> None:
        """Close the bracket without publishing (logical undo already ran)."""

    # ----------------------------------------------------------- snapshots

    def open_snapshot(self) -> Any:
        """A point-in-time read handle (pass to ``execute(snapshot=...)``;
        call ``handle.release()`` when done). Only valid between write
        brackets — the store acquires it under the writer lock."""
        raise NotImplementedError(f"{self.name} backend has no snapshot support")

    @abc.abstractmethod
    def table_names(self) -> list[str]:
        """All table names currently in the catalog."""

    @abc.abstractmethod
    def row_count(self, table_name: str) -> int:
        """Number of rows in a table (cheap metadata access)."""

    def execute_profiled(
        self,
        statement: ast.Statement | str,
        timeout: float | None = None,
        tracer: Any = None,
        budget: Any = None,
        snapshot: Any = None,
    ) -> tuple[list[str], list[tuple]]:
        """Run a statement under a tracer (``repro.core.observe.Tracer``).

        The default wraps :meth:`execute` in a single span with the result
        rowcount; backends override it to report finer-grained work (the
        minirel planner meters every operator, sqlite attaches its
        ``EXPLAIN QUERY PLAN``). The tracer is duck-typed so backends need
        no dependency on the observability layer; ``None`` degrades to a
        plain :meth:`execute`.
        """
        if tracer is None or not tracer.enabled:
            return self.execute(
                statement, timeout=timeout, budget=budget, snapshot=snapshot
            )
        with tracer.span(f"{self.name}.execute") as span:
            columns, rows = self.execute(
                statement, timeout=timeout, budget=budget, snapshot=snapshot
            )
            span.set("rows_out", len(rows))
        return columns, rows

    def sql_text(self, statement: ast.Statement) -> str:
        """Render a statement to this backend's SQL dialect (for EXPLAIN-style
        introspection; both backends share the SQLite-ish dialect). Renders
        of one AST instance are memoized — cached plans re-use their AST."""
        memo = getattr(self, "_render_memo", None)
        if memo is None:
            memo = RenderMemo()
            self._render_memo = memo
        return memo.render(statement)
