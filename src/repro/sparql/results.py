"""Query result container shared by every engine in the repository.

All engines (DB2RDF over either backend, the relational baselines, the
native in-memory store, and the reference evaluator) return a
:class:`SelectResult`, which makes cross-engine equivalence checks one-line
assertions in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from ..rdf.terms import Term, term_key


@dataclass
class SelectResult:
    """Projected variables plus rows of terms (``None`` = unbound)."""

    variables: list[str]
    rows: list[tuple[Term | None, ...]]
    #: the finished trace root (``repro.core.observe.Span``) when the query
    #: ran in PROFILE mode; ``None`` otherwise. Excluded from equality —
    #: profiled and unprofiled runs of one query compare equal.
    profile: Any | None = field(default=None, compare=False, repr=False)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[Term | None, ...]]:
        return iter(self.rows)

    def as_dicts(self) -> list[dict[str, Term | None]]:
        return [dict(zip(self.variables, row)) for row in self.rows]

    def key_rows(self) -> list[tuple[str | None, ...]]:
        """Rows as canonical string keys — the cross-engine comparison form."""
        return [
            tuple(None if value is None else term_key(value) for value in row)
            for row in self.rows
        ]

    def canonical(self) -> list[tuple[str | None, ...]]:
        """Sorted key rows: equal multisets compare equal regardless of
        row order (used when the query has no ORDER BY)."""
        return sorted(
            self.key_rows(), key=lambda row: tuple("" if v is None else v for v in row)
        )

    def matches(self, other: "SelectResult", ordered: bool = False) -> bool:
        if [v.lower() for v in self.variables] != [v.lower() for v in other.variables]:
            return False
        if ordered:
            return self.key_rows() == other.key_rows()
        return self.canonical() == other.canonical()


def project_rows(
    variables: Sequence[str],
    solutions: Sequence[dict[str, Term]],
) -> list[tuple[Term | None, ...]]:
    """Turn binding dictionaries into positional rows."""
    return [
        tuple(solution.get(variable) for variable in variables)
        for solution in solutions
    ]
