"""Query result container shared by every engine in the repository.

All engines (DB2RDF over either backend, the relational baselines, the
native in-memory store, and the reference evaluator) return a
:class:`SelectResult`, which makes cross-engine equivalence checks one-line
assertions in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from ..rdf.terms import Term, term_key


@dataclass
class SelectResult:
    """Projected variables plus rows of terms (``None`` = unbound)."""

    variables: list[str]
    rows: list[tuple[Term | None, ...]]
    #: the finished trace root (``repro.core.observe.Span``) when the query
    #: ran in PROFILE mode; ``None`` otherwise. Excluded from equality —
    #: profiled and unprofiled runs of one query compare equal.
    profile: Any | None = field(default=None, compare=False, repr=False)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[Term | None, ...]]:
        return iter(self.rows)

    def as_dicts(self) -> list[dict[str, Term | None]]:
        return [dict(zip(self.variables, row)) for row in self.rows]

    def key_rows(self) -> list[tuple[str | None, ...]]:
        """Rows as canonical string keys — the cross-engine comparison form."""
        return [
            tuple(None if value is None else term_key(value) for value in row)
            for row in self.rows
        ]

    def canonical(self) -> list[tuple[str | None, ...]]:
        """Sorted key rows: equal multisets compare equal regardless of
        row order (used when the query has no ORDER BY)."""
        return sorted(
            self.key_rows(), key=lambda row: tuple("" if v is None else v for v in row)
        )

    def matches(self, other: "SelectResult", ordered: bool = False) -> bool:
        if [v.lower() for v in self.variables] != [v.lower() for v in other.variables]:
            return False
        if ordered:
            return self.key_rows() == other.key_rows()
        return self.canonical() == other.canonical()


def project_rows(
    variables: Sequence[str],
    solutions: Sequence[dict[str, Term]],
) -> list[tuple[Term | None, ...]]:
    """Turn binding dictionaries into positional rows."""
    return [
        tuple(solution.get(variable) for variable in variables)
        for solution in solutions
    ]


# ---------------------------------------------------------------------------
# SPARQL 1.1 Protocol serialization (content negotiation for the server)
# ---------------------------------------------------------------------------

#: wire format name → response Content-Type
CONTENT_TYPES = {
    "json": "application/sparql-results+json",
    "csv": "text/csv; charset=utf-8",
    "tsv": "text/tab-separated-values; charset=utf-8",
}

#: media type (lowercased, parameters stripped) → wire format name
_MEDIA_TYPES = {
    "application/sparql-results+json": "json",
    "application/json": "json",
    "text/csv": "csv",
    "text/tab-separated-values": "tsv",
    "text/tsv": "tsv",
    "*/*": "json",
    "application/*": "json",
    "text/*": "csv",
}


def negotiate_format(accept: str | None) -> str | None:
    """Pick a result format from an HTTP ``Accept`` header.

    Returns ``"json"`` / ``"csv"`` / ``"tsv"``, or ``None`` when every
    offered media type is unsupported (the caller answers 406). A missing
    or empty header means "anything": JSON, the protocol's richest format.
    Quality values order the candidates; at equal q, more specific media
    types win over ranges, then header order decides.
    """
    if accept is None or not accept.strip():
        return "json"
    candidates: list[tuple[float, int, int, str]] = []
    for position, clause in enumerate(accept.split(",")):
        parts = clause.strip().split(";")
        media = parts[0].strip().lower()
        if not media:
            continue
        quality = 1.0
        for parameter in parts[1:]:
            name, _, value = parameter.partition("=")
            if name.strip().lower() == "q":
                try:
                    quality = float(value.strip())
                except ValueError:
                    quality = 0.0
        fmt = _MEDIA_TYPES.get(media)
        if fmt is None or quality <= 0.0:
            continue
        specificity = 0 if "*" in media else 1
        candidates.append((quality, specificity, -position, fmt))
    if not candidates:
        return None
    return max(candidates)[3]


def serialize_select(result: SelectResult, fmt: str) -> str:
    """Serialize a SELECT result in ``fmt`` (``json``/``csv``/``tsv``)."""
    from . import serialize  # deferred: serialize imports this module

    formatters = {
        "json": serialize.to_json,
        "csv": serialize.to_csv,
        "tsv": serialize.to_tsv,
    }
    return formatters[fmt](result)


def serialize_ask(value: bool, fmt: str) -> str:
    """Serialize an ASK result: the W3C JSON boolean document, or a bare
    ``true``/``false`` line for CSV/TSV (which the spec leaves undefined)."""
    if fmt == "json":
        import json

        return json.dumps({"head": {}, "boolean": bool(value)})
    text = "true" if value else "false"
    return text + ("\r\n" if fmt == "csv" else "\n")
