"""End-to-end SPARQL evaluation: the paper's Figure 5 architecture.

``SparqlEngine`` wires the stages together: parse tree → data flow graph →
optimal flow tree (DFB) → execution tree (QPB) → merged query plan →
SQL → backend execution → term decoding. The ``optimizer="naive"`` mode
replaces the flow-guided plan with the bottom-up textual-order plan, which
is the sub-optimal comparator of §3.3 / Figure 14.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any

from ..backends.base import Backend
from ..core.observe import Tracer
from ..core.querycache import (
    DEFAULT_CACHE_SIZE,
    CacheInfo,
    CachedPlan,
    QueryCache,
    canonicalize_sparql,
)
from ..core.stats import DatasetStatistics
from ..rdf.terms import Term, term_from_key
from ..relational import ast as sql
from .algebra import PatternTree, normalize
from .ast import AskQuery, SelectQuery, TriplePattern, Var
from .optimizer.cost import ACO, ACS, ALL_METHODS, SC
from .optimizer.dataflow import build_data_flow_graph, optimal_flow_tree
from .optimizer.merge import MergeContext, merge_execution_tree
from .optimizer.planbuilder import (
    ExecNode,
    JoinOrderPlan,
    build_execution_tree,
    enumerate_join_orders,
    flow_from_order,
    textual_execution_tree,
)
from .parser import parse_sparql
from .results import SelectResult
from .translator.pipeline import PipelineTranslator, TripleEmitter


@dataclass(frozen=True)
class EngineConfig:
    """Evaluation knobs (ablations flip these).

    Frozen: compiled plans are cached under a fingerprint of these fields,
    so a config must not drift after its plans are cached. Build a new
    ``EngineConfig`` (e.g. via ``dataclasses.replace``) instead of mutating.
    """

    #: "hybrid" (flow-guided heuristic), "cost" (statistics-driven join-order
    #: enumeration with heuristic fallback), or "naive" (textual order)
    optimizer: str = "hybrid"
    merge: bool = True  # star-query node merging on/off
    methods: tuple[str, ...] = ALL_METHODS
    use_statistics: bool = True  # False: cost-blind flow (heuristics only)
    cache_size: int = DEFAULT_CACHE_SIZE  # plan-cache entries; <= 0 disables
    #: "cost" only: below this plan confidence the enumerator's pick is
    #: discarded for the heuristic hybrid plan (estimates built on empty or
    #: heavily decayed statistics should not steer join order)
    min_plan_confidence: float = 0.4

    def __post_init__(self) -> None:
        # Accept any iterable of methods but store a tuple: the fingerprint
        # must be hashable and the menu immutable once plans are cached.
        if not isinstance(self.methods, tuple):
            object.__setattr__(self, "methods", tuple(self.methods))

    def fingerprint(self) -> tuple:
        """The plan-cache key component: every knob that changes compiled
        SQL. Plans compiled under different knobs never cross-contaminate."""
        return (
            self.optimizer,
            self.merge,
            self.methods,
            self.use_statistics,
            self.min_plan_confidence,
        )


def _stage(tracer: Tracer | None, name: str, **attrs):
    """A tracer span when tracing, a no-op context otherwise."""
    return tracer.span(name, **attrs) if tracer is not None else nullcontext()


class SparqlEngine:
    """Compiles and runs SPARQL queries for one store."""

    def __init__(
        self,
        backend: Backend,
        emitter: TripleEmitter,
        stats: DatasetStatistics,
        spill_direct: frozenset[str] = frozenset(),
        spill_reverse: frozenset[str] = frozenset(),
        config: EngineConfig | None = None,
        cache: QueryCache | None = None,
    ) -> None:
        self.backend = backend
        self.emitter = emitter
        self.stats = stats
        self.spill_direct = spill_direct
        self.spill_reverse = spill_reverse
        self.config = config or EngineConfig()
        # Stores pass a long-lived cache that survives engine rebuilds (the
        # engine is reconstructed whenever storage metadata changes); a
        # standalone engine owns a private one sized per the config.
        self.cache = cache if cache is not None else QueryCache(self.config.cache_size)

    # ------------------------------------------------------------- compile

    def compile(
        self, sparql: "str | SelectQuery | AskQuery"
    ) -> tuple[sql.Query, SelectQuery]:
        """Translate SPARQL (text or an already parsed/rewritten query
        object) to a SQL query; returns (sql, normalized query). Always
        compiles from scratch — :meth:`query` adds the cached fast path."""
        compiled, select, _, _ = self._compile_stages(sparql)
        return compiled, select

    def _compile_stages(
        self,
        sparql: "str | SelectQuery | AskQuery",
        tracer: Tracer | None = None,
    ) -> tuple[sql.Query, SelectQuery, dict[str, float], dict[str, Any]]:
        """The full pipeline with per-stage wall timings (parse / plan /
        translate) for the cache's compile-cost accounting, plus the
        planner's decision record (which planner produced the join order,
        its confidence and estimates). With a tracer, every stage (and the
        planner's sub-stages) also opens a span."""
        started = time.perf_counter()
        with _stage(tracer, "parse"):
            parsed = parse_sparql(sparql) if isinstance(sparql, str) else sparql
            if isinstance(parsed, AskQuery):
                select = SelectQuery(variables=None, where=parsed.where, limit=1)
            else:
                select = parsed
            select = normalize(select)
        parsed_at = time.perf_counter()
        with _stage(tracer, "plan", optimizer=self.config.optimizer):
            plan, info = self._plan(select, tracer)
        planned_at = time.perf_counter()
        with _stage(tracer, "translate"):
            translator = PipelineTranslator(self.emitter)
            compiled = translator.translate(plan, select)
        done = time.perf_counter()
        timings = {
            "parse": parsed_at - started,
            "plan": planned_at - parsed_at,
            "translate": done - planned_at,
            "total": done - started,
        }
        return compiled, select, timings, info

    def compile_cached(
        self, sparql: str, tracer: Tracer | None = None, epoch: int | None = None
    ) -> CachedPlan:
        """Return the compiled plan for query text, reusing the plan cache.

        The key is the lexically canonicalized text plus the config
        fingerprint; a hit skips parse → dataflow → planbuild → merge →
        translate entirely. Entries compiled under an older stats epoch are
        invalidated here. ``epoch`` pins the lookup to a snapshot's epoch
        instead of the live one, so snapshot readers neither reuse plans
        from a future epoch nor clobber them.
        """
        key = canonicalize_sparql(sparql)
        fingerprint = self.config.fingerprint()
        if epoch is None:
            epoch = self.stats.epoch
        if tracer is None:
            entry = self.cache.lookup(key, fingerprint, epoch)
        else:
            with tracer.span("cache") as span:
                entry, outcome = self.cache.probe(key, fingerprint, epoch)
                span.set("outcome", outcome)
        if entry is not None:
            return entry
        compiled, select, timings, info = self._compile_stages(sparql, tracer)
        plan = CachedPlan(
            sql=compiled,
            variables=tuple(select.projected_variables()),
            epoch=epoch,
            compile_seconds=timings["total"],
            planner=str(info.get("planner", self.config.optimizer)),
        )
        self.cache.store(key, fingerprint, plan)
        self.cache.record_timings(**timings)
        return plan

    def cache_info(self) -> CacheInfo:
        """Plan-cache counters and cumulative per-stage compile timings."""
        return self.cache.info()

    def _plan(
        self, select: SelectQuery, tracer: Tracer | None = None
    ) -> tuple[ExecNode, dict[str, Any]]:
        pattern_tree = PatternTree.build(select.where)
        triples = select.triples()
        info: dict[str, Any] = {"planner": self.config.optimizer}
        if self.config.optimizer == "naive":
            with _stage(tracer, "planbuild", mode="textual"):
                execution_tree = textual_execution_tree(
                    select.where, self._textual_method_chooser
                )
        else:
            stats = (
                self.stats
                if self.config.use_statistics
                else DatasetStatistics(
                    total_triples=1, distinct_subjects=1, distinct_objects=1
                )
            )
            flow = None
            if self.config.optimizer == "cost":
                with _stage(tracer, "enumerate", triples=len(triples)):
                    plans = enumerate_join_orders(
                        triples, pattern_tree, stats, self.config.methods
                    )
                chosen = plans[0] if plans else None
                threshold = self.config.min_plan_confidence
                if chosen is not None and chosen.confidence >= threshold:
                    flow = flow_from_order(chosen)
                    info.update(
                        planner="cost",
                        confidence=chosen.confidence,
                        est_rows=chosen.rows,
                        est_cost=chosen.cost,
                        alternatives=len(plans),
                    )
                else:
                    # Low-confidence estimates (empty stats, variable
                    # predicates, decayed sketches): keep the paper's
                    # heuristic order rather than trusting guesswork.
                    info.update(
                        planner="cost-fallback",
                        confidence=(
                            chosen.confidence if chosen is not None else 0.0
                        ),
                        alternatives=len(plans),
                    )
            if flow is None:
                with _stage(tracer, "dataflow", triples=len(triples)):
                    graph = build_data_flow_graph(
                        triples, pattern_tree, stats, self.config.methods
                    )
                    flow = optimal_flow_tree(graph)
            with _stage(tracer, "planbuild", mode="flow"):
                execution_tree = build_execution_tree(select.where, flow)
        if self.config.merge and self.emitter.supports_merge:
            with _stage(tracer, "merge"):
                ctx = MergeContext.build(
                    pattern_tree, triples, self.spill_direct, self.spill_reverse
                )
                return merge_execution_tree(execution_tree, ctx), info
        return execution_tree, info

    def _textual_method_chooser(
        self, triple: TriplePattern, bound: frozenset[str]
    ) -> str:
        """Local, single-triple method choice: constants first, then any
        bound position, then scan — no global flow reasoning."""
        if not isinstance(triple.subject, Var):
            return ACS
        if not isinstance(triple.object, Var):
            return ACO
        if triple.subject.name in bound:
            return ACS
        if triple.object.name in bound:
            return ACO
        return SC

    # --------------------------------------------------------------- query

    def query(
        self,
        sparql: "str | SelectQuery | AskQuery",
        timeout: float | None = None,
        tracer: Tracer | None = None,
        budget: Any = None,
        snapshot: Any = None,
        epoch: int | None = None,
    ) -> SelectResult:
        if tracer is not None and tracer.enabled:
            return self._query_traced(sparql, timeout, tracer, budget, snapshot, epoch)
        if isinstance(sparql, str) and self.cache.enabled:
            plan = self.compile_cached(sparql, epoch=epoch)
            compiled, variables = plan.sql, list(plan.variables)
        else:
            compiled, select = self.compile(sparql)
            variables = select.projected_variables()
        columns, raw_rows = self.backend.execute(
            compiled, timeout=timeout, budget=budget, snapshot=snapshot
        )
        if budget is not None:
            budget.enforce_output(len(raw_rows))
        width = len(variables)  # drop any trailing marker column (ASK)
        rows: list[tuple[Term | None, ...]] = [
            tuple(
                None if key is None else term_from_key(key)
                for key in row[:width]
            )
            for row in raw_rows
        ]
        return SelectResult(variables, rows)

    def _query_traced(
        self,
        sparql: "str | SelectQuery | AskQuery",
        timeout: float | None,
        tracer: Tracer,
        budget: Any = None,
        snapshot: Any = None,
        epoch: int | None = None,
    ) -> SelectResult:
        """The PROFILE path: same pipeline as :meth:`query`, with spans
        around compile / execute / decode and per-operator metering in the
        backend. Kept separate so the untraced path stays word-for-word the
        zero-overhead hot path."""
        with tracer.span("compile"):
            if isinstance(sparql, str) and self.cache.enabled:
                plan = self.compile_cached(sparql, tracer, epoch=epoch)
                compiled, variables = plan.sql, list(plan.variables)
            else:
                compiled, select, _, _ = self._compile_stages(sparql, tracer)
                variables = select.projected_variables()
        with tracer.span("execute", backend=self.backend.name) as span:
            try:
                columns, raw_rows = self.backend.execute_profiled(
                    compiled,
                    timeout=timeout,
                    tracer=tracer,
                    budget=budget,
                    snapshot=snapshot,
                )
            finally:
                # Guardrail trips surface as span counters even when the
                # trip aborts the query mid-span.
                if budget is not None:
                    span.set("budget_ticks", budget.ticks)
                    if budget.tripped is not None:
                        span.set("guardrail", budget.tripped)
            if budget is not None:
                budget.enforce_output(len(raw_rows))
            span.set("rows_out", len(raw_rows))
        with tracer.span("decode") as span:
            width = len(variables)
            rows: list[tuple[Term | None, ...]] = [
                tuple(
                    None if key is None else term_from_key(key)
                    for key in row[:width]
                )
                for row in raw_rows
            ]
            span.set("rows_out", len(rows))
        return SelectResult(variables, rows)

    def ask(self, sparql: str, timeout: float | None = None) -> bool:
        return len(self.query(sparql, timeout=timeout)) > 0

    def explain(self, sparql: str) -> str:
        """The generated SQL text (the paper's Figure 13 view)."""
        if isinstance(sparql, str) and self.cache.enabled:
            return self.backend.sql_text(self.compile_cached(sparql).sql)
        compiled, _ = self.compile(sparql)
        return self.backend.sql_text(compiled)

    def explain_plan(self, sparql: str) -> str:
        """EXPLAIN: compile configuration, generated SQL, planner cost
        annotations (for the ``cost`` optimizer: chosen plan's estimated
        rows, cost, confidence, and whether it fell back to the
        heuristic), and — when the backend can describe its own access plan
        (sqlite's ``EXPLAIN QUERY PLAN``) — the backend plan. Compiles but
        never executes."""
        compiled, select, _, info = self._compile_stages(sparql)
        config = self.config
        lines = [
            f"-- backend: {self.backend.name}",
            f"-- optimizer: {config.optimizer}"
            f" (merge={'on' if config.merge else 'off'},"
            f" statistics={'on' if config.use_statistics else 'off'})",
            f"-- methods: {', '.join(config.methods)}",
            f"-- projection: {', '.join(select.projected_variables())}",
        ]
        if info.get("planner") == "cost":
            lines.append(
                "-- plan: cost-based"
                f" (est_rows={info['est_rows']:.1f},"
                f" est_cost={info['est_cost']:.1f},"
                f" confidence={info['confidence']:.2f},"
                f" alternatives={info['alternatives']})"
            )
        elif info.get("planner") == "cost-fallback":
            lines.append(
                "-- plan: heuristic fallback"
                f" (confidence={info['confidence']:.2f}"
                f" < min_plan_confidence={config.min_plan_confidence})"
            )
        lines.append(self.backend.sql_text(compiled))
        explain_backend = getattr(self.backend, "explain_query_plan", None)
        if callable(explain_backend):
            lines.append("-- backend plan:")
            lines.extend("--   " + line for line in explain_backend(compiled))
        return "\n".join(lines)

    # --------------------------------------------- plan-quality instruments

    def plan_alternatives(
        self, sparql: "str | SelectQuery", limit: int = 8
    ) -> tuple[SelectQuery, list[JoinOrderPlan]]:
        """Parse once and enumerate up to ``limit`` ranked join orders.

        The instrument behind the plan-quality battery: each returned
        order can be compiled with :meth:`compile_with_order` (sharing
        this one parsed/normalized select) and executed to measure the
        chosen plan's regret against the best alternative.
        """
        parsed = parse_sparql(sparql) if isinstance(sparql, str) else sparql
        if isinstance(parsed, AskQuery):
            parsed = SelectQuery(variables=None, where=parsed.where, limit=1)
        select = normalize(parsed)
        pattern_tree = PatternTree.build(select.where)
        plans = enumerate_join_orders(
            select.triples(),
            pattern_tree,
            self.stats,
            self.config.methods,
            limit=limit,
        )
        return select, plans

    def compile_with_order(
        self, select: SelectQuery, plan: JoinOrderPlan
    ) -> sql.Query:
        """Compile an already-normalized select under a specific enumerated
        join order (the rest of the pipeline — plan build, merge,
        translation — is the production one)."""
        flow = flow_from_order(plan)
        execution_tree = build_execution_tree(select.where, flow)
        if self.config.merge and self.emitter.supports_merge:
            pattern_tree = PatternTree.build(select.where)
            ctx = MergeContext.build(
                pattern_tree,
                select.triples(),
                self.spill_direct,
                self.spill_reverse,
            )
            execution_tree = merge_execution_tree(execution_tree, ctx)
        translator = PipelineTranslator(self.emitter)
        return translator.translate(execution_tree, select)
