"""End-to-end SPARQL evaluation: the paper's Figure 5 architecture.

``SparqlEngine`` wires the stages together: parse tree → data flow graph →
optimal flow tree (DFB) → execution tree (QPB) → merged query plan →
SQL → backend execution → term decoding. The ``optimizer="naive"`` mode
replaces the flow-guided plan with the bottom-up textual-order plan, which
is the sub-optimal comparator of §3.3 / Figure 14.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backends.base import Backend
from ..core.stats import DatasetStatistics
from ..rdf.terms import Term, term_from_key
from ..relational import ast as sql
from .algebra import PatternTree, normalize
from .ast import AskQuery, SelectQuery, TriplePattern, Var
from .optimizer.cost import ACO, ACS, ALL_METHODS, SC
from .optimizer.dataflow import build_data_flow_graph, optimal_flow_tree
from .optimizer.merge import MergeContext, merge_execution_tree
from .optimizer.planbuilder import (
    ExecNode,
    build_execution_tree,
    textual_execution_tree,
)
from .parser import parse_sparql
from .results import SelectResult
from .translator.pipeline import PipelineTranslator, TripleEmitter


@dataclass
class EngineConfig:
    """Evaluation knobs (ablations flip these)."""

    optimizer: str = "hybrid"  # "hybrid" (flow-guided) or "naive" (textual)
    merge: bool = True  # star-query node merging on/off
    methods: tuple[str, ...] = ALL_METHODS
    use_statistics: bool = True  # False: cost-blind flow (heuristics only)


class SparqlEngine:
    """Compiles and runs SPARQL queries for one store."""

    def __init__(
        self,
        backend: Backend,
        emitter: TripleEmitter,
        stats: DatasetStatistics,
        spill_direct: frozenset[str] = frozenset(),
        spill_reverse: frozenset[str] = frozenset(),
        config: EngineConfig | None = None,
    ) -> None:
        self.backend = backend
        self.emitter = emitter
        self.stats = stats
        self.spill_direct = spill_direct
        self.spill_reverse = spill_reverse
        self.config = config or EngineConfig()

    # ------------------------------------------------------------- compile

    def compile(
        self, sparql: "str | SelectQuery | AskQuery"
    ) -> tuple[sql.Query, SelectQuery]:
        """Translate SPARQL (text or an already parsed/rewritten query
        object) to a SQL query; returns (sql, normalized query)."""
        parsed = parse_sparql(sparql) if isinstance(sparql, str) else sparql
        if isinstance(parsed, AskQuery):
            select = SelectQuery(variables=None, where=parsed.where, limit=1)
        else:
            select = parsed
        select = normalize(select)
        plan = self._plan(select)
        translator = PipelineTranslator(self.emitter)
        return translator.translate(plan, select), select

    def _plan(self, select: SelectQuery) -> ExecNode:
        pattern_tree = PatternTree.build(select.where)
        triples = select.triples()
        if self.config.optimizer == "naive":
            execution_tree = textual_execution_tree(
                select.where, self._textual_method_chooser
            )
        else:
            stats = (
                self.stats
                if self.config.use_statistics
                else DatasetStatistics(
                    total_triples=1, distinct_subjects=1, distinct_objects=1
                )
            )
            graph = build_data_flow_graph(
                triples, pattern_tree, stats, self.config.methods
            )
            flow = optimal_flow_tree(graph)
            execution_tree = build_execution_tree(select.where, flow)
        if self.config.merge and self.emitter.supports_merge:
            ctx = MergeContext.build(
                pattern_tree, triples, self.spill_direct, self.spill_reverse
            )
            return merge_execution_tree(execution_tree, ctx)
        return execution_tree

    def _textual_method_chooser(
        self, triple: TriplePattern, bound: frozenset[str]
    ) -> str:
        """Local, single-triple method choice: constants first, then any
        bound position, then scan — no global flow reasoning."""
        if not isinstance(triple.subject, Var):
            return ACS
        if not isinstance(triple.object, Var):
            return ACO
        if triple.subject.name in bound:
            return ACS
        if triple.object.name in bound:
            return ACO
        return SC

    # --------------------------------------------------------------- query

    def query(
        self,
        sparql: "str | SelectQuery | AskQuery",
        timeout: float | None = None,
    ) -> SelectResult:
        compiled, select = self.compile(sparql)
        columns, raw_rows = self.backend.execute(compiled, timeout=timeout)
        variables = select.projected_variables()
        width = len(variables)  # drop any trailing marker column (ASK)
        rows: list[tuple[Term | None, ...]] = [
            tuple(
                None if key is None else term_from_key(key)
                for key in row[:width]
            )
            for row in raw_rows
        ]
        return SelectResult(variables, rows)

    def ask(self, sparql: str, timeout: float | None = None) -> bool:
        return len(self.query(sparql, timeout=timeout)) > 0

    def explain(self, sparql: str) -> str:
        """The generated SQL text (the paper's Figure 13 view)."""
        compiled, _ = self.compile(sparql)
        return self.backend.sql_text(compiled)
