"""Star-query node merging (paper §3.2.1, Figure 11).

Triples that touch the same entity with the same access method can share a
single primary-table access — the central payoff of the entity-oriented
layout. Merging must respect:

* **structural constraints** — same entity, same method, constant
  predicates, and none of the predicates involved in spills (spilled
  entities span rows, so a one-row star lookup would miss them; the
  translator falls back to cascaded accesses exactly as the paper
  prescribes);
* **semantic constraints** — Definitions 3.9–3.11 (AND / OR / OPTIONAL
  mergeable), evaluated over the original pattern tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ...rdf.terms import URI
from ..algebra import PatternTree
from ..ast import TriplePattern, Var
from .cost import ACO, ACS
from .planbuilder import (
    AccessNode,
    AndNode,
    EmptyNode,
    ExecNode,
    FilterNode,
    OptNode,
    OrNode,
)


@dataclass(eq=False)
class MergeMember:
    triple: TriplePattern
    optional: bool = False


@dataclass(eq=False)
class MergedNode:
    """A single primary-table access evaluating several triple patterns.

    ``kind`` is ``"AND"`` (conjunctive members, possibly with trailing
    optional members) or ``"OR"`` (disjunctive members — the translator
    emits the Figure 13 "flip").
    """

    method: str
    entity: object  # Var or Term
    kind: str
    members: list[MergeMember] = field(default_factory=list)

    @property
    def triples(self) -> list[TriplePattern]:
        return [member.triple for member in self.members]

    def __repr__(self) -> str:
        labels = ", ".join(str(m.triple) for m in self.members)
        return f"Merged{self.kind}({labels}; {self.method})"


PlanNode = Union[ExecNode, MergedNode]


@dataclass
class MergeContext:
    """Everything the merger needs to know about query and storage."""

    pattern_tree: PatternTree
    spill_direct: frozenset[str] = frozenset()
    spill_reverse: frozenset[str] = frozenset()
    variable_triple_counts: dict[str, int] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        pattern_tree: PatternTree,
        triples: list[TriplePattern],
        spill_direct: frozenset[str] = frozenset(),
        spill_reverse: frozenset[str] = frozenset(),
    ) -> "MergeContext":
        counts: dict[str, int] = {}
        for triple in triples:
            for variable in triple.variables():
                counts[variable] = counts.get(variable, 0) + 1
        return cls(pattern_tree, spill_direct, spill_reverse, counts)

    def eligible(self, node: AccessNode) -> bool:
        """Structural per-triple constraints: constant predicate, no spills."""
        predicate = node.triple.predicate
        if not isinstance(predicate, URI):
            return False
        spills = self.spill_reverse if node.method == ACO else self.spill_direct
        return predicate.value not in spills


def entity_of(triple: TriplePattern, method: str):
    """The entity a method accesses: subject for acs and sc (both address
    the DPH row of the subject — a scan is just an unkeyed DPH access),
    object for aco."""
    if method == ACO:
        return triple.object
    return triple.subject


def _merged_method(a: str, b: str) -> str | None:
    """Methods are merge-compatible when they address the same primary
    table: acs/sc both hit DPH (the merged access probes when the entity is
    bound and scans otherwise), aco hits RPH."""
    if a == ACO and b == ACO:
        return ACO
    if a != ACO and b != ACO:
        return ACS if ACS in (a, b) else a
    return None


def _same_entity(a, b) -> bool:
    if isinstance(a, Var) and isinstance(b, Var):
        return a.name == b.name
    if isinstance(a, Var) or isinstance(b, Var):
        return False
    return a == b


def merge_execution_tree(node: ExecNode, ctx: MergeContext) -> PlanNode:
    """Bottom-up merging rewrite producing the query plan tree."""
    if isinstance(node, AccessNode) or isinstance(node, EmptyNode):
        return node
    if isinstance(node, FilterNode):
        return FilterNode(merge_execution_tree(node.child, ctx), node.filters)
    if isinstance(node, AndNode):
        left = merge_execution_tree(node.left, ctx)
        right = merge_execution_tree(node.right, ctx)
        merged = _try_and_merge(left, right, ctx)
        return merged if merged is not None else AndNode(left, right)
    if isinstance(node, OrNode):
        branches = [merge_execution_tree(branch, ctx) for branch in node.branches]
        merged = _try_or_merge(branches, ctx)
        return merged if merged is not None else OrNode(branches)
    if isinstance(node, OptNode):
        left = merge_execution_tree(node.left, ctx)
        right = merge_execution_tree(node.right, ctx)
        merged = _try_opt_merge(left, right, ctx)
        return merged if merged is not None else OptNode(left, right)
    if isinstance(node, MergedNode):
        return node
    raise TypeError(f"unknown execution node {node!r}")


# ---------------------------------------------------------------------------
# Merge attempts
# ---------------------------------------------------------------------------


def _tail_star(node: PlanNode) -> tuple[PlanNode | None, object | None]:
    """Locate the rightmost access in a left-deep AND chain, returning
    (tail, rebuild) where rebuild(replacement) reconstructs the tree."""
    if isinstance(node, (AccessNode, MergedNode)):
        return node, lambda replacement: replacement
    if isinstance(node, AndNode):
        if isinstance(node.right, (AccessNode, MergedNode)):
            tail = node.right
            return tail, lambda replacement: AndNode(node.left, replacement)
    return None, None


def _as_and_star(tail: PlanNode) -> MergedNode | None:
    """View an AccessNode or conjunctive MergedNode as a star under
    construction; OR-merged nodes cannot absorb conjunctive members."""
    if isinstance(tail, AccessNode):
        return MergedNode(
            tail.method,
            entity_of(tail.triple, tail.method),
            "AND",
            [MergeMember(tail.triple)],
        )
    if isinstance(tail, MergedNode) and tail.kind == "AND":
        return MergedNode(tail.method, tail.entity, "AND", list(tail.members))
    return None


def _try_and_merge(
    left: PlanNode, right: PlanNode, ctx: MergeContext
) -> PlanNode | None:
    if not isinstance(right, AccessNode) or not ctx.eligible(right):
        return None
    tail, rebuild = _tail_star(left)
    if tail is None:
        return None
    star = _as_and_star(tail)
    if star is None:
        return None
    combined_method = _merged_method(star.method, right.method)
    if combined_method is None:
        return None
    star.method = combined_method
    if not _same_entity(star.entity, entity_of(right.triple, right.method)):
        return None
    if _value_var_collides(star, right):
        return None
    if isinstance(tail, AccessNode) and not ctx.eligible(tail):
        return None
    if isinstance(tail, MergedNode) and any(m.optional for m in tail.members):
        # optional members must stay last; a required member cannot join
        # after them in a single access
        return None
    for member in star.members:
        if not ctx.pattern_tree.and_mergeable(member.triple, right.triple):
            return None
    star.members.append(MergeMember(right.triple))
    return rebuild(star)


def _value_var_collides(star: MergedNode, right: AccessNode) -> bool:
    """A new member whose value variable is already bound by an existing
    member would need cross-member equality inside one access; decline."""
    method = right.method
    new_value = (
        right.triple.subject if method == ACO else right.triple.object
    )
    if not isinstance(new_value, Var):
        return False
    entity = entity_of(right.triple, method)
    if isinstance(entity, Var) and new_value.name == entity.name:
        return False
    for member in star.members:
        existing = (
            member.triple.subject if method == ACO else member.triple.object
        )
        if isinstance(existing, Var) and existing.name == new_value.name:
            return True
    return False


def _try_or_merge(branches: list[PlanNode], ctx: MergeContext) -> MergedNode | None:
    if len(branches) < 2:
        return None
    if not all(isinstance(branch, AccessNode) for branch in branches):
        return None
    accesses: list[AccessNode] = branches  # type: ignore[assignment]
    first = accesses[0]
    method = first.method
    entity = entity_of(first.triple, first.method)
    for access in accesses:
        combined = _merged_method(method, access.method)
        if combined is None or not ctx.eligible(access):
            return None
        method = combined
        if not _same_entity(entity, entity_of(access.triple, access.method)):
            return None
    for i, a in enumerate(accesses):
        for b in accesses[i + 1:]:
            if not ctx.pattern_tree.or_mergeable(a.triple, b.triple):
                return None
    return MergedNode(
        method,
        entity,
        "OR",
        [MergeMember(access.triple) for access in accesses],
    )


def _try_opt_merge(
    left: PlanNode, right: PlanNode, ctx: MergeContext
) -> PlanNode | None:
    if not isinstance(right, AccessNode) or not ctx.eligible(right):
        return None
    # The optional triple's fresh variables must not be shared with the rest
    # of the query, otherwise the single-access CASE projection could not
    # express the join with the other occurrence.
    for position in (right.triple.object, right.triple.subject):
        if isinstance(position, Var):
            entity = entity_of(right.triple, right.method)
            if isinstance(entity, Var) and position.name == entity.name:
                continue
            if ctx.variable_triple_counts.get(position.name, 0) > 1:
                return None
    tail, rebuild = _tail_star(left)
    if tail is None:
        return None
    star = _as_and_star(tail)
    if star is None:
        return None
    combined_method = _merged_method(star.method, right.method)
    if combined_method is None:
        return None
    star.method = combined_method
    if not _same_entity(star.entity, entity_of(right.triple, right.method)):
        return None
    if isinstance(tail, AccessNode) and not ctx.eligible(tail):
        return None
    if _value_var_collides(star, right):
        return None
    for member in star.members:
        if member.optional:
            continue
        if not ctx.pattern_tree.opt_mergeable(member.triple, right.triple):
            return None
    star.members.append(MergeMember(right.triple, optional=True))
    return rebuild(star)
