"""Access methods, the triple-method cost function (paper Def. 3.1), and
the cardinality estimator behind the cost-based join-order enumerator.

The method menu matches the DB2RDF configuration of Section 4: subject
lookup (``acs``, the DPH entry index), object lookup (``aco``, the RPH entry
index), and full scan (``sc``) — there are no predicate indexes.

On top of the paper's per-access TMC heuristic, :class:`CardinalityEstimator`
estimates *result* cardinalities from the per-predicate statistics layer:
per-pattern output sizes from exact counts and top-k constants, and join
selectivities from distinct counts (``1/max(d_l, d_r)``) refined by min-hash
sketch overlaps. Every estimate carries a confidence in ``[0, 1]``; the
planner falls back to the paper's heuristic order when the whole plan's
confidence drops below ``EngineConfig.min_plan_confidence``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...core.stats import (
    DatasetStatistics,
    MinHashSketch,
    intersection_estimate,
)
from ...rdf.terms import Term, term_key
from ..ast import TriplePattern, Var

ACS = "acs"
ACO = "aco"
SC = "sc"
ALL_METHODS = (ACS, ACO, SC)


def required_vars(triple: TriplePattern, method: str) -> frozenset[str]:
    """Definition 3.3: variables that must be bound before this lookup."""
    if method == ACS and isinstance(triple.subject, Var):
        return frozenset({triple.subject.name})
    if method == ACO and isinstance(triple.object, Var):
        return frozenset({triple.object.name})
    return frozenset()


def produced_vars(triple: TriplePattern, method: str) -> frozenset[str]:
    """Definition 3.2: variables bound after the lookup (all of the
    triple's variables — the access touches the whole triple)."""
    return frozenset(triple.variables())


def triple_method_cost(
    triple: TriplePattern, method: str, stats: DatasetStatistics
) -> float:
    """Definition 3.1 TMC(t, m, S): estimated rows retrieved.

    Constants give exact top-k counts when known; variables assumed bound by
    a prior access cost the per-entity average (the paper's Figure 6
    walkthrough: TMC(t4, aco)=2 exact, TMC(t4, acs)=5 average,
    TMC(t4, sc)=26 total).
    """
    if method == SC:
        return stats.scan_cardinality()
    predicate = _constant_predicate(triple)
    if method == ACS:
        subject = triple.subject
        if isinstance(subject, Var):
            return stats.avg_triples_per_subject
        return stats.subject_cardinality(_as_term(subject), predicate)
    if method == ACO:
        obj = triple.object
        if isinstance(obj, Var):
            return stats.avg_triples_per_object
        return stats.object_cardinality(_as_term(obj), predicate)
    raise ValueError(f"unknown access method {method!r}")


def _constant_predicate(triple: TriplePattern) -> str | None:
    predicate = triple.predicate
    return None if isinstance(predicate, Var) else predicate.value


def _as_term(value) -> Term:
    return value


# --------------------------------------------------------------------------
# Cardinality estimation (cost-based planning)
# --------------------------------------------------------------------------

#: confidence tiers — combined with ``min`` along a plan, so one weak link
#: lowers the whole plan's confidence without long chains decaying to zero
CONF_EXACT = 1.0
CONF_SKETCH = 0.85
CONF_AVERAGE = 0.7
CONF_VARIABLE_PREDICATE = 0.25


@dataclass(frozen=True)
class TripleEstimate:
    """Standalone output cardinality of one triple pattern."""

    rows: float
    confidence: float
    predicate: str | None
    #: distinct subject / object values among the matching triples (1.0 for
    #: constant positions) — the join-selectivity denominators
    subject_distinct: float
    object_distinct: float


@dataclass
class VarStat:
    """What the estimator knows about one bound variable: how many distinct
    values it takes in the intermediate result, and (when it came from a
    constant-predicate column) that column's min-hash sketch."""

    distinct: float
    sketch: MinHashSketch | None = None


@dataclass
class JoinState:
    """Running estimate for a join prefix: cardinality, confidence, and
    per-variable distinct counts; threaded through :meth:`extend`."""

    rows: float = 1.0
    confidence: float = 1.0
    bound: dict[str, VarStat] = field(default_factory=dict)
    started: bool = False


class CardinalityEstimator:
    """Estimates pattern and join cardinalities from dataset statistics.

    All estimates are deterministic functions of the statistics (sketches
    hash with fixed keys), so the same data always yields the same plan.
    """

    def __init__(self, stats: DatasetStatistics) -> None:
        self.stats = stats

    def fresh_state(self) -> JoinState:
        return JoinState(rows=1.0, confidence=self._base_confidence())

    def _base_confidence(self) -> float:
        """Empty statistics are no evidence at all; heavy incremental
        deletion since the last full collection discounts sketch-era
        numbers (sketches cannot forget members)."""
        stats = self.stats
        if stats.total_triples <= 0:
            return 0.0
        ratio = stats.decayed_deletes / stats.total_triples
        if ratio <= 0.05:
            return 1.0
        return max(0.5, 1.0 - ratio)

    # -------------------------------------------------------- single triple

    def triple_estimate(self, triple: TriplePattern) -> TripleEstimate:
        """Estimated number of triples matching the pattern alone.

        Exact for a constant predicate with a known count and for top-k
        constants (the Figure 6b contract); constants combine with the
        predicate base by independence (``n_p · c/N``), clamped to every
        known upper bound.
        """
        stats = self.stats
        total = float(max(stats.total_triples, 0))
        predicate = _constant_predicate(triple)
        if predicate is None:
            rows, confidence = total, CONF_VARIABLE_PREDICATE
        elif predicate in stats.predicate_counts:
            rows = float(max(0, stats.predicate_counts[predicate]))
            confidence = CONF_EXACT
        else:
            rows, confidence = stats.predicate_cardinality(predicate), CONF_AVERAGE

        caps: list[tuple[float, float]] = []
        for position in ("subject", "object"):
            term = getattr(triple, position)
            if isinstance(term, Var):
                continue
            caps.append(self._constant_cap(term, position, predicate))
        if len(caps) == 1 and predicate is None:
            # Single constant, variable predicate: the constant's triple
            # count *is* the answer — exact for top-k constants (Fig. 6b).
            rows = caps[0][0]
            confidence = min(confidence, caps[0][1])
        elif caps:
            # Constants filter the predicate base by independence
            # (``n_p · Π c/N``), clamped to each known upper bound; the
            # independence assumption caps confidence below "exact".
            for cap, cap_conf in caps:
                confidence = min(confidence, cap_conf, CONF_SKETCH)
                if total > 0:
                    rows *= min(1.0, cap / total)
            rows = min(rows, *(cap for cap, _ in caps))
        rows = max(rows, 0.0)

        subject_distinct = (
            1.0
            if not isinstance(triple.subject, Var)
            else _clamp_distinct(stats.distinct_subjects_for(predicate), rows)
        )
        object_distinct = (
            1.0
            if not isinstance(triple.object, Var)
            else _clamp_distinct(stats.distinct_objects_for(predicate), rows)
        )
        return TripleEstimate(
            rows=rows,
            confidence=confidence,
            predicate=predicate,
            subject_distinct=subject_distinct,
            object_distinct=object_distinct,
        )

    def _constant_cap(
        self, term: Term, position: str, predicate: str | None
    ) -> tuple[float, float]:
        """Upper bound on triples carrying a constant in ``position`` and
        the confidence of that bound (exact for top-k constants)."""
        key = term_key(term)
        stats = self.stats
        if position == "subject":
            exact = stats.top_subjects.get(key)
            if exact is not None:
                return float(max(0, exact)), CONF_EXACT
            return stats.subject_cardinality(key, predicate), CONF_AVERAGE
        exact = stats.top_objects.get(key)
        if exact is not None:
            return float(max(0, exact)), CONF_EXACT
        return stats.object_cardinality(key, predicate), CONF_AVERAGE

    # ---------------------------------------------------------------- joins

    def extend(self, state: JoinState, triple: TriplePattern) -> JoinState:
        """State after joining one more triple pattern into the prefix.

        Shared variables contribute ``overlap / (d_l · d_r)`` selectivity
        where the overlap comes from sketch intersection when both sides
        expose a sketch, else ``min(d_l, d_r)`` (the classic
        ``1/max(d_l, d_r)`` rule). No shared variable means a cross
        product.
        """
        t = self.triple_estimate(triple)
        base = state.rows if state.started else 1.0
        rows = base * t.rows
        confidence = min(state.confidence, t.confidence)

        roles = self._roles(triple, t)
        bound: dict[str, VarStat] = {
            name: VarStat(stat.distinct, stat.sketch)
            for name, stat in state.bound.items()
        }
        for name, (distinct_t, sketch_t) in roles.items():
            existing = bound.get(name)
            if existing is None:
                bound[name] = VarStat(distinct_t, sketch_t)
                continue
            d_l, d_r = existing.distinct, distinct_t
            if existing.sketch is not None and sketch_t is not None:
                overlap = intersection_estimate(
                    existing.sketch, d_l, sketch_t, d_r
                )
                confidence = min(confidence, CONF_SKETCH)
            else:
                overlap = min(d_l, d_r)
                confidence = min(confidence, CONF_AVERAGE)
            # A zero sketch overlap usually means "tiny", not "empty": keep
            # a floor of one value so join costs never vanish entirely.
            overlap = max(1.0, min(overlap, d_l, d_r))
            if d_l > 0 and d_r > 0:
                rows *= overlap / (d_l * d_r)
            keep = existing.sketch if d_l <= d_r else sketch_t
            bound[name] = VarStat(overlap, keep)
        rows = max(rows, 0.0)
        # No variable can take more distinct values than there are rows.
        ceiling = max(rows, 1.0)
        for stat in bound.values():
            stat.distinct = min(stat.distinct, ceiling)
        return JoinState(
            rows=rows, confidence=confidence, bound=bound, started=True
        )

    def _roles(
        self, triple: TriplePattern, t: TripleEstimate
    ) -> dict[str, tuple[float, MinHashSketch | None]]:
        """Each variable of the triple with its distinct count and (for
        constant predicates) the matching column sketch. A variable used in
        two positions keeps the smaller distinct count."""
        stats = self.stats
        roles: dict[str, tuple[float, MinHashSketch | None]] = {}

        def put(name: str, distinct: float, sketch: MinHashSketch | None) -> None:
            old = roles.get(name)
            if old is None or distinct < old[0]:
                roles[name] = (distinct, sketch)

        if isinstance(triple.subject, Var):
            sketch = (
                stats.sketch_for(t.predicate, "subject") if t.predicate else None
            )
            put(triple.subject.name, t.subject_distinct, sketch)
        if isinstance(triple.object, Var):
            sketch = (
                stats.sketch_for(t.predicate, "object") if t.predicate else None
            )
            put(triple.object.name, t.object_distinct, sketch)
        if isinstance(triple.predicate, Var):
            put(
                triple.predicate.name,
                float(max(1, len(stats.predicate_counts))),
                None,
            )
        return roles

    # ---------------------------------------------------------- access cost

    def access_cost(
        self, triple: TriplePattern, method: str, state: JoinState
    ) -> float:
        """Estimated rows *read* when executing the access at this point in
        the plan: per-binding lookups scale with the prefix cardinality,
        scans read the whole table once (the translator hash-joins them)."""
        stats = self.stats
        if method == SC:
            return stats.scan_cardinality()
        predicate = _constant_predicate(triple)
        prefix = max(state.rows, 1.0) if state.started else 1.0
        if method == ACS:
            subject = triple.subject
            if isinstance(subject, Var):
                return prefix * stats.subject_cardinality(None, predicate)
            return stats.subject_cardinality(_as_term(subject), predicate)
        if method == ACO:
            obj = triple.object
            if isinstance(obj, Var):
                return prefix * stats.object_cardinality(None, predicate)
            return stats.object_cardinality(_as_term(obj), predicate)
        raise ValueError(f"unknown access method {method!r}")


def _clamp_distinct(distinct: float, rows: float) -> float:
    return max(1.0, min(distinct, max(rows, 1.0)))
