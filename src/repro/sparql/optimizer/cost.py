"""Access methods and the triple-method cost function (paper Def. 3.1).

The method menu matches the DB2RDF configuration of Section 4: subject
lookup (``acs``, the DPH entry index), object lookup (``aco``, the RPH entry
index), and full scan (``sc``) — there are no predicate indexes.
"""

from __future__ import annotations

from ...core.stats import DatasetStatistics
from ...rdf.terms import Term
from ..ast import TriplePattern, Var

ACS = "acs"
ACO = "aco"
SC = "sc"
ALL_METHODS = (ACS, ACO, SC)


def required_vars(triple: TriplePattern, method: str) -> frozenset[str]:
    """Definition 3.3: variables that must be bound before this lookup."""
    if method == ACS and isinstance(triple.subject, Var):
        return frozenset({triple.subject.name})
    if method == ACO and isinstance(triple.object, Var):
        return frozenset({triple.object.name})
    return frozenset()


def produced_vars(triple: TriplePattern, method: str) -> frozenset[str]:
    """Definition 3.2: variables bound after the lookup (all of the
    triple's variables — the access touches the whole triple)."""
    return frozenset(triple.variables())


def triple_method_cost(
    triple: TriplePattern, method: str, stats: DatasetStatistics
) -> float:
    """Definition 3.1 TMC(t, m, S): estimated rows retrieved.

    Constants give exact top-k counts when known; variables assumed bound by
    a prior access cost the per-entity average (the paper's Figure 6
    walkthrough: TMC(t4, aco)=2 exact, TMC(t4, acs)=5 average,
    TMC(t4, sc)=26 total).
    """
    if method == SC:
        return stats.scan_cardinality()
    if method == ACS:
        subject = triple.subject
        if isinstance(subject, Var):
            return stats.avg_triples_per_subject
        return stats.subject_cardinality(_as_term(subject))
    if method == ACO:
        obj = triple.object
        if isinstance(obj, Var):
            return stats.avg_triples_per_object
        return stats.object_cardinality(_as_term(obj))
    raise ValueError(f"unknown access method {method!r}")


def _as_term(value) -> Term:
    return value
