"""The Data Flow Builder (paper §3.1.1).

Builds the weighted data-flow graph over (triple, access-method) pairs
(Definition 3.8) and extracts the optimal flow tree with the greedy
cheapest-edge algorithm of Figure 9 (finding the true minimum tree is
NP-hard, Theorem 3.1).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from ...core.stats import DatasetStatistics
from ..algebra import PatternTree
from ..ast import TriplePattern
from .cost import ALL_METHODS, produced_vars, required_vars, triple_method_cost


@dataclass(frozen=True, eq=False)
class FlowNode:
    """A (triple pattern, access method) pair — a vertex of the flow graph.

    Equality is by triple *identity* plus method, so structurally identical
    triple patterns stay distinct vertices.
    """

    triple: TriplePattern
    method: str

    def __repr__(self) -> str:
        return f"({self.triple}, {self.method})"

    def __hash__(self) -> int:
        return hash((id(self.triple), self.method))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FlowNode)
            and self.triple is other.triple
            and self.method == other.method
        )


@dataclass
class DataFlowGraph:
    """Vertices, the root's outgoing edges, and producer→consumer edges."""

    nodes: list[FlowNode]
    root_edges: list[tuple[FlowNode, float]]
    edges: dict[FlowNode, list[tuple[FlowNode, float]]]
    costs: dict[FlowNode, float]


def build_data_flow_graph(
    triples: list[TriplePattern],
    tree: PatternTree,
    stats: DatasetStatistics,
    methods: tuple[str, ...] = ALL_METHODS,
) -> DataFlowGraph:
    """Definition 3.8, with the paper's two exclusions: no edges between
    OR-connected triples, and no edges whose producer is optional with
    respect to the consumer."""
    nodes: list[FlowNode] = [
        FlowNode(triple, method) for triple in triples for method in methods
    ]
    costs = {
        node: triple_method_cost(node.triple, node.method, stats) for node in nodes
    }

    root_edges: list[tuple[FlowNode, float]] = []
    producers_by_var: dict[str, list[FlowNode]] = {}
    consumers_by_var: dict[str, list[FlowNode]] = {}
    for node in nodes:
        required = required_vars(node.triple, node.method)
        if not required:
            root_edges.append((node, costs[node]))
        else:
            for variable in required:
                consumers_by_var.setdefault(variable, []).append(node)
        for variable in produced_vars(node.triple, node.method):
            producers_by_var.setdefault(variable, []).append(node)

    edges: dict[FlowNode, list[tuple[FlowNode, float]]] = {node: [] for node in nodes}
    # Our access methods require at most one variable, so an edge exists
    # exactly when the producer covers the consumer's single required var.
    for variable, consumers in consumers_by_var.items():
        for producer in producers_by_var.get(variable, []):
            for consumer in consumers:
                if producer.triple is consumer.triple:
                    continue
                if tree.or_connected(producer.triple, consumer.triple):
                    continue
                if tree.optional_connected(consumer.triple, producer.triple):
                    # the producer is optional w.r.t. the consumer: its
                    # bindings may be absent, so it cannot feed the lookup
                    continue
                edges[producer].append((consumer, costs[consumer]))
    return DataFlowGraph(nodes, root_edges, edges, costs)


@dataclass
class FlowTree:
    """The greedy optimal flow tree: chosen method and rank per triple."""

    order: list[FlowNode] = field(default_factory=list)
    parent: dict[FlowNode, FlowNode | None] = field(default_factory=dict)
    _method_by_triple: dict[int, str] = field(default_factory=dict)
    _rank_by_triple: dict[int, int] = field(default_factory=dict)
    _children: dict[FlowNode, list[FlowNode]] = field(default_factory=dict)

    def add(self, node: FlowNode, parent: FlowNode | None) -> None:
        self._rank_by_triple[id(node.triple)] = len(self.order)
        self.order.append(node)
        self.parent[node] = parent
        self._method_by_triple[id(node.triple)] = node.method
        self._children.setdefault(node, [])
        if parent is not None:
            self._children.setdefault(parent, []).append(node)

    def method_of(self, triple: TriplePattern) -> str:
        return self._method_by_triple[id(triple)]

    def rank_of(self, triple: TriplePattern) -> int:
        return self._rank_by_triple[id(triple)]

    def is_leaf(self, node: FlowNode) -> bool:
        return not self._children.get(node)

    def total_cost(self, graph: DataFlowGraph) -> float:
        return sum(graph.costs[node] for node in self.order)


def optimal_flow_tree(graph: DataFlowGraph) -> FlowTree:
    """Figure 9: grow the tree by repeatedly taking the cheapest edge from a
    tree node to a node whose triple is not yet covered (Prim-style with a
    heap; identical choice sequence to the paper's sorted-edge scan)."""
    tree = FlowTree()
    covered: set[int] = set()
    counter = itertools.count()
    heap: list[tuple[float, int, FlowNode, FlowNode | None]] = []
    for node, weight in graph.root_edges:
        heapq.heappush(heap, (weight, next(counter), node, None))

    total_triples = len({id(node.triple) for node in graph.nodes})
    while heap and len(covered) < total_triples:
        weight, _, node, parent = heapq.heappop(heap)
        if id(node.triple) in covered:
            continue
        tree.add(node, parent)
        covered.add(id(node.triple))
        for successor, successor_weight in graph.edges.get(node, []):
            if id(successor.triple) not in covered:
                heapq.heappush(
                    heap, (successor_weight, next(counter), successor, node)
                )
    if len(covered) < total_triples:
        # Disconnected remainder (can only happen with a restricted method
        # menu): fall back to scans so every triple is reachable.
        for node in graph.nodes:
            if node.method == "sc" and id(node.triple) not in covered:
                tree.add(node, None)
                covered.add(id(node.triple))
    return tree


def build_flow(
    triples: list[TriplePattern],
    tree: PatternTree,
    stats: DatasetStatistics,
    methods: tuple[str, ...] = ALL_METHODS,
) -> FlowTree:
    """Convenience: graph construction plus greedy extraction."""
    graph = build_data_flow_graph(triples, tree, stats, methods)
    return optimal_flow_tree(graph)
