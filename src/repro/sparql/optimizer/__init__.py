"""The hybrid SPARQL optimizer: data-flow builder + query-plan builder."""

from .cost import ACO, ACS, ALL_METHODS, SC, triple_method_cost
from .dataflow import (
    DataFlowGraph,
    FlowNode,
    FlowTree,
    build_data_flow_graph,
    build_flow,
    optimal_flow_tree,
)
from .merge import MergeContext, MergedNode, MergeMember, merge_execution_tree
from .planbuilder import (
    AccessNode,
    AndNode,
    EmptyNode,
    ExecNode,
    FilterNode,
    OptNode,
    OrNode,
    build_execution_tree,
    textual_execution_tree,
)

__all__ = [
    "ACO",
    "ACS",
    "ALL_METHODS",
    "AccessNode",
    "AndNode",
    "DataFlowGraph",
    "EmptyNode",
    "ExecNode",
    "FilterNode",
    "FlowNode",
    "FlowTree",
    "MergeContext",
    "MergeMember",
    "MergedNode",
    "OptNode",
    "OrNode",
    "SC",
    "build_data_flow_graph",
    "build_execution_tree",
    "build_flow",
    "merge_execution_tree",
    "optimal_flow_tree",
    "textual_execution_tree",
    "triple_method_cost",
]
