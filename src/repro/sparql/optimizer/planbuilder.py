"""The Query Plan Builder (paper §3.1.2, Figure 10).

Turns the pattern tree plus the optimal flow tree into a storage-independent
*execution tree*. Late fusing is realized by ordering the fusable units of
each conjunctive group by their flow rank (the position of their cheapest
triple in the greedy flow): a unit is fused exactly when the flow first
needs its bindings, which reproduces the paper's worked example — t4 first,
then the OR of {t2,t3}, then the selective t1, then t5, t6, and the
OPTIONAL last.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ...core.stats import DatasetStatistics
from ..algebra import PatternTree
from ..ast import (
    FilterExpr,
    GroupPattern,
    OptionalPattern,
    TriplePattern,
    UnionPattern,
)
from .cost import ALL_METHODS, CardinalityEstimator, required_vars
from .dataflow import FlowNode, FlowTree


@dataclass(eq=False)
class AccessNode:
    """Evaluate one triple pattern with a chosen access method."""

    triple: TriplePattern
    method: str

    def __repr__(self) -> str:
        return f"({self.triple}, {self.method})"


@dataclass(eq=False)
class AndNode:
    """Join: evaluate left, feed bindings into right."""

    left: "ExecNode"
    right: "ExecNode"


@dataclass(eq=False)
class OrNode:
    """UNION of fully built branch subtrees."""

    branches: list["ExecNode"]


@dataclass(eq=False)
class OptNode:
    """Left outer join: ``right`` is optional with respect to ``left``."""

    left: "ExecNode"
    right: "ExecNode"


@dataclass(eq=False)
class FilterNode:
    """Group-level FILTERs applied over the child's bindings."""

    child: "ExecNode"
    filters: list[FilterExpr]


@dataclass(eq=False)
class EmptyNode:
    """The unit solution (a group with no required elements)."""


ExecNode = Union[AccessNode, AndNode, OrNode, OptNode, FilterNode, EmptyNode]


@dataclass
class _Unit:
    """A fusable unit of a conjunctive group, with its flow rank and the
    variable sets that constrain reordering."""

    node: ExecNode
    rank: int
    textual_index: int
    optional: bool = False
    all_vars: frozenset[str] = frozenset()
    optional_vars: frozenset[str] = frozenset()


def _min_rank(element, flow: FlowTree) -> int:
    ranks = [flow.rank_of(triple) for triple in _element_triples(element)]
    return min(ranks) if ranks else 1 << 30


def _element_triples(element) -> list[TriplePattern]:
    if isinstance(element, TriplePattern):
        return [element]
    return list(element.triples())


def _vars_inside_optionals(element) -> frozenset[str]:
    """Variables that occur inside OPTIONAL sub-patterns of an element.

    Reordering a left join across a join that shares such a variable
    changes answers for non-well-designed patterns, so units linked through
    these variables must keep their textual order (matching the reference
    evaluator's left-to-right semantics).
    """
    found: set[str] = set()

    def walk(node, inside_optional: bool) -> None:
        if isinstance(node, TriplePattern):
            if inside_optional:
                found.update(node.variables())
        elif isinstance(node, OptionalPattern):
            walk(node.pattern, True)
        elif isinstance(node, UnionPattern):
            for branch in node.branches:
                walk(branch, inside_optional)
        elif isinstance(node, GroupPattern):
            for child in node.elements:
                walk(child, inside_optional)

    if isinstance(element, OptionalPattern):
        # the whole unit is optional: every variable it binds is fragile
        return frozenset(element.variables())
    walk(element, False)
    return frozenset(found)


def _order_units(units: list[_Unit]) -> list[_Unit]:
    """Order units by flow rank, constrained so that any two units linked
    through an optional-bound variable keep their textual order."""
    n = len(units)
    must_precede: list[set[int]] = [set() for _ in range(n)]  # successors
    blocked_by: list[int] = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            a, b = units[i], units[j]
            linked = (a.optional_vars & b.all_vars) or (
                b.optional_vars & a.all_vars
            )
            if linked and j not in must_precede[i]:
                must_precede[i].add(j)
                blocked_by[j] += 1

    ordered: list[_Unit] = []
    available = [i for i in range(n) if blocked_by[i] == 0]
    while available:
        available.sort(
            key=lambda i: (units[i].rank, units[i].textual_index)
        )
        index = available.pop(0)
        ordered.append(units[index])
        for successor in must_precede[index]:
            blocked_by[successor] -= 1
            if blocked_by[successor] == 0:
                available.append(successor)
    return ordered


def build_execution_tree(group: GroupPattern, flow: FlowTree) -> ExecNode:
    """ExecTree (Figure 10) over a normalized pattern group."""
    units: list[_Unit] = []
    for index, element in enumerate(group.elements):
        if isinstance(element, TriplePattern):
            node: ExecNode = AccessNode(element, flow.method_of(element))
            units.append(
                _Unit(
                    node,
                    flow.rank_of(element),
                    index,
                    all_vars=frozenset(element.variables()),
                )
            )
        elif isinstance(element, GroupPattern):
            units.append(
                _Unit(
                    build_execution_tree(element, flow),
                    _min_rank(element, flow),
                    index,
                    all_vars=frozenset(element.variables()),
                    optional_vars=_vars_inside_optionals(element),
                )
            )
        elif isinstance(element, UnionPattern):
            branches = [
                build_execution_tree(branch, flow) for branch in element.branches
            ]
            units.append(
                _Unit(
                    OrNode(branches),
                    _min_rank(element, flow),
                    index,
                    all_vars=frozenset(element.variables()),
                    optional_vars=_vars_inside_optionals(element),
                )
            )
        elif isinstance(element, OptionalPattern):
            subtree = build_execution_tree(element.pattern, flow)
            units.append(
                _Unit(
                    subtree,
                    # optional units default after required ones of equal
                    # rank (SPARQL's textual leftjoin); the constraint
                    # ordering below enforces the var-sharing cases
                    1 << 30,
                    index,
                    optional=True,
                    all_vars=frozenset(element.variables()),
                    optional_vars=_vars_inside_optionals(element),
                )
            )
        else:
            raise TypeError(f"unknown pattern element {element!r}")

    tree: ExecNode | None = None
    for unit in _order_units(units):
        if unit.optional:
            tree = OptNode(tree if tree is not None else EmptyNode(), unit.node)
        else:
            tree = unit.node if tree is None else AndNode(tree, unit.node)
    if tree is None:
        tree = EmptyNode()
    if group.filters:
        tree = FilterNode(tree, list(group.filters))
    return tree


# --------------------------------------------------------------------------
# Cost-based join-order enumeration
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class JoinOrderPlan:
    """One enumerated join order: the (triple, method) sequence plus the
    estimator's verdict on it. ``cost`` is the work metric the orders are
    ranked by — estimated rows read by the accesses plus rows produced by
    every intermediate join (the classic ``C_out`` flavour)."""

    order: tuple[FlowNode, ...]
    cost: float
    rows: float
    confidence: float

    def describe(self) -> str:
        steps = " -> ".join(f"{node.triple} [{node.method}]" for node in self.order)
        return (
            f"cost={self.cost:.1f} rows={self.rows:.1f} "
            f"confidence={self.confidence:.2f}: {steps}"
        )


#: exhaustive (subset-DP) enumeration up to this many triples; larger
#: conjuncts use a greedy beam over the same cost model
DP_LIMIT = 8
#: orders kept per DP subset / beam slots — enough diversity to escape the
#: classic greedy trap without exploding the search
BEAM_WIDTH = 3


def enumerate_join_orders(
    triples: list[TriplePattern],
    tree: PatternTree,
    stats: DatasetStatistics,
    methods: tuple[str, ...] = ALL_METHODS,
    limit: int = 5,
    beam: int = BEAM_WIDTH,
    dp_limit: int = DP_LIMIT,
) -> list[JoinOrderPlan]:
    """Enumerate join orders bottom-up and rank them by estimated cost.

    Validity mirrors the data-flow graph (Def. 3.8 with the paper's two
    exclusions): a lookup may only consume variables produced by earlier
    triples that are neither OR-connected to it nor optional with respect
    to it. For each candidate triple the cheapest valid access method is
    taken; up to ``beam`` orders survive per DP subset (or per beam step
    beyond ``dp_limit`` triples). Returns the best ``limit`` complete
    orders, cheapest first — empty when no complete valid order exists
    (restricted method menus), which callers treat as "fall back".

    Everything here is a deterministic function of the inputs: ties break
    on the (index, method) sequence itself.
    """
    if not triples:
        return []
    estimator = CardinalityEstimator(stats)
    n = len(triples)

    def feeds(producer_index: int, consumer: TriplePattern) -> bool:
        producer = triples[producer_index]
        if producer is consumer:
            return False
        if tree.or_connected(producer, consumer):
            return False
        if tree.optional_connected(consumer, producer):
            return False
        return True

    def best_method(
        placed: frozenset[int], state, index: int
    ) -> tuple[float, str] | None:
        """Cheapest valid access for the triple given what is bound."""
        triple = triples[index]
        available: set[str] | None = None
        best: tuple[float, str] | None = None
        for method in methods:
            needed = required_vars(triple, method)
            if needed:
                if available is None:
                    available = set()
                    for i in placed:
                        if feeds(i, triple):
                            available.update(triples[i].variables())
                if not needed <= available:
                    continue
            access = estimator.access_cost(triple, method, state)
            if best is None or access < best[0]:
                best = (access, method)
        return best

    Entry = tuple[float, tuple[tuple[int, str], ...], object]
    start: Entry = (0.0, (), estimator.fresh_state())

    if n <= dp_limit:
        frontier: dict[frozenset[int], list[Entry]] = {frozenset(): [start]}
        for _ in range(n):
            grown: dict[frozenset[int], list[Entry]] = {}
            for subset, entries in frontier.items():
                for cost, order, state in entries:
                    for index in range(n):
                        if index in subset:
                            continue
                        step = best_method(subset, state, index)
                        if step is None:
                            continue
                        access, method = step
                        new_state = estimator.extend(state, triples[index])
                        grown.setdefault(subset | {index}, []).append(
                            (
                                cost + access + new_state.rows,
                                order + ((index, method),),
                                new_state,
                            )
                        )
            for bucket in grown.values():
                bucket.sort(key=lambda entry: (entry[0], entry[1]))
                del bucket[beam:]
            frontier = grown
        complete = frontier.get(frozenset(range(n)), [])
    else:
        width = max(beam, limit)
        alive: list[Entry] = [start]
        for _ in range(n):
            grown_list: list[Entry] = []
            for cost, order, state in alive:
                subset = frozenset(i for i, _ in order)
                for index in range(n):
                    if index in subset:
                        continue
                    step = best_method(subset, state, index)
                    if step is None:
                        continue
                    access, method = step
                    new_state = estimator.extend(state, triples[index])
                    grown_list.append(
                        (
                            cost + access + new_state.rows,
                            order + ((index, method),),
                            new_state,
                        )
                    )
            grown_list.sort(key=lambda entry: (entry[0], entry[1]))
            alive = grown_list[:width]
        complete = [entry for entry in alive if len(entry[1]) == n]

    complete.sort(key=lambda entry: (entry[0], entry[1]))
    plans = []
    for cost, order, state in complete[:limit]:
        plans.append(
            JoinOrderPlan(
                order=tuple(
                    FlowNode(triples[index], method) for index, method in order
                ),
                cost=cost,
                rows=state.rows,
                confidence=state.confidence,
            )
        )
    return plans


def flow_from_order(plan: JoinOrderPlan) -> FlowTree:
    """Materialize an enumerated order as a :class:`FlowTree` chain, so the
    unchanged plan builder (:func:`build_execution_tree`) consumes it: the
    chain position becomes the flow rank, the chosen method the access."""
    flow = FlowTree()
    previous: FlowNode | None = None
    for node in plan.order:
        flow.add(node, previous)
        previous = node
    return flow


def textual_execution_tree(group: GroupPattern, method_chooser) -> ExecNode:
    """The *sub-optimal* comparator used in §3.3 / Figure 14: bottom-up,
    textual-order translation with locally chosen access methods and no
    flow-based reordering.

    ``method_chooser(triple, bound_vars) -> method`` picks an access method
    given the variables bound so far.
    """
    bound: set[str] = set()

    def walk(pattern: GroupPattern) -> ExecNode:
        tree: ExecNode | None = None
        for element in pattern.elements:
            if isinstance(element, TriplePattern):
                method = method_chooser(element, frozenset(bound))
                bound.update(element.variables())
                node: ExecNode = AccessNode(element, method)
            elif isinstance(element, GroupPattern):
                node = walk(element)
            elif isinstance(element, UnionPattern):
                snapshot = set(bound)
                branch_nodes = []
                union_bound: set[str] = set()
                for branch in element.branches:
                    bound.clear()
                    bound.update(snapshot)
                    branch_nodes.append(walk(branch))
                    union_bound |= bound
                bound.clear()
                bound.update(snapshot | union_bound)
                node = OrNode(branch_nodes)
            elif isinstance(element, OptionalPattern):
                inner = walk(element.pattern)
                tree = OptNode(tree if tree is not None else EmptyNode(), inner)
                continue
            else:
                raise TypeError(f"unknown pattern element {element!r}")
            tree = node if tree is None else AndNode(tree, node)
        if tree is None:
            tree = EmptyNode()
        if pattern.filters:
            tree = FilterNode(tree, list(pattern.filters))
        return tree

    return walk(group)
