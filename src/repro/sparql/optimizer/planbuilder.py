"""The Query Plan Builder (paper §3.1.2, Figure 10).

Turns the pattern tree plus the optimal flow tree into a storage-independent
*execution tree*. Late fusing is realized by ordering the fusable units of
each conjunctive group by their flow rank (the position of their cheapest
triple in the greedy flow): a unit is fused exactly when the flow first
needs its bindings, which reproduces the paper's worked example — t4 first,
then the OR of {t2,t3}, then the selective t1, then t5, t6, and the
OPTIONAL last.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..ast import (
    FilterExpr,
    GroupPattern,
    OptionalPattern,
    TriplePattern,
    UnionPattern,
)
from .dataflow import FlowTree


@dataclass(eq=False)
class AccessNode:
    """Evaluate one triple pattern with a chosen access method."""

    triple: TriplePattern
    method: str

    def __repr__(self) -> str:
        return f"({self.triple}, {self.method})"


@dataclass(eq=False)
class AndNode:
    """Join: evaluate left, feed bindings into right."""

    left: "ExecNode"
    right: "ExecNode"


@dataclass(eq=False)
class OrNode:
    """UNION of fully built branch subtrees."""

    branches: list["ExecNode"]


@dataclass(eq=False)
class OptNode:
    """Left outer join: ``right`` is optional with respect to ``left``."""

    left: "ExecNode"
    right: "ExecNode"


@dataclass(eq=False)
class FilterNode:
    """Group-level FILTERs applied over the child's bindings."""

    child: "ExecNode"
    filters: list[FilterExpr]


@dataclass(eq=False)
class EmptyNode:
    """The unit solution (a group with no required elements)."""


ExecNode = Union[AccessNode, AndNode, OrNode, OptNode, FilterNode, EmptyNode]


@dataclass
class _Unit:
    """A fusable unit of a conjunctive group, with its flow rank and the
    variable sets that constrain reordering."""

    node: ExecNode
    rank: int
    textual_index: int
    optional: bool = False
    all_vars: frozenset[str] = frozenset()
    optional_vars: frozenset[str] = frozenset()


def _min_rank(element, flow: FlowTree) -> int:
    ranks = [flow.rank_of(triple) for triple in _element_triples(element)]
    return min(ranks) if ranks else 1 << 30


def _element_triples(element) -> list[TriplePattern]:
    if isinstance(element, TriplePattern):
        return [element]
    return list(element.triples())


def _vars_inside_optionals(element) -> frozenset[str]:
    """Variables that occur inside OPTIONAL sub-patterns of an element.

    Reordering a left join across a join that shares such a variable
    changes answers for non-well-designed patterns, so units linked through
    these variables must keep their textual order (matching the reference
    evaluator's left-to-right semantics).
    """
    found: set[str] = set()

    def walk(node, inside_optional: bool) -> None:
        if isinstance(node, TriplePattern):
            if inside_optional:
                found.update(node.variables())
        elif isinstance(node, OptionalPattern):
            walk(node.pattern, True)
        elif isinstance(node, UnionPattern):
            for branch in node.branches:
                walk(branch, inside_optional)
        elif isinstance(node, GroupPattern):
            for child in node.elements:
                walk(child, inside_optional)

    if isinstance(element, OptionalPattern):
        # the whole unit is optional: every variable it binds is fragile
        return frozenset(element.variables())
    walk(element, False)
    return frozenset(found)


def _order_units(units: list[_Unit]) -> list[_Unit]:
    """Order units by flow rank, constrained so that any two units linked
    through an optional-bound variable keep their textual order."""
    n = len(units)
    must_precede: list[set[int]] = [set() for _ in range(n)]  # successors
    blocked_by: list[int] = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            a, b = units[i], units[j]
            linked = (a.optional_vars & b.all_vars) or (
                b.optional_vars & a.all_vars
            )
            if linked and j not in must_precede[i]:
                must_precede[i].add(j)
                blocked_by[j] += 1

    ordered: list[_Unit] = []
    available = [i for i in range(n) if blocked_by[i] == 0]
    while available:
        available.sort(
            key=lambda i: (units[i].rank, units[i].textual_index)
        )
        index = available.pop(0)
        ordered.append(units[index])
        for successor in must_precede[index]:
            blocked_by[successor] -= 1
            if blocked_by[successor] == 0:
                available.append(successor)
    return ordered


def build_execution_tree(group: GroupPattern, flow: FlowTree) -> ExecNode:
    """ExecTree (Figure 10) over a normalized pattern group."""
    units: list[_Unit] = []
    for index, element in enumerate(group.elements):
        if isinstance(element, TriplePattern):
            node: ExecNode = AccessNode(element, flow.method_of(element))
            units.append(
                _Unit(
                    node,
                    flow.rank_of(element),
                    index,
                    all_vars=frozenset(element.variables()),
                )
            )
        elif isinstance(element, GroupPattern):
            units.append(
                _Unit(
                    build_execution_tree(element, flow),
                    _min_rank(element, flow),
                    index,
                    all_vars=frozenset(element.variables()),
                    optional_vars=_vars_inside_optionals(element),
                )
            )
        elif isinstance(element, UnionPattern):
            branches = [
                build_execution_tree(branch, flow) for branch in element.branches
            ]
            units.append(
                _Unit(
                    OrNode(branches),
                    _min_rank(element, flow),
                    index,
                    all_vars=frozenset(element.variables()),
                    optional_vars=_vars_inside_optionals(element),
                )
            )
        elif isinstance(element, OptionalPattern):
            subtree = build_execution_tree(element.pattern, flow)
            units.append(
                _Unit(
                    subtree,
                    # optional units default after required ones of equal
                    # rank (SPARQL's textual leftjoin); the constraint
                    # ordering below enforces the var-sharing cases
                    1 << 30,
                    index,
                    optional=True,
                    all_vars=frozenset(element.variables()),
                    optional_vars=_vars_inside_optionals(element),
                )
            )
        else:
            raise TypeError(f"unknown pattern element {element!r}")

    tree: ExecNode | None = None
    for unit in _order_units(units):
        if unit.optional:
            tree = OptNode(tree if tree is not None else EmptyNode(), unit.node)
        else:
            tree = unit.node if tree is None else AndNode(tree, unit.node)
    if tree is None:
        tree = EmptyNode()
    if group.filters:
        tree = FilterNode(tree, list(group.filters))
    return tree


def textual_execution_tree(group: GroupPattern, method_chooser) -> ExecNode:
    """The *sub-optimal* comparator used in §3.3 / Figure 14: bottom-up,
    textual-order translation with locally chosen access methods and no
    flow-based reordering.

    ``method_chooser(triple, bound_vars) -> method`` picks an access method
    given the variables bound so far.
    """
    bound: set[str] = set()

    def walk(pattern: GroupPattern) -> ExecNode:
        tree: ExecNode | None = None
        for element in pattern.elements:
            if isinstance(element, TriplePattern):
                method = method_chooser(element, frozenset(bound))
                bound.update(element.variables())
                node: ExecNode = AccessNode(element, method)
            elif isinstance(element, GroupPattern):
                node = walk(element)
            elif isinstance(element, UnionPattern):
                snapshot = set(bound)
                branch_nodes = []
                union_bound: set[str] = set()
                for branch in element.branches:
                    bound.clear()
                    bound.update(snapshot)
                    branch_nodes.append(walk(branch))
                    union_bound |= bound
                bound.clear()
                bound.update(snapshot | union_bound)
                node = OrNode(branch_nodes)
            elif isinstance(element, OptionalPattern):
                inner = walk(element.pattern)
                tree = OptNode(tree if tree is not None else EmptyNode(), inner)
                continue
            else:
                raise TypeError(f"unknown pattern element {element!r}")
            tree = node if tree is None else AndNode(tree, node)
        if tree is None:
            tree = EmptyNode()
        if pattern.filters:
            tree = FilterNode(tree, list(pattern.filters))
        return tree

    return walk(group)
