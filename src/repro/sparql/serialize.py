"""SPARQL serialization: results (W3C CSV/TSV/JSON) and query text.

``SELECT`` results serialize per the SPARQL 1.1 Query Results CSV/TSV and
JSON formats (the subset covering URIs, blank nodes, and literals).
:func:`query_to_sparql` renders a parsed query model back to SPARQL text
that re-parses to the same model — the round-trip property the parser fuzz
tests pin down.
"""

from __future__ import annotations

import csv
import io
import json

from ..rdf.terms import BNode, Literal, Term, URI, XSD_STRING
from .ast import (
    AskQuery,
    FBinary,
    FBound,
    FCall,
    FConst,
    FilterExpr,
    FRegex,
    FUnary,
    FVar,
    GroupPattern,
    OptionalPattern,
    SelectQuery,
    TriplePattern,
    UnionPattern,
    Var,
)
from .results import SelectResult


def _csv_value(term: Term | None) -> str:
    if term is None:
        return ""
    if isinstance(term, URI):
        return term.value
    if isinstance(term, BNode):
        return f"_:{term.label}"
    return term.value


def to_csv(result: SelectResult) -> str:
    """SPARQL 1.1 Query Results CSV (values unquoted where possible)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\r\n")
    writer.writerow(result.variables)
    for row in result.rows:
        writer.writerow([_csv_value(value) for value in row])
    return buffer.getvalue()


def _tsv_value(term: Term | None) -> str:
    if term is None:
        return ""
    if isinstance(term, URI):
        return term.n3()
    if isinstance(term, BNode):
        return term.n3()
    return term.n3()


def to_tsv(result: SelectResult) -> str:
    """SPARQL 1.1 Query Results TSV (terms in N-Triples syntax)."""
    lines = ["\t".join(f"?{v}" for v in result.variables)]
    for row in result.rows:
        lines.append("\t".join(_tsv_value(value) for value in row))
    return "\n".join(lines) + "\n"


def _json_value(term: Term) -> dict:
    if isinstance(term, URI):
        return {"type": "uri", "value": term.value}
    if isinstance(term, BNode):
        return {"type": "bnode", "value": term.label}
    binding: dict = {"type": "literal", "value": term.value}
    if term.lang:
        binding["xml:lang"] = term.lang
    elif term.datatype and term.datatype != XSD_STRING:
        binding["datatype"] = term.datatype
    return binding


def to_json(result: SelectResult, indent: int | None = None) -> str:
    """SPARQL 1.1 Query Results JSON."""
    bindings = []
    for row in result.rows:
        binding = {
            variable: _json_value(value)
            for variable, value in zip(result.variables, row)
            if value is not None
        }
        bindings.append(binding)
    document = {
        "head": {"vars": list(result.variables)},
        "results": {"bindings": bindings},
    }
    return json.dumps(document, indent=indent, ensure_ascii=False)


def to_ascii_table(result: SelectResult, max_width: int = 48) -> str:
    """A human-oriented aligned table (the CLI's default)."""
    headers = [f"?{v}" for v in result.variables]
    rows = [
        [
            "" if value is None else (
                key if len(key := _csv_value(value)) <= max_width
                else key[: max_width - 1] + "…"
            )
            for value in row
        ]
        for row in result.rows
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(cells):
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = [fmt(headers), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


FORMATTERS = {
    "csv": to_csv,
    "tsv": to_tsv,
    "json": lambda result: to_json(result, indent=2),
    "table": to_ascii_table,
}


# ---------------------------------------------------------------------------
# Query serialization (model -> SPARQL text)
# ---------------------------------------------------------------------------


def _term_text(term) -> str:
    if isinstance(term, Var):
        return f"?{term.name}"
    return term.n3()


def _string_literal(value: str) -> str:
    return Literal(value).n3()


def _filter_text(expr: FilterExpr) -> str:
    if isinstance(expr, FVar):
        return f"?{expr.name}"
    if isinstance(expr, FConst):
        return expr.term.n3()
    if isinstance(expr, FBinary):
        return f"({_filter_text(expr.left)} {expr.op} {_filter_text(expr.right)})"
    if isinstance(expr, FUnary):
        return f"({expr.op} {_filter_text(expr.operand)})"
    if isinstance(expr, FBound):
        return f"BOUND(?{expr.var})"
    if isinstance(expr, FRegex):
        parts = [_filter_text(expr.operand), _string_literal(expr.pattern)]
        if expr.flags:
            parts.append(_string_literal(expr.flags))
        return f"REGEX({', '.join(parts)})"
    if isinstance(expr, FCall):
        args = ", ".join(_filter_text(arg) for arg in expr.args)
        return f"{expr.name}({args})"
    raise TypeError(f"unknown filter expression {expr!r}")


def _group_text(group: GroupPattern) -> str:
    parts: list[str] = []
    for element in group.elements:
        if isinstance(element, TriplePattern):
            parts.append(
                f"{_term_text(element.subject)} {_term_text(element.predicate)} "
                f"{_term_text(element.object)}"
            )
        elif isinstance(element, GroupPattern):
            parts.append(_group_text(element))
        elif isinstance(element, UnionPattern):
            parts.append(
                " UNION ".join(_group_text(branch) for branch in element.branches)
            )
        elif isinstance(element, OptionalPattern):
            parts.append(f"OPTIONAL {_group_text(element.pattern)}")
        else:
            raise TypeError(f"unknown pattern element {element!r}")
    body = " . ".join(parts)
    for condition in group.filters:
        clause = _filter_text(condition)
        if not clause.startswith("("):  # FILTER needs brackets or a builtin
            clause = f"({clause})" if not clause[:1].isalpha() else clause
        body = f"{body} FILTER {clause}" if body else f"FILTER {clause}"
    return "{ " + body + " }" if body else "{ }"


def query_to_sparql(query: "SelectQuery | AskQuery") -> str:
    """Render a parsed query model back to SPARQL text.

    The output re-parses to an equivalent model: serialize ∘ parse is a
    fixpoint (property paths and blank nodes were already desugared by the
    parser, so the rendered text is plain triples over explicit variables).
    """
    if isinstance(query, AskQuery):
        return f"ASK {_group_text(query.where)}"
    head = "SELECT"
    if query.distinct:
        head += " DISTINCT"
    elif query.reduced:
        head += " REDUCED"
    if query.variables is None:
        head += " *"
    else:
        head += "".join(f" ?{name}" for name in query.variables)
    text = f"{head} WHERE {_group_text(query.where)}"
    if query.order_by:
        conditions = " ".join(
            f"{'ASC' if condition.ascending else 'DESC'}({_filter_text(condition.expr)})"
            for condition in query.order_by
        )
        text += f" ORDER BY {conditions}"
    if query.limit is not None:
        text += f" LIMIT {query.limit}"
    if query.offset is not None:
        text += f" OFFSET {query.offset}"
    return text
