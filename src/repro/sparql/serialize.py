"""SPARQL result serialization: W3C-style CSV, TSV, and JSON formats.

``SELECT`` results serialize per the SPARQL 1.1 Query Results CSV/TSV and
JSON formats (the subset covering URIs, blank nodes, and literals).
"""

from __future__ import annotations

import csv
import io
import json

from ..rdf.terms import BNode, Term, URI, XSD_STRING
from .results import SelectResult


def _csv_value(term: Term | None) -> str:
    if term is None:
        return ""
    if isinstance(term, URI):
        return term.value
    if isinstance(term, BNode):
        return f"_:{term.label}"
    return term.value


def to_csv(result: SelectResult) -> str:
    """SPARQL 1.1 Query Results CSV (values unquoted where possible)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\r\n")
    writer.writerow(result.variables)
    for row in result.rows:
        writer.writerow([_csv_value(value) for value in row])
    return buffer.getvalue()


def _tsv_value(term: Term | None) -> str:
    if term is None:
        return ""
    if isinstance(term, URI):
        return term.n3()
    if isinstance(term, BNode):
        return term.n3()
    return term.n3()


def to_tsv(result: SelectResult) -> str:
    """SPARQL 1.1 Query Results TSV (terms in N-Triples syntax)."""
    lines = ["\t".join(f"?{v}" for v in result.variables)]
    for row in result.rows:
        lines.append("\t".join(_tsv_value(value) for value in row))
    return "\n".join(lines) + "\n"


def _json_value(term: Term) -> dict:
    if isinstance(term, URI):
        return {"type": "uri", "value": term.value}
    if isinstance(term, BNode):
        return {"type": "bnode", "value": term.label}
    binding: dict = {"type": "literal", "value": term.value}
    if term.lang:
        binding["xml:lang"] = term.lang
    elif term.datatype and term.datatype != XSD_STRING:
        binding["datatype"] = term.datatype
    return binding


def to_json(result: SelectResult, indent: int | None = None) -> str:
    """SPARQL 1.1 Query Results JSON."""
    bindings = []
    for row in result.rows:
        binding = {
            variable: _json_value(value)
            for variable, value in zip(result.variables, row)
            if value is not None
        }
        bindings.append(binding)
    document = {
        "head": {"vars": list(result.variables)},
        "results": {"bindings": bindings},
    }
    return json.dumps(document, indent=indent, ensure_ascii=False)


def to_ascii_table(result: SelectResult, max_width: int = 48) -> str:
    """A human-oriented aligned table (the CLI's default)."""
    headers = [f"?{v}" for v in result.variables]
    rows = [
        [
            "" if value is None else (
                key if len(key := _csv_value(value)) <= max_width
                else key[: max_width - 1] + "…"
            )
            for value in row
        ]
        for row in result.rows
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(cells):
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = [fmt(headers), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


FORMATTERS = {
    "csv": to_csv,
    "tsv": to_tsv,
    "json": lambda result: to_json(result, indent=2),
    "table": to_ascii_table,
}
