"""Query-expansion inference (the paper's §4.1 LUBM methodology, automated).

The paper evaluates without OWL reasoning by rewriting queries: when the
ontology says ``GraduateStudent ⊑ Student``, the pattern ``?x rdf:type
Student`` becomes ``{?x rdf:type Student} UNION {?x rdf:type
GraduateStudent}``. The authors expanded queries by hand; this module does
it mechanically from subclass / subproperty maps — RDFS-style entailment by
rewriting, applicable in front of *any* of the stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rdf.graph import Graph
from ..rdf.namespaces import RDFS
from ..rdf.terms import RDF_TYPE, URI
from .ast import (
    GroupPattern,
    OptionalPattern,
    PatternElement,
    SelectQuery,
    TriplePattern,
    UnionPattern,
)

RDF_TYPE_URI = URI(RDF_TYPE)
RDFS_SUBCLASS = RDFS.subClassOf
RDFS_SUBPROPERTY = RDFS.subPropertyOf


@dataclass
class Ontology:
    """Subclass and subproperty hierarchies (URI string keyed)."""

    subclasses: dict[str, set[str]] = field(default_factory=dict)
    subproperties: dict[str, set[str]] = field(default_factory=dict)

    # ----------------------------------------------------------- building

    def add_subclass(self, child: str | URI, parent: str | URI) -> None:
        self.subclasses.setdefault(_key(parent), set()).add(_key(child))

    def add_subproperty(self, child: str | URI, parent: str | URI) -> None:
        self.subproperties.setdefault(_key(parent), set()).add(_key(child))

    @classmethod
    def from_graph(cls, graph: Graph) -> "Ontology":
        """Read rdfs:subClassOf / rdfs:subPropertyOf triples from a graph."""
        ontology = cls()
        for triple in graph.triples_for_predicate(RDFS_SUBCLASS):
            if isinstance(triple.object, URI):
                ontology.add_subclass(triple.subject, triple.object)
        for triple in graph.triples_for_predicate(RDFS_SUBPROPERTY):
            if isinstance(triple.object, URI):
                ontology.add_subproperty(triple.subject, triple.object)
        return ontology

    # ----------------------------------------------------------- closures

    def _closure(self, hierarchy: dict[str, set[str]], root: str) -> list[str]:
        """root plus all transitive descendants, depth-first, deduplicated."""
        seen: dict[str, None] = {root: None}
        stack = [root]
        while stack:
            node = stack.pop()
            for child in sorted(hierarchy.get(node, ())):
                if child not in seen:
                    seen[child] = None
                    stack.append(child)
        return list(seen)

    def class_closure(self, uri: str | URI) -> list[str]:
        return self._closure(self.subclasses, _key(uri))

    def property_closure(self, uri: str | URI) -> list[str]:
        return self._closure(self.subproperties, _key(uri))


def _key(value: str | URI) -> str:
    return value.value if isinstance(value, URI) else value


def expand_query(query: SelectQuery, ontology: Ontology) -> SelectQuery:
    """Rewrite the query so that type and property patterns match all
    ontology descendants (returns a new query; the input is not changed)."""
    return SelectQuery(
        variables=list(query.variables) if query.variables is not None else None,
        where=_expand_group(query.where, ontology),
        distinct=query.distinct,
        reduced=query.reduced,
        order_by=list(query.order_by),
        limit=query.limit,
        offset=query.offset,
    )


def _expand_group(group: GroupPattern, ontology: Ontology) -> GroupPattern:
    elements: list[PatternElement] = []
    for element in group.elements:
        elements.append(_expand_element(element, ontology))
    return GroupPattern(elements, list(group.filters))


def _expand_element(element: PatternElement, ontology: Ontology):
    if isinstance(element, TriplePattern):
        return _expand_triple(element, ontology)
    if isinstance(element, GroupPattern):
        return _expand_group(element, ontology)
    if isinstance(element, UnionPattern):
        return UnionPattern(
            [_expand_group(branch, ontology) for branch in element.branches]
        )
    if isinstance(element, OptionalPattern):
        return OptionalPattern(_expand_group(element.pattern, ontology))
    raise TypeError(f"unknown pattern element {element!r}")


def _expand_triple(triple: TriplePattern, ontology: Ontology):
    """A type pattern with a known class, or any pattern with a known
    property, becomes a UNION over the closure."""
    alternatives: list[TriplePattern] = []
    is_type_pattern = (
        isinstance(triple.predicate, URI)
        and triple.predicate == RDF_TYPE_URI
        and isinstance(triple.object, URI)
    )
    if is_type_pattern:
        for class_uri in ontology.class_closure(triple.object):
            alternatives.append(
                TriplePattern(triple.subject, triple.predicate, URI(class_uri))
            )
    elif isinstance(triple.predicate, URI):
        for property_uri in ontology.property_closure(triple.predicate):
            alternatives.append(
                TriplePattern(triple.subject, URI(property_uri), triple.object)
            )
    else:
        return triple

    if len(alternatives) <= 1:
        return triple
    return UnionPattern([GroupPattern([alt]) for alt in alternatives])


def expand_sparql(sparql: str, ontology: Ontology) -> SelectQuery:
    """Parse and expand in one step."""
    from .parser import parse_sparql

    parsed = parse_sparql(sparql)
    if not isinstance(parsed, SelectQuery):
        raise TypeError("only SELECT queries can be expanded")
    return expand_query(parsed, ontology)
