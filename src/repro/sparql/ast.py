"""The SPARQL query model: triple patterns, group patterns, filters.

This mirrors the paper's parse-tree view (Figure 7): a query is a hierarchy
of patterns — SIMPLE (triples), AND (groups), OR (UNION), and OPTIONAL —
with FILTER expressions attached to their enclosing group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from ..rdf.terms import Term


@dataclass(frozen=True, slots=True)
class Var:
    """A SPARQL variable ``?name``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


TermOrVar = Union[Term, Var]


_triple_counter = 0


@dataclass(frozen=True, slots=True, eq=False)
class TriplePattern:
    """One triple pattern; identity (not structure) distinguishes repeated
    patterns, matching the paper's per-triple t1..tn labels."""

    subject: TermOrVar
    predicate: TermOrVar
    object: TermOrVar

    def variables(self) -> set[str]:
        found = set()
        for position in (self.subject, self.predicate, self.object):
            if isinstance(position, Var):
                found.add(position.name)
        return found

    def __str__(self) -> str:
        def show(term: TermOrVar) -> str:
            return str(term) if isinstance(term, Var) else term.n3()

        return f"{show(self.subject)} {show(self.predicate)} {show(self.object)}"


# ---------------------------------------------------------------------------
# Filter expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FVar:
    name: str


@dataclass(frozen=True)
class FConst:
    term: Term


@dataclass(frozen=True)
class FBinary:
    """Comparison, logical, or arithmetic operator over filter expressions."""

    op: str  # = != < <= > >= && || + - * /
    left: "FilterExpr"
    right: "FilterExpr"


@dataclass(frozen=True)
class FUnary:
    op: str  # ! -
    operand: "FilterExpr"


@dataclass(frozen=True)
class FBound:
    var: str


@dataclass(frozen=True)
class FRegex:
    operand: "FilterExpr"
    pattern: str
    flags: str = ""


@dataclass(frozen=True)
class FCall:
    """Builtin call: STR, LANG, DATATYPE, isURI, isLITERAL, isBLANK, sameTerm,
    langMatches."""

    name: str
    args: tuple["FilterExpr", ...]


FilterExpr = Union[FVar, FConst, FBinary, FUnary, FBound, FRegex, FCall]


def filter_variables(expr: FilterExpr) -> set[str]:
    if isinstance(expr, FVar):
        return {expr.name}
    if isinstance(expr, FBound):
        return {expr.var}
    if isinstance(expr, FBinary):
        return filter_variables(expr.left) | filter_variables(expr.right)
    if isinstance(expr, FUnary):
        return filter_variables(expr.operand)
    if isinstance(expr, FRegex):
        return filter_variables(expr.operand)
    if isinstance(expr, FCall):
        found: set[str] = set()
        for arg in expr.args:
            found |= filter_variables(arg)
        return found
    return set()


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class GroupPattern:
    """A braces group: a conjunction of elements plus its FILTERs."""

    elements: list["PatternElement"] = field(default_factory=list)
    filters: list[FilterExpr] = field(default_factory=list)

    def triples(self) -> Iterator[TriplePattern]:
        for element in self.elements:
            if isinstance(element, TriplePattern):
                yield element
            else:
                yield from element.triples()

    def variables(self) -> set[str]:
        found: set[str] = set()
        for element in self.elements:
            found |= element.variables()
        return found


@dataclass(eq=False)
class UnionPattern:
    """``{A} UNION {B} UNION ...``"""

    branches: list[GroupPattern]

    def triples(self) -> Iterator[TriplePattern]:
        for branch in self.branches:
            yield from branch.triples()

    def variables(self) -> set[str]:
        found: set[str] = set()
        for branch in self.branches:
            found |= branch.variables()
        return found


@dataclass(eq=False)
class OptionalPattern:
    """``OPTIONAL {...}``"""

    pattern: GroupPattern

    def triples(self) -> Iterator[TriplePattern]:
        yield from self.pattern.triples()

    def variables(self) -> set[str]:
        return self.pattern.variables()


PatternElement = Union[TriplePattern, GroupPattern, UnionPattern, OptionalPattern]


# ---------------------------------------------------------------------------
# Query
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OrderCondition:
    expr: FilterExpr
    ascending: bool = True


@dataclass(eq=False)
class SelectQuery:
    """A SPARQL 1.0 SELECT query."""

    variables: list[str] | None  # None means SELECT *
    where: GroupPattern
    distinct: bool = False
    reduced: bool = False
    order_by: list[OrderCondition] = field(default_factory=list)
    limit: int | None = None
    offset: int | None = None

    def projected_variables(self) -> list[str]:
        if self.variables is not None:
            return self.variables
        # Internal variables (path desugaring, anonymous blank nodes) are
        # hidden from SELECT *.
        return sorted(
            v for v in self.where.variables() if not v.startswith("__")
        )

    def triples(self) -> list[TriplePattern]:
        return list(self.where.triples())


@dataclass(eq=False)
class AskQuery:
    """A SPARQL ASK query (evaluated as SELECT * LIMIT 1 + non-emptiness)."""

    where: GroupPattern
