"""Access emission against the DB2RDF schema (paper §3.2.2, Figures 12–13).

Each access (a single triple or a merged star) becomes one or two CTEs:

* **Phase A** probes DPH (``acs``/``sc``) or RPH (``aco``) by entry,
  checks predicate presence across the predicate's candidate columns
  (CASE over multiple columns when hash composition assigned several),
  and projects raw values;
* **Phase B** (when needed) resolves multi-valued lids through the
  secondary table with ``LEFT OUTER JOIN ... COALESCE(S.elm, val)``, and
  for OR-merged stars emits the per-member "flip" as a UNION ALL.

Variables that may be unbound in the incoming bindings (``ctx.maybe``) are
consumed with compatibility semantics: ``col IS NULL OR col = value`` plus a
COALESCE re-projection, so NULL-as-unbound behaves like SPARQL's free
variable rather than SQL's never-equal NULL.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...core.errors import UnsupportedQueryError
from ...core.mapping import PredicateMapper
from ...core.schema import DB2RDFSchema, ENTRY, pred_col, val_col
from ...rdf.terms import URI, term_key
from ...relational import ast as sql
from ..ast import TriplePattern, Var
from ..optimizer.cost import ACO
from ..optimizer.merge import MergedNode, MergeMember
from ..optimizer.planbuilder import AccessNode
from .pipeline import (
    Ctx,
    SqlBuilder,
    TripleEmitter,
    compat_condition,
    compat_projection,
    passthrough_items,
    var_col,
)


@dataclass
class StorageInfo:
    """What the emitter needs to know about one loaded store."""

    schema: DB2RDFSchema
    direct_mapper: PredicateMapper
    reverse_mapper: PredicateMapper
    multivalued_direct: set[str] = field(default_factory=set)
    multivalued_reverse: set[str] = field(default_factory=set)


@dataclass
class _Member:
    """Per-member analysis shared by both phases."""

    member: MergeMember
    predicate: str
    candidates: list[int]
    multivalued: bool
    value: object  # Var or Term
    tmp: str | None = None  # phase-A temp column for deferred resolution
    fresh_var: str | None = None  # variable this member produces


class Db2RdfEmitter(TripleEmitter):
    """Emits DPH/RPH accesses (with DS/RS resolution) for the DB2RDF schema."""

    supports_merge = True

    def __init__(self, info: StorageInfo) -> None:
        self.info = info

    # ------------------------------------------------------------- helpers

    def _side(self, method: str) -> tuple[str, str, PredicateMapper, set[str], int]:
        """(primary, secondary, mapper, multivalued set, width) per method."""
        if method == ACO:
            return (
                self.info.schema.rph,
                self.info.schema.rs,
                self.info.reverse_mapper,
                self.info.multivalued_reverse,
                self.info.schema.reverse_columns,
            )
        return (
            self.info.schema.dph,
            self.info.schema.ds,
            self.info.direct_mapper,
            self.info.multivalued_direct,
            self.info.schema.direct_columns,
        )

    @staticmethod
    def _entity_of(triple: TriplePattern, method: str):
        return triple.object if method == ACO else triple.subject

    @staticmethod
    def _value_of(triple: TriplePattern, method: str):
        return triple.subject if method == ACO else triple.object

    @staticmethod
    def _presence(candidates: list[int], predicate: str) -> sql.Expr:
        conditions = [
            sql.BinOp("=", sql.Column("T", pred_col(c)), sql.Const(predicate))
            for c in candidates
        ]
        result = conditions[0]
        for condition in conditions[1:]:
            result = sql.BinOp("OR", result, condition)
        return result

    @staticmethod
    def _value_expr(candidates: list[int], predicate: str, guarded: bool) -> sql.Expr:
        """The member's raw value. ``guarded`` forces a CASE even for a
        single candidate column (needed when predicate presence is not
        enforced by the WHERE clause — optional and OR members)."""
        if len(candidates) == 1 and not guarded:
            return sql.Column("T", val_col(candidates[0]))
        return sql.Case(
            whens=tuple(
                (
                    sql.BinOp(
                        "=", sql.Column("T", pred_col(c)), sql.Const(predicate)
                    ),
                    sql.Column("T", val_col(c)),
                )
                for c in candidates
            )
        )

    # ---------------------------------------------------------------- emit

    def emit_access(
        self, builder: SqlBuilder, node: AccessNode | MergedNode, ctx: Ctx
    ) -> Ctx:
        if isinstance(node, AccessNode):
            members = [MergeMember(node.triple)]
            kind = "AND"
            method = node.method
            entity = self._entity_of(node.triple, method)
        else:
            members = node.members
            kind = node.kind
            method = node.method
            entity = node.entity

        if len(members) == 1 and isinstance(members[0].triple.predicate, Var):
            return self._emit_variable_predicate(builder, members[0], method, ctx)

        primary, secondary, mapper, mv_set, width = self._side(method)
        analyses: list[_Member] = []
        for member in members:
            predicate_term = member.triple.predicate
            if not isinstance(predicate_term, URI):
                raise UnsupportedQueryError(
                    "variable predicates cannot participate in merged accesses"
                )
            predicate = predicate_term.value
            candidates = [c for c in mapper.columns_for(predicate) if c < width]
            if not candidates:
                # predicate cannot exist in this store: no rows can match
                candidates = [0]
            analyses.append(
                _Member(
                    member,
                    predicate,
                    candidates,
                    predicate in mv_set,
                    self._value_of(member.triple, method),
                )
            )

        # ---------------- phase A --------------------------------------
        overrides: dict[str, sql.Expr] = {}
        where: list[sql.Expr] = []
        extra_items: list[sql.SelectItem] = []
        out_vars: list[str] = []
        now_definite: set[str] = set()
        now_maybe: set[str] = set()

        entity_source: sql.Expr
        if isinstance(entity, Var):
            if ctx.has(entity.name):
                bound_col = sql.Column("I", ctx.col(entity.name))
                maybe = ctx.is_maybe(entity.name)
                where.append(
                    compat_condition(sql.Column("T", ENTRY), bound_col, maybe)
                )
                replacement = compat_projection(
                    sql.Column("T", ENTRY), bound_col, maybe
                )
                if replacement is not None:
                    overrides[entity.name] = replacement
                    entity_source = replacement
                else:
                    entity_source = bound_col
                now_definite.add(entity.name)
            else:
                extra_items.append(
                    sql.SelectItem(sql.Column("T", ENTRY), var_col(entity.name))
                )
                out_vars.append(entity.name)
                now_definite.add(entity.name)
                entity_source = sql.Column("T", ENTRY)
        else:
            where.append(
                sql.BinOp("=", sql.Column("T", ENTRY), sql.Const(term_key(entity)))
            )
            entity_source = sql.Const(term_key(entity))

        tmp_counter = 0
        deferred: list[_Member] = []
        or_presences: list[sql.Expr] = []

        for analysis in analyses:
            optional = analysis.member.optional
            presence = self._presence(analysis.candidates, analysis.predicate)
            guarded = optional or kind == "OR"
            value_expr = self._value_expr(
                analysis.candidates, analysis.predicate, guarded
            )
            if kind == "OR":
                or_presences.append(presence)
                analysis.tmp = f"tmp{tmp_counter}"
                tmp_counter += 1
                extra_items.append(sql.SelectItem(value_expr, analysis.tmp))
                deferred.append(analysis)
                continue
            if not optional:
                where.append(presence)

            value = analysis.value
            if isinstance(value, Var):
                if isinstance(entity, Var) and value.name == entity.name:
                    # value equals the entity of this very access
                    if optional:
                        # an optional member whose variables are all already
                        # bound extends nothing and never filters: a no-op
                        continue
                    if analysis.multivalued:
                        analysis.tmp = f"tmp{tmp_counter}"
                        tmp_counter += 1
                        extra_items.append(sql.SelectItem(value_expr, analysis.tmp))
                        deferred.append(analysis)
                    else:
                        where.append(sql.BinOp("=", value_expr, entity_source))
                elif ctx.has(value.name):
                    if optional:
                        continue  # no fresh bindings: a no-op (see above)
                    if analysis.multivalued:
                        analysis.tmp = f"tmp{tmp_counter}"
                        tmp_counter += 1
                        extra_items.append(sql.SelectItem(value_expr, analysis.tmp))
                        deferred.append(analysis)
                    else:
                        bound_col = sql.Column("I", ctx.col(value.name))
                        maybe = ctx.is_maybe(value.name)
                        where.append(
                            compat_condition(value_expr, bound_col, maybe)
                        )
                        replacement = compat_projection(
                            value_expr, bound_col, maybe
                        )
                        if replacement is not None:
                            overrides[value.name] = replacement
                        now_definite.add(value.name)
                else:
                    # fresh variable
                    if analysis.multivalued:
                        analysis.tmp = f"tmp{tmp_counter}"
                        tmp_counter += 1
                        analysis.fresh_var = value.name
                        extra_items.append(sql.SelectItem(value_expr, analysis.tmp))
                        deferred.append(analysis)
                    else:
                        extra_items.append(
                            sql.SelectItem(value_expr, var_col(value.name))
                        )
                        out_vars.append(value.name)
                        if optional:
                            now_maybe.add(value.name)
                        else:
                            now_definite.add(value.name)
            else:
                key = term_key(value)
                if optional:
                    # an optional member binding nothing observable is a
                    # no-op: it never filters and produces no variables
                    continue
                if analysis.multivalued:
                    analysis.tmp = f"tmp{tmp_counter}"
                    tmp_counter += 1
                    extra_items.append(sql.SelectItem(value_expr, analysis.tmp))
                    deferred.append(analysis)
                else:
                    where.append(sql.BinOp("=", value_expr, sql.Const(key)))

        if kind == "OR" and or_presences:
            combined = or_presences[0]
            for presence in or_presences[1:]:
                combined = sql.BinOp("OR", combined, presence)
            where.append(combined)

        items = passthrough_items(ctx, overrides=overrides) + extra_items
        from_: sql.FromItem = sql.TableRef(primary, "T")
        if ctx.cte is not None:
            from_ = sql.Join(sql.TableRef(ctx.cte, "I"), from_, "INNER", None)
        phase_a = sql.Select(
            items=tuple(items), from_=from_, where=sql.conjoin(where)
        )
        a_name = builder.add_cte(phase_a)
        a_ctx = ctx.with_vars(a_name, out_vars, now_definite, now_maybe)

        if not deferred:
            return a_ctx

        if kind == "OR":
            return self._emit_or_flip(builder, a_ctx, deferred, secondary, ctx)
        return self._emit_phase_b(builder, a_ctx, deferred, secondary, ctx, entity)

    # ------------------------------------------------------------- phase B

    def _emit_phase_b(
        self,
        builder: SqlBuilder,
        a_ctx: Ctx,
        deferred: list[_Member],
        secondary: str,
        input_ctx: Ctx,
        entity,
    ) -> Ctx:
        """Resolve multi-valued lids for conjunctive (AND/OPT) members."""
        overrides: dict[str, sql.Expr] = {}
        where: list[sql.Expr] = []
        extra_items: list[sql.SelectItem] = []
        out_vars: list[str] = []
        now_definite: set[str] = set()
        now_maybe: set[str] = set()
        from_: sql.FromItem = sql.TableRef(a_ctx.cte, "P")
        for index, analysis in enumerate(deferred):
            alias = f"S{index}"
            from_ = sql.Join(
                from_,
                sql.TableRef(secondary, alias),
                "LEFT",
                sql.BinOp(
                    "=", sql.Column("P", analysis.tmp), sql.Column(alias, "l_id")
                ),
            )
            resolved = sql.FuncCall(
                "COALESCE",
                (sql.Column(alias, "elm"), sql.Column("P", analysis.tmp)),
            )
            value = analysis.value
            if isinstance(value, Var):
                if analysis.fresh_var is not None:
                    extra_items.append(sql.SelectItem(resolved, var_col(value.name)))
                    out_vars.append(value.name)
                    if analysis.member.optional:
                        now_maybe.add(value.name)
                    else:
                        now_definite.add(value.name)
                elif a_ctx.has(value.name):
                    bound_col = sql.Column("P", a_ctx.col(value.name))
                    maybe = a_ctx.is_maybe(value.name)
                    where.append(compat_condition(resolved, bound_col, maybe))
                    replacement = compat_projection(resolved, bound_col, maybe)
                    if replacement is not None:
                        overrides[value.name] = replacement
                    now_definite.add(value.name)
                else:
                    raise UnsupportedQueryError(
                        f"cannot locate bound variable ?{value.name} in phase B"
                    )
            else:
                where.append(
                    sql.BinOp("=", resolved, sql.Const(term_key(value)))
                )
        items = [
            item
            for item in passthrough_items(a_ctx, table_alias="P", overrides=overrides)
        ] + extra_items
        select = sql.Select(
            items=tuple(items), from_=from_, where=sql.conjoin(where)
        )
        name = builder.add_cte(select)
        return a_ctx.with_vars(name, out_vars, now_definite, now_maybe)

    def _emit_or_flip(
        self,
        builder: SqlBuilder,
        a_ctx: Ctx,
        deferred: list[_Member],
        secondary: str,
        input_ctx: Ctx,
    ) -> Ctx:
        """The Figure 13 flip: one UNION ALL branch per OR member."""
        # Output variables: every fresh variable any member binds.
        fresh_vars: list[str] = []
        for analysis in deferred:
            value = analysis.value
            if isinstance(value, Var) and not a_ctx.has(value.name):
                if value.name not in fresh_vars:
                    fresh_vars.append(value.name)

        selects: list[sql.Query] = []
        touched_bound: set[str] = set()
        for analysis in deferred:
            where: list[sql.Expr] = [
                sql.IsNull(sql.Column("P", analysis.tmp), negated=True)
            ]
            overrides: dict[str, sql.Expr] = {}
            from_: sql.FromItem = sql.TableRef(a_ctx.cte, "P")
            if analysis.multivalued:
                from_ = sql.Join(
                    from_,
                    sql.TableRef(secondary, "S"),
                    "LEFT",
                    sql.BinOp(
                        "=", sql.Column("P", analysis.tmp), sql.Column("S", "l_id")
                    ),
                )
                resolved: sql.Expr = sql.FuncCall(
                    "COALESCE", (sql.Column("S", "elm"), sql.Column("P", analysis.tmp))
                )
            else:
                resolved = sql.Column("P", analysis.tmp)

            value = analysis.value
            member_fresh: str | None = None
            if isinstance(value, Var):
                if a_ctx.has(value.name):
                    bound_col = sql.Column("P", a_ctx.col(value.name))
                    maybe = a_ctx.is_maybe(value.name)
                    where.append(compat_condition(resolved, bound_col, maybe))
                    replacement = compat_projection(resolved, bound_col, maybe)
                    if replacement is not None:
                        overrides[value.name] = replacement
                        touched_bound.add(value.name)
                else:
                    member_fresh = value.name
            else:
                where.append(sql.BinOp("=", resolved, sql.Const(term_key(value))))

            items = passthrough_items(a_ctx, table_alias="P", overrides=overrides)
            for variable in fresh_vars:
                if variable == member_fresh:
                    items.append(sql.SelectItem(resolved, var_col(variable)))
                else:
                    items.append(sql.SelectItem(sql.Const(None), var_col(variable)))
            selects.append(
                sql.Select(items=tuple(items), from_=from_, where=sql.conjoin(where))
            )

        union = sql.union_all(selects)
        name = builder.add_cte(union)
        # Fresh variables from a flip are bound only in their own branch;
        # previously maybe-bound consumed variables stay maybe (only the
        # matching branch re-projects them).
        return a_ctx.with_vars(name, fresh_vars, set(), set(fresh_vars))

    # ------------------------------------------- variable-predicate access

    def _emit_variable_predicate(
        self, builder: SqlBuilder, member: MergeMember, method: str, ctx: Ctx
    ) -> Ctx:
        """Unpivot the primary table: UNION ALL over all predicate columns,
        then always resolve through the secondary table (any value might be
        a lid when the predicate is unknown)."""
        primary, secondary, _, _, width = self._side(method)
        triple = member.triple
        entity = self._entity_of(triple, method)
        value = self._value_of(triple, method)
        predicate = triple.predicate
        assert isinstance(predicate, Var)

        entity_is_fresh = isinstance(entity, Var) and not ctx.has(entity.name)
        pred_is_bound = ctx.has(predicate.name)
        pred_maybe = pred_is_bound and ctx.is_maybe(predicate.name)
        pred_is_entity = isinstance(entity, Var) and predicate.name == entity.name

        branch_selects: list[sql.Query] = []
        a_out_vars: list[str] = []
        a_definite: set[str] = set()
        for i in range(width):
            overrides: dict[str, sql.Expr] = {}
            extra_items: list[sql.SelectItem] = []
            where: list[sql.Expr] = [
                sql.IsNull(sql.Column("T", pred_col(i)), negated=True)
            ]
            if isinstance(entity, Var):
                if ctx.has(entity.name):
                    bound_col = sql.Column("I", ctx.col(entity.name))
                    maybe = ctx.is_maybe(entity.name)
                    where.append(
                        compat_condition(sql.Column("T", ENTRY), bound_col, maybe)
                    )
                    replacement = compat_projection(
                        sql.Column("T", ENTRY), bound_col, maybe
                    )
                    if replacement is not None:
                        overrides[entity.name] = replacement
                else:
                    extra_items.append(
                        sql.SelectItem(sql.Column("T", ENTRY), var_col(entity.name))
                    )
            else:
                where.append(
                    sql.BinOp(
                        "=", sql.Column("T", ENTRY), sql.Const(term_key(entity))
                    )
                )
            if pred_is_bound:
                prior = overrides.get(predicate.name)
                if prior is not None:
                    # Subject and predicate are the same maybe-bound variable:
                    # the entity position already reconciled it to a never-NULL
                    # expression, so equate against that — a NULL-compat check
                    # on the raw incoming column would be vacuous for rows the
                    # prior pattern left unbound, dropping the intra-pattern
                    # entry == pred_i constraint.
                    where.append(
                        sql.BinOp("=", sql.Column("T", pred_col(i)), prior)
                    )
                else:
                    bound_col = sql.Column("I", ctx.col(predicate.name))
                    where.append(
                        compat_condition(
                            sql.Column("T", pred_col(i)), bound_col, pred_maybe
                        )
                    )
                    replacement = compat_projection(
                        sql.Column("T", pred_col(i)), bound_col, pred_maybe
                    )
                    if replacement is not None:
                        overrides[predicate.name] = replacement
            elif pred_is_entity:
                where.append(
                    sql.BinOp(
                        "=", sql.Column("T", pred_col(i)), sql.Column("T", ENTRY)
                    )
                )
            else:
                extra_items.append(
                    sql.SelectItem(sql.Column("T", pred_col(i)), "ptmp")
                )
            extra_items.append(sql.SelectItem(sql.Column("T", val_col(i)), "vtmp"))
            from_: sql.FromItem = sql.TableRef(primary, "T")
            if ctx.cte is not None:
                from_ = sql.Join(sql.TableRef(ctx.cte, "I"), from_, "INNER", None)
            branch_selects.append(
                sql.Select(
                    items=tuple(passthrough_items(ctx, overrides=overrides) + extra_items),
                    from_=from_,
                    where=sql.conjoin(where),
                )
            )

        union = sql.union_all(branch_selects)
        a_name = builder.add_cte(union)

        if entity_is_fresh:
            a_out_vars.append(entity.name)
            a_definite.add(entity.name)
        if isinstance(entity, Var) and ctx.has(entity.name):
            a_definite.add(entity.name)
        if pred_is_bound:
            a_definite.add(predicate.name)
        a_ctx = ctx.with_vars(a_name, a_out_vars, a_definite)

        # Phase B: resolve possible lids; bind predicate and value variables.
        overrides = {}
        extra_items = []
        where = []
        out_vars: list[str] = []
        now_definite: set[str] = set()
        from_ = sql.Join(
            sql.TableRef(a_name, "P"),
            sql.TableRef(secondary, "S"),
            "LEFT",
            sql.BinOp("=", sql.Column("P", "vtmp"), sql.Column("S", "l_id")),
        )
        resolved = sql.FuncCall(
            "COALESCE", (sql.Column("S", "elm"), sql.Column("P", "vtmp"))
        )
        if not pred_is_bound and not pred_is_entity:
            extra_items.append(
                sql.SelectItem(sql.Column("P", "ptmp"), var_col(predicate.name))
            )
            out_vars.append(predicate.name)
            now_definite.add(predicate.name)

        if isinstance(value, Var):
            if isinstance(entity, Var) and value.name == entity.name:
                where.append(
                    sql.BinOp(
                        "=", resolved, sql.Column("P", a_ctx.col(entity.name))
                    )
                )
            elif value.name == predicate.name and not pred_is_bound:
                where.append(sql.BinOp("=", resolved, sql.Column("P", "ptmp")))
            elif a_ctx.has(value.name):
                bound_col = sql.Column("P", a_ctx.col(value.name))
                maybe = a_ctx.is_maybe(value.name)
                where.append(compat_condition(resolved, bound_col, maybe))
                replacement = compat_projection(resolved, bound_col, maybe)
                if replacement is not None:
                    overrides[value.name] = replacement
                now_definite.add(value.name)
            else:
                extra_items.append(sql.SelectItem(resolved, var_col(value.name)))
                out_vars.append(value.name)
                now_definite.add(value.name)
        else:
            where.append(sql.BinOp("=", resolved, sql.Const(term_key(value))))

        items = passthrough_items(a_ctx, table_alias="P", overrides=overrides)
        items += extra_items
        select = sql.Select(items=tuple(items), from_=from_, where=sql.conjoin(where))
        name = builder.add_cte(select)
        return a_ctx.with_vars(name, out_vars, now_definite)
