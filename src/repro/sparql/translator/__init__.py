"""SPARQL-to-SQL translation: generic pipeline + storage emitters."""

from .db2rdf import Db2RdfEmitter, StorageInfo
from .filters import FilterTranslator, UntranslatableFilter
from .pipeline import Ctx, PipelineTranslator, SqlBuilder, TripleEmitter, var_col

__all__ = [
    "Ctx",
    "Db2RdfEmitter",
    "FilterTranslator",
    "PipelineTranslator",
    "SqlBuilder",
    "StorageInfo",
    "TripleEmitter",
    "UntranslatableFilter",
    "var_col",
]
