"""The generic SPARQL-plan-to-SQL pipeline builder.

Walks a query plan tree (AccessNode / MergedNode / AndNode / OrNode /
OptNode / FilterNode) and emits a chain of CTEs in the style of the paper's
Figure 13: each access consumes the previous CTE's bindings and produces a
new CTE; UNION becomes UNION ALL over branch pipelines; OPTIONAL becomes a
LEFT OUTER JOIN keyed by a synthetic row id (preserving bag semantics);
FILTERs become WHERE-wrapped CTEs.

The storage-specific part — how one triple or merged star becomes a table
access — is delegated to a :class:`TripleEmitter`, so the same machinery
translates for the DB2RDF schema, the triple-store baseline, and the
predicate-oriented baseline.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ...core.errors import UnsupportedQueryError
from ...relational import ast as sql
from ..ast import SelectQuery
from ..optimizer.merge import MergedNode, PlanNode
from ..optimizer.planbuilder import (
    AccessNode,
    AndNode,
    EmptyNode,
    FilterNode,
    OptNode,
    OrNode,
)
from .filters import FilterTranslator, UntranslatableFilter

ROW_ID = "__rid"


def var_col(name: str) -> str:
    return f"v_{name}"


@dataclass(frozen=True)
class Ctx:
    """Current pipeline state: the CTE holding all bindings so far.

    ``maybe`` lists variables whose column can be SQL NULL while the
    variable is conceptually *unbound* (they came out of a UNION branch that
    did not bind them, or out of an OPTIONAL). A later access consuming such
    a variable must use compatibility semantics — ``col IS NULL OR col = x``
    — and re-project the (now definitely bound) value with COALESCE.
    Variables not in ``maybe`` are guaranteed non-NULL.
    """

    cte: str | None = None
    columns: tuple[tuple[str, str], ...] = ()  # (var, column) pairs, ordered
    maybe: frozenset[str] = frozenset()

    def column_map(self) -> dict[str, str]:
        return dict(self.columns)

    def has(self, variable: str) -> bool:
        return any(v == variable for v, _ in self.columns)

    def col(self, variable: str) -> str:
        for v, c in self.columns:
            if v == variable:
                return c
        raise KeyError(variable)

    def is_maybe(self, variable: str) -> bool:
        return variable in self.maybe

    def with_vars(
        self,
        cte: str,
        new_vars: list[str],
        now_definite: set[str] | frozenset[str] = frozenset(),
        now_maybe: set[str] | frozenset[str] = frozenset(),
    ) -> "Ctx":
        columns = list(self.columns)
        for variable in new_vars:
            if not self.has(variable):
                columns.append((variable, var_col(variable)))
        maybe = (set(self.maybe) | set(now_maybe)) - set(now_definite)
        return Ctx(cte, tuple(columns), frozenset(maybe))


def compat_condition(
    source: sql.Expr, bound_col: sql.Expr, maybe: bool
) -> sql.Expr:
    """Equality against a bound variable, compatibility-style when the
    binding may be absent."""
    equality = sql.BinOp("=", source, bound_col)
    if maybe:
        return sql.BinOp("OR", sql.IsNull(bound_col), equality)
    return equality


def compat_projection(
    source: sql.Expr, bound_col: sql.Expr, maybe: bool
) -> sql.Expr | None:
    """Replacement projection for a consumed maybe-bound variable (the
    access definitely binds it now); None when passthrough suffices."""
    if maybe:
        return sql.FuncCall("COALESCE", (bound_col, source))
    return None


class SqlBuilder:
    """Accumulates CTEs and hands out fresh names."""

    def __init__(self, prefix: str = "Q") -> None:
        self.prefix = prefix
        self.ctes: list[tuple[str, sql.Query]] = []
        self._counter = 0

    def fresh_name(self, hint: str = "") -> str:
        self._counter += 1
        return f"{self.prefix}{self._counter}{hint}"

    def add_cte(self, query: sql.Query, hint: str = "") -> str:
        name = self.fresh_name(hint)
        self.ctes.append((name, _ensure_items(query)))
        return name

    def fresh_row_id(self) -> str:
        """A unique row-id column name (nested OPTIONALs must not share)."""
        self._counter += 1
        return f"{ROW_ID}{self._counter}"

    def finish(self, body: sql.Query) -> sql.Query:
        if not self.ctes:
            return body
        return sql.With(tuple(self.ctes), body)


def _ensure_items(query: sql.Query) -> sql.Query:
    """Guarantee every SELECT projects at least one column (fully ground
    patterns bind no variables; a constant marker keeps row counts)."""
    if isinstance(query, sql.Select):
        if query.items:
            return query
        return sql.Select(
            items=(sql.SelectItem(sql.Const(1), "__match"),),
            from_=query.from_,
            where=query.where,
            group_by=query.group_by,
            having=query.having,
            distinct=query.distinct,
            order_by=query.order_by,
            limit=query.limit,
            offset=query.offset,
        )
    if isinstance(query, sql.SetOp):
        return sql.SetOp(
            query.op,
            _ensure_items(query.left),
            _ensure_items(query.right),
            query.order_by,
            query.limit,
            query.offset,
        )
    return query


class TripleEmitter(abc.ABC):
    """Storage-specific access emission."""

    #: whether MergedNode plans are supported (only entity-oriented storage)
    supports_merge = False

    @abc.abstractmethod
    def emit_access(
        self, builder: SqlBuilder, node: AccessNode | MergedNode, ctx: Ctx
    ) -> Ctx:
        """Emit CTE(s) evaluating ``node`` against ``ctx``; return new ctx."""


def passthrough_items(
    ctx: Ctx,
    table_alias: str | None = "I",
    overrides: dict[str, sql.Expr] | None = None,
) -> list[sql.SelectItem]:
    """SELECT items copying every binding column from the input CTE;
    ``overrides`` substitutes expressions for specific variables (used to
    re-project maybe-bound variables an access just bound)."""
    items = []
    for variable, column in ctx.columns:
        if overrides and variable in overrides:
            items.append(sql.SelectItem(overrides[variable], column))
        else:
            items.append(sql.SelectItem(sql.Column(table_alias, column), column))
    return items


class PipelineTranslator:
    """Plan tree -> SQL query, generic over the storage emitter."""

    def __init__(self, emitter: TripleEmitter) -> None:
        self.emitter = emitter

    # -------------------------------------------------------------- public

    def translate(self, plan: PlanNode, query: SelectQuery) -> sql.Query:
        builder = SqlBuilder()
        ctx = self.process(builder, plan, Ctx())
        body = self._final_select(ctx, query)
        return builder.finish(body)

    # ------------------------------------------------------------- walking

    def process(self, builder: SqlBuilder, node: PlanNode, ctx: Ctx) -> Ctx:
        if isinstance(node, (AccessNode, MergedNode)):
            return self.emitter.emit_access(builder, node, ctx)
        if isinstance(node, AndNode):
            ctx = self.process(builder, node.left, ctx)
            return self.process(builder, node.right, ctx)
        if isinstance(node, EmptyNode):
            return ctx
        if isinstance(node, FilterNode):
            ctx = self.process(builder, node.child, ctx)
            return self._emit_filters(builder, node.filters, ctx)
        if isinstance(node, OrNode):
            return self._emit_union(builder, node, ctx)
        if isinstance(node, OptNode):
            return self._emit_optional(builder, node, ctx)
        raise TypeError(f"unknown plan node {node!r}")

    # ------------------------------------------------------------- filters

    def _emit_filters(self, builder: SqlBuilder, filters, ctx: Ctx) -> Ctx:
        if not filters:
            return ctx
        if ctx.cte is None:
            # Filters over the unit solution: no variables can be bound, so
            # the only sensible translations are constants; treat anything
            # else as unsupported.
            raise UnsupportedQueryError("FILTER over an empty group")
        columns = ctx.column_map()

        def column_of(variable: str) -> sql.Expr:
            return sql.Column("I", columns[variable])

        translator = FilterTranslator(column_of)
        conditions = []
        for condition in filters:
            try:
                conditions.append(translator.condition(condition))
            except UntranslatableFilter as exc:
                raise UnsupportedQueryError(f"FILTER not translatable: {exc}") from exc
        select = sql.Select(
            items=tuple(passthrough_items(ctx)),
            from_=sql.TableRef(ctx.cte, "I"),
            where=sql.conjoin(conditions),
        )
        name = builder.add_cte(select)
        return Ctx(name, ctx.columns, ctx.maybe)

    # --------------------------------------------------------------- union

    def _emit_union(self, builder: SqlBuilder, node: OrNode, ctx: Ctx) -> Ctx:
        branch_ctxs = [
            self.process(builder, branch, ctx) for branch in node.branches
        ]
        # Output variables: every variable any branch (or the input) binds.
        out_vars: list[str] = [v for v, _ in ctx.columns]
        for branch_ctx in branch_ctxs:
            for variable, _ in branch_ctx.columns:
                if variable not in out_vars:
                    out_vars.append(variable)

        selects: list[sql.Query] = []
        for branch_ctx in branch_ctxs:
            items = []
            for variable in out_vars:
                if branch_ctx.has(variable):
                    source: sql.Expr = sql.Column("I", branch_ctx.col(variable))
                else:
                    source = sql.Const(None)
                items.append(sql.SelectItem(source, var_col(variable)))
            if branch_ctx.cte is None:
                select = sql.Select(items=tuple(items))
            else:
                select = sql.Select(
                    items=tuple(items), from_=sql.TableRef(branch_ctx.cte, "I")
                )
            selects.append(select)
        union = sql.union_all(selects)
        name = builder.add_cte(union)
        columns = tuple((variable, var_col(variable)) for variable in out_vars)
        # A variable is definitely bound only if every branch binds it
        # definitely; otherwise its column may be NULL-as-unbound.
        maybe: set[str] = set()
        for variable in out_vars:
            for branch_ctx in branch_ctxs:
                if not branch_ctx.has(variable) or branch_ctx.is_maybe(variable):
                    maybe.add(variable)
                    break
        return Ctx(name, columns, frozenset(maybe))

    # ------------------------------------------------------------ optional

    def _emit_optional(self, builder: SqlBuilder, node: OptNode, ctx: Ctx) -> Ctx:
        left_ctx = self.process(builder, node.left, ctx)

        # Materialize the left side with a synthetic row id so the final
        # left join preserves duplicate bindings (bag semantics). The id
        # column gets a per-optional unique name: nested OPTIONALs each
        # carry their own id, and sharing a name would misjoin them.
        row_id = builder.fresh_row_id()
        items = passthrough_items(left_ctx)
        items.append(sql.SelectItem(sql.FuncCall("ROWNUM", ()), row_id))
        if left_ctx.cte is None:
            rid_select = sql.Select(items=tuple(items))
        else:
            rid_select = sql.Select(
                items=tuple(items), from_=sql.TableRef(left_ctx.cte, "I")
            )
        rid_name = builder.add_cte(rid_select)
        rid_columns = left_ctx.columns + ((f"?{row_id}", row_id),)
        rid_ctx = Ctx(rid_name, rid_columns, left_ctx.maybe)

        right_ctx = self.process(builder, node.right, rid_ctx)

        left_vars = [v for v, _ in left_ctx.columns]
        new_vars = [
            variable
            for variable, _ in right_ctx.columns
            if variable not in left_vars and not variable.startswith("?")
        ]

        join_items: list[sql.SelectItem] = []
        for variable, column in left_ctx.columns:
            if left_ctx.is_maybe(variable) and right_ctx.has(variable):
                # The optional side may have bound a previously unbound
                # variable; matched rows carry the definite value.
                join_items.append(
                    sql.SelectItem(
                        sql.FuncCall(
                            "COALESCE",
                            (
                                sql.Column("R", right_ctx.col(variable)),
                                sql.Column("L", column),
                            ),
                        ),
                        column,
                    )
                )
            else:
                join_items.append(
                    sql.SelectItem(sql.Column("L", column), column)
                )
        for variable in new_vars:
            join_items.append(
                sql.SelectItem(
                    sql.Column("R", right_ctx.col(variable)), var_col(variable)
                )
            )
        join = sql.Join(
            sql.TableRef(rid_name, "L"),
            sql.TableRef(right_ctx.cte, "R"),
            "LEFT",
            sql.BinOp("=", sql.Column("L", row_id), sql.Column("R", row_id)),
        )
        select = sql.Select(items=tuple(join_items), from_=join)
        name = builder.add_cte(select)
        columns = left_ctx.columns + tuple(
            (variable, var_col(variable)) for variable in new_vars
        )
        maybe = set(left_ctx.maybe) | set(new_vars)
        return Ctx(name, columns, frozenset(maybe))

    # ------------------------------------------------------------ finalize

    def _final_select(self, ctx: Ctx, query: SelectQuery) -> sql.Query:
        variables = query.projected_variables()
        items: list[sql.SelectItem] = []
        for variable in variables:
            if ctx.has(variable):
                items.append(
                    sql.SelectItem(sql.Column("I", ctx.col(variable)), variable)
                )
            else:
                items.append(sql.SelectItem(sql.Const(None), variable))
        if not items:
            # A fully ground pattern (e.g. ASK over constants) projects a
            # marker column so the row count carries the answer.
            items.append(sql.SelectItem(sql.Const(1), "__match"))

        order_by: list[sql.OrderItem] = []
        for condition in query.order_by:
            from ..ast import FVar

            if not isinstance(condition.expr, FVar):
                raise UnsupportedQueryError("ORDER BY supports plain variables only")
            name = condition.expr.name
            if ctx.has(name):
                order_by.append(
                    sql.OrderItem(sql.Column("I", ctx.col(name)), condition.ascending)
                )

        from_: sql.FromItem | None = (
            sql.TableRef(ctx.cte, "I") if ctx.cte is not None else None
        )
        return sql.Select(
            items=tuple(items),
            from_=from_,
            distinct=query.distinct or query.reduced,
            order_by=tuple(order_by),
            limit=query.limit,
            offset=query.offset,
        )
