"""FILTER expression translation to SQL.

Column values are canonical term keys, so equality is key equality, while
value-level operations (numeric comparison, string functions, regex) go
through the RDF_* scalar functions registered on both backends. The
translation mirrors the reference evaluator: numeric comparison when both
sides are numeric, string comparison otherwise, SQL NULL propagation
standing in for SPARQL expression errors.
"""

from __future__ import annotations

from ...rdf.terms import Literal, term_key
from ...relational import ast as sql
from ..ast import (
    FBinary,
    FBound,
    FCall,
    FConst,
    FilterExpr,
    FRegex,
    FUnary,
    FVar,
)


class UntranslatableFilter(Exception):
    """Raised when a FILTER cannot be expressed in the SQL subset."""


class FilterTranslator:
    """Translates filter expressions given a variable -> SQL column map."""

    def __init__(self, column_of) -> None:
        # column_of(var_name) -> sql.Expr for the variable's key column;
        # raises KeyError when the variable is not in scope (treated as
        # always-unbound: translated to NULL).
        self._column_of = column_of

    # ------------------------------------------------------------- helpers

    def _var(self, name: str) -> sql.Expr:
        try:
            return self._column_of(name)
        except KeyError:
            return sql.Const(None)

    def _key_operand(self, expr: FilterExpr) -> sql.Expr:
        """An operand as a term key (for identity-level operations)."""
        if isinstance(expr, FVar):
            return self._var(expr.name)
        if isinstance(expr, FConst):
            return sql.Const(term_key(expr.term))
        if isinstance(expr, FCall) and expr.name.upper() == "STR":
            # STR(x) compared by key: compare lexical forms instead.
            raise UntranslatableFilter("STR() needs value-level comparison")
        raise UntranslatableFilter(f"not a term operand: {expr!r}")

    def _num(self, expr: FilterExpr) -> sql.Expr:
        """An operand as a number (RDF_NUM over keys, literal passthrough)."""
        if isinstance(expr, FConst):
            term = expr.term
            if isinstance(term, Literal) and term.is_numeric:
                return sql.Const(float(term.value))
            return sql.FuncCall("RDF_NUM", (sql.Const(term_key(term)),))
        if isinstance(expr, FVar):
            return sql.FuncCall("RDF_NUM", (self._var(expr.name),))
        if isinstance(expr, FBinary) and expr.op in ("+", "-", "*", "/"):
            return sql.BinOp(expr.op, self._num(expr.left), self._num(expr.right))
        if isinstance(expr, FUnary) and expr.op == "-":
            return sql.UnaryOp("-", self._num(expr.operand))
        raise UntranslatableFilter(f"not numeric-translatable: {expr!r}")

    def _str(self, expr: FilterExpr) -> sql.Expr:
        """An operand as its lexical form (RDF_STR over keys)."""
        if isinstance(expr, FConst):
            term = expr.term
            if isinstance(term, Literal):
                return sql.Const(term.value)
            return sql.Const(term.value if hasattr(term, "value") else str(term))
        if isinstance(expr, FVar):
            return sql.FuncCall("RDF_STR", (self._var(expr.name),))
        if isinstance(expr, FCall) and expr.name.upper() == "STR":
            return self._str(expr.args[0])
        if isinstance(expr, FCall) and expr.name.upper() == "LANG":
            return sql.FuncCall("RDF_LANG", (self._key_operand(expr.args[0]),))
        if isinstance(expr, FCall) and expr.name.upper() == "DATATYPE":
            return sql.FuncCall("RDF_DATATYPE", (self._key_operand(expr.args[0]),))
        raise UntranslatableFilter(f"not string-translatable: {expr!r}")

    def _ord(self, expr: FilterExpr) -> sql.Expr:
        """An operand as an ordering-comparable string (NULL when the term
        is not orderable — URIs, typed non-string literals)."""
        if isinstance(expr, FConst):
            term = expr.term
            if isinstance(term, Literal) and term.lang is None and (
                term.datatype is None or term.datatype.endswith("#string")
            ):
                return sql.Const(term.value)
            return sql.Const(None)
        if isinstance(expr, FVar):
            return sql.FuncCall("RDF_ORD", (self._var(expr.name),))
        # Value-level string producers (STR, LANG, ...) are orderable.
        return self._str(expr)

    @staticmethod
    def _is_numeric_const(expr: FilterExpr) -> bool:
        return (
            isinstance(expr, FConst)
            and isinstance(expr.term, Literal)
            and expr.term.is_numeric
        )

    # ----------------------------------------------------------- translate

    def condition(self, expr: FilterExpr) -> sql.Expr:
        """Translate to a SQL boolean condition (SQL TRUE keeps the row)."""
        if isinstance(expr, FBinary):
            return self._binary_condition(expr)
        if isinstance(expr, FUnary):
            if expr.op == "!":
                return sql.UnaryOp("NOT", self.condition(expr.operand))
            raise UntranslatableFilter(f"unary {expr.op!r} as condition")
        if isinstance(expr, FBound):
            return sql.IsNull(self._var(expr.var), negated=True)
        if isinstance(expr, FRegex):
            return sql.BinOp(
                "=",
                sql.FuncCall(
                    "RDF_REGEX",
                    (
                        self._key_operand(expr.operand),
                        sql.Const(expr.pattern),
                        sql.Const(expr.flags),
                    ),
                ),
                sql.Const(1),
            )
        if isinstance(expr, FCall):
            return self._call_condition(expr)
        if isinstance(expr, (FVar, FConst)):
            return sql.BinOp(
                "=", sql.FuncCall("RDF_EBV", (self._key_operand(expr),)), sql.Const(1)
            )
        raise UntranslatableFilter(f"cannot translate filter {expr!r}")

    def _binary_condition(self, expr: FBinary) -> sql.Expr:
        op = expr.op
        if op == "&&":
            return sql.BinOp(
                "AND", self.condition(expr.left), self.condition(expr.right)
            )
        if op == "||":
            return sql.BinOp(
                "OR", self.condition(expr.left), self.condition(expr.right)
            )
        if op in ("=", "!="):
            return self._equality(expr)
        if op in ("<", "<=", ">", ">="):
            return self._ordering(expr)
        raise UntranslatableFilter(f"operator {op!r} as condition")

    def _equality(self, expr: FBinary) -> sql.Expr:
        sql_op = "=" if expr.op == "=" else "<>"
        # Fast path: numeric constant on either side -> numeric equality.
        if self._is_numeric_const(expr.left) or self._is_numeric_const(expr.right):
            return sql.BinOp(sql_op, self._num(expr.left), self._num(expr.right))
        try:
            left_key = self._key_operand(expr.left)
            right_key = self._key_operand(expr.right)
        except UntranslatableFilter:
            # Value-level equality (e.g. STR(?x) = "...", LANG(?x) = "en").
            return sql.BinOp(sql_op, self._str(expr.left), self._str(expr.right))
        # Both are terms: numeric equality when both numeric, else key
        # equality — the reference evaluator's rule, as one CASE expression
        # reified to 1/0/NULL and compared against 1.
        left_num = self._num_or_null(expr.left)
        right_num = self._num_or_null(expr.right)
        both_numeric = sql.BinOp(
            "AND",
            sql.IsNull(left_num, negated=True),
            sql.IsNull(right_num, negated=True),
        )
        case = sql.Case(
            whens=(
                (both_numeric, _bool_expr(sql.BinOp(sql_op, left_num, right_num))),
            ),
            default=_bool_expr(sql.BinOp(sql_op, left_key, right_key)),
        )
        return sql.BinOp("=", case, sql.Const(1))

    def _ordering(self, expr: FBinary) -> sql.Expr:
        op = expr.op
        if self._is_numeric_const(expr.left) or self._is_numeric_const(expr.right):
            return sql.BinOp(op, self._num(expr.left), self._num(expr.right))
        left_num = self._num_or_null(expr.left)
        right_num = self._num_or_null(expr.right)
        both_numeric = sql.BinOp(
            "AND",
            sql.IsNull(left_num, negated=True),
            sql.IsNull(right_num, negated=True),
        )
        case = sql.Case(
            whens=((both_numeric, _bool_expr(sql.BinOp(op, left_num, right_num))),),
            default=_bool_expr(
                sql.BinOp(op, self._ord(expr.left), self._ord(expr.right))
            ),
        )
        return sql.BinOp("=", case, sql.Const(1))

    def _num_or_null(self, expr: FilterExpr) -> sql.Expr:
        try:
            return self._num(expr)
        except UntranslatableFilter:
            return sql.Const(None)

    def _call_condition(self, expr: FCall) -> sql.Expr:
        name = expr.name.upper()
        if name in ("ISURI", "ISIRI"):
            fn = "RDF_ISURI"
        elif name == "ISLITERAL":
            fn = "RDF_ISLITERAL"
        elif name == "ISBLANK":
            fn = "RDF_ISBLANK"
        elif name == "SAMETERM":
            return sql.BinOp(
                "=",
                self._key_operand(expr.args[0]),
                self._key_operand(expr.args[1]),
            )
        elif name == "LANGMATCHES":
            return sql.BinOp(
                "=",
                sql.FuncCall(
                    "RDF_LANGMATCHES",
                    (self._str(expr.args[0]), self._str(expr.args[1])),
                ),
                sql.Const(1),
            )
        else:
            raise UntranslatableFilter(f"builtin {expr.name!r}")
        return sql.BinOp(
            "=", sql.FuncCall(fn, (self._key_operand(expr.args[0]),)), sql.Const(1)
        )


def _bool_expr(condition: sql.Expr) -> sql.Expr:
    """Wrap a boolean condition as a CASE value usable inside another CASE.

    SQL conditions are not first-class values in the engine's expression
    grammar, so the condition is reified to 1/0/NULL and the outer context
    compares against 1 — except here callers use the CASE branch's value
    directly as the condition result, so reify with CASE.
    """
    return sql.Case(
        whens=((condition, sql.Const(1)),),
        default=sql.Case(
            whens=((sql.UnaryOp("NOT", condition), sql.Const(0)),), default=sql.Const(None)
        ),
    )
