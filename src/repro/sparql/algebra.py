"""Pattern-tree utilities: normalization, ancestor maps, LCA machinery.

The optimizer's definitions (3.4–3.7 in the paper) are all phrased over the
query parse tree: least common ancestors, the ancestors-to-LCA set ``↑↑``,
OR-connected (``∪``) and OPTIONAL-connected (``∩``) triples. This module
computes those relations once per query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from .ast import (
    GroupPattern,
    OptionalPattern,
    PatternElement,
    SelectQuery,
    TriplePattern,
    UnionPattern,
)

PatternNode = Union[GroupPattern, UnionPattern, OptionalPattern]


def normalize(query: SelectQuery) -> SelectQuery:
    """Flatten redundant nesting: a bare GroupPattern element inside a group
    folds its elements and filters into the parent (``{ { P } }`` = ``{ P }``),
    and single-branch unions collapse."""
    query.where = _normalize_group(query.where)
    return query


def _normalize_group(group: GroupPattern) -> GroupPattern:
    elements: list[PatternElement] = []
    filters = list(group.filters)
    for element in group.elements:
        if isinstance(element, GroupPattern):
            inner = _normalize_group(element)
            elements.extend(inner.elements)
            filters.extend(inner.filters)
        elif isinstance(element, UnionPattern):
            branches = [_normalize_group(branch) for branch in element.branches]
            if len(branches) == 1:
                elements.extend(branches[0].elements)
                filters.extend(branches[0].filters)
            else:
                elements.append(UnionPattern(branches))
        elif isinstance(element, OptionalPattern):
            elements.append(OptionalPattern(_normalize_group(element.pattern)))
        else:
            elements.append(element)
    return GroupPattern(elements, filters)


@dataclass
class PatternTree:
    """Parent pointers and triple paths over a normalized pattern tree.

    ``parents[x]`` is the chain from x's immediate parent up to the root
    group; triples and pattern nodes are keyed by identity.
    """

    root: GroupPattern
    parent: dict[int, object] = field(default_factory=dict)
    _nodes: dict[int, object] = field(default_factory=dict)

    @classmethod
    def build(cls, root: GroupPattern) -> "PatternTree":
        tree = cls(root)
        tree._walk(root, None)
        return tree

    def _walk(self, node: object, parent: object | None) -> None:
        self._nodes[id(node)] = node
        if parent is not None:
            self.parent[id(node)] = parent
        if isinstance(node, GroupPattern):
            for element in node.elements:
                self._walk(element, node)
        elif isinstance(node, UnionPattern):
            for branch in node.branches:
                self._walk(branch, node)
        elif isinstance(node, OptionalPattern):
            self._walk(node.pattern, node)

    def ancestors(self, node: object) -> list[object]:
        """``↑*``: the chain of ancestors from immediate parent to root."""
        chain: list[object] = []
        current = self.parent.get(id(node))
        while current is not None:
            chain.append(current)
            current = self.parent.get(id(current))
        return chain

    def lca(self, a: object, b: object) -> object | None:
        """Definition 3.4: the least common ancestor pattern node."""
        if a is b:
            return a
        ids_a = {id(x) for x in [a] + self.ancestors(a)}
        current = self.parent.get(id(b))
        while current is not None:
            if id(current) in ids_a:
                return current
            current = self.parent.get(id(current))
        return None

    def ancestors_to_lca(self, node: object, other: object) -> list[object]:
        """Definition 3.5 ``↑↑(node, other)``: ancestors of ``node`` strictly
        below the LCA of the two."""
        lca = self.lca(node, other)
        chain = []
        for ancestor in self.ancestors(node):
            if ancestor is lca:
                break
            chain.append(ancestor)
        return chain

    def or_connected(self, a: TriplePattern, b: TriplePattern) -> bool:
        """Definition 3.6 ``∪``: the LCA is (effectively) a UNION — the two
        triples live in different branches of the same union."""
        lca = self.lca(a, b)
        return isinstance(lca, UnionPattern)

    def optional_connected(self, a: TriplePattern, b: TriplePattern) -> bool:
        """Definition 3.7 ``∩(a, b)``: ``b`` is optional with respect to
        ``a`` — an OPTIONAL pattern guards ``b`` below their LCA."""
        return any(
            isinstance(ancestor, OptionalPattern)
            for ancestor in self.ancestors_to_lca(b, a)
        )

    def and_mergeable(self, a: TriplePattern, b: TriplePattern) -> bool:
        """Definition 3.9: the LCA and every intermediate ancestor is a
        plain conjunctive group."""
        if not isinstance(self.lca(a, b), GroupPattern):
            return False
        return all(
            isinstance(ancestor, GroupPattern)
            for ancestor in self.ancestors_to_lca(a, b)
            + self.ancestors_to_lca(b, a)
        )

    def or_mergeable(self, a: TriplePattern, b: TriplePattern) -> bool:
        """Definition 3.10: the triples sit in sibling UNION branches with
        only trivial structure in between.

        In the normalized tree each union branch is a GroupPattern directly
        under the UnionPattern, so the condition is: LCA is a UnionPattern
        and each side's path to it crosses only its branch group.
        """
        lca = self.lca(a, b)
        if not isinstance(lca, UnionPattern):
            return False
        for triple in (a, b):
            for ancestor in self.ancestors_to_lca(triple, a if triple is b else b):
                if ancestor is lca:
                    continue
                if not isinstance(ancestor, GroupPattern):
                    return False
        return True

    def opt_mergeable(self, a: TriplePattern, b: TriplePattern) -> bool:
        """Definition 3.11: all intermediate ancestors are conjunctive except
        that ``b`` (the later triple) is immediately guarded by an OPTIONAL."""
        if not isinstance(self.lca(a, b), GroupPattern):
            return False
        path_a = self.ancestors_to_lca(a, b)
        if not all(isinstance(x, GroupPattern) for x in path_a):
            return False
        path_b = self.ancestors_to_lca(b, a)
        seen_optional = False
        for ancestor in path_b:
            if isinstance(ancestor, GroupPattern):
                continue
            if isinstance(ancestor, OptionalPattern) and not seen_optional:
                seen_optional = True
                continue
            return False
        return seen_optional
