"""A naive reference SPARQL evaluator over the in-memory graph.

This is the correctness oracle: deliberately simple (nested-loop BGP
evaluation in textual order, direct implementation of the SPARQL algebra)
so its answers can be trusted, and every optimized engine in the repository
is tested against it.
"""

from __future__ import annotations

import re
from typing import Iterable

from ..rdf.graph import Graph
from ..rdf.terms import BNode, Literal, Term, URI, XSD_BOOLEAN, term_key
from .ast import (
    AskQuery,
    FBinary,
    FBound,
    FCall,
    FConst,
    FilterExpr,
    FRegex,
    FUnary,
    FVar,
    GroupPattern,
    OptionalPattern,
    SelectQuery,
    TriplePattern,
    UnionPattern,
    Var,
)
from .parser import parse_sparql
from .results import SelectResult, project_rows

Bindings = dict[str, Term]


class FilterError(Exception):
    """SPARQL expression evaluation error (treated as FILTER-false)."""


# ---------------------------------------------------------------------------
# Pattern evaluation
# ---------------------------------------------------------------------------


def _substitute(position, bindings: Bindings):
    if isinstance(position, Var):
        return bindings.get(position.name)
    return position


def _match_triple(
    graph: Graph, pattern: TriplePattern, bindings: Bindings
) -> Iterable[Bindings]:
    subject = _substitute(pattern.subject, bindings)
    predicate = _substitute(pattern.predicate, bindings)
    obj = _substitute(pattern.object, bindings)
    predicate_uri = predicate if isinstance(predicate, URI) else None
    if predicate is not None and predicate_uri is None:
        return  # a literal/bnode bound in predicate position can never match
    if isinstance(subject, Literal):
        return
    for triple in graph.match(subject, predicate_uri, obj):
        extended = dict(bindings)
        consistent = True
        for position, value in (
            (pattern.subject, triple.subject),
            (pattern.predicate, triple.predicate),
            (pattern.object, triple.object),
        ):
            if isinstance(position, Var):
                bound = extended.get(position.name)
                if bound is None:
                    extended[position.name] = value
                elif bound != value:
                    consistent = False
                    break
        if consistent:
            yield extended


def evaluate_group(
    graph: Graph, group: GroupPattern, inputs: list[Bindings]
) -> list[Bindings]:
    """Evaluate a group pattern left-to-right, extending each input binding
    (SPARQL's sequential join/leftjoin semantics), then apply its filters."""
    solutions = inputs
    for element in group.elements:
        if isinstance(element, TriplePattern):
            solutions = [
                extended
                for bindings in solutions
                for extended in _match_triple(graph, element, bindings)
            ]
        elif isinstance(element, GroupPattern):
            solutions = evaluate_group(graph, element, solutions)
        elif isinstance(element, UnionPattern):
            solutions = [
                extended
                for bindings in solutions
                for branch in element.branches
                for extended in evaluate_group(graph, branch, [bindings])
            ]
        elif isinstance(element, OptionalPattern):
            next_solutions: list[Bindings] = []
            for bindings in solutions:
                extensions = evaluate_group(graph, element.pattern, [bindings])
                if extensions:
                    next_solutions.extend(extensions)
                else:
                    next_solutions.append(bindings)
            solutions = next_solutions
        else:
            raise TypeError(f"unknown pattern element {element!r}")
    for condition in group.filters:
        solutions = [
            bindings
            for bindings in solutions
            if _filter_passes(condition, bindings)
        ]
    return solutions


# ---------------------------------------------------------------------------
# Filter expressions
# ---------------------------------------------------------------------------


def _filter_passes(expr: FilterExpr, bindings: Bindings) -> bool:
    try:
        return _ebv(evaluate_filter(expr, bindings))
    except FilterError:
        return False


def _ebv(value) -> bool:
    """Effective boolean value (SPARQL §11.2.2)."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return len(value) > 0
    if isinstance(value, Literal):
        if value.datatype == XSD_BOOLEAN:
            return value.value in ("true", "1")
        if value.is_numeric:
            try:
                return float(value.value) != 0
            except ValueError as exc:
                raise FilterError(str(exc)) from exc
        if value.datatype is None and value.lang is None:
            return len(value.value) > 0
    raise FilterError(f"no effective boolean value for {value!r}")


def _numeric(value) -> float | int:
    if isinstance(value, bool):
        raise FilterError("boolean is not numeric")
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, Literal) and value.is_numeric:
        number = value.to_python()
        if isinstance(number, (int, float)):
            return number
    raise FilterError(f"not a number: {value!r}")


def _orderable_string(value) -> str | None:
    """The string value usable in ordering comparisons: plain or
    xsd:string literals and computed strings only (SPARQL §11.3 operator
    table) — URIs and other datatypes are not orderable."""
    if isinstance(value, str):
        return value
    if isinstance(value, Literal):
        from ..rdf.terms import XSD_STRING

        if value.lang is None and value.datatype in (None, XSD_STRING):
            return value.value
    return None


def _compare(op: str, left, right) -> bool:
    # Numeric comparison when both sides are numeric.
    try:
        ln, rn = _numeric(left), _numeric(right)
    except FilterError:
        ln = rn = None
    if ln is not None and rn is not None:
        return _apply(op, ln, rn)

    if op in ("=", "!="):
        equal = _term_equal(left, right)
        return equal if op == "=" else not equal

    # Ordering comparisons: defined only for string-comparable operands.
    ls, rs = _orderable_string(left), _orderable_string(right)
    if ls is None or rs is None:
        raise FilterError(f"{op} not defined for {left!r}, {right!r}")
    return _apply(op, ls, rs)


def _apply(op: str, left, right) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise FilterError(f"unknown comparison {op!r}")


def _term_equal(left, right) -> bool:
    if isinstance(left, (URI, BNode, Literal)) and isinstance(
        right, (URI, BNode, Literal)
    ):
        return term_key(left) == term_key(right)
    return _string_value(left) == _string_value(right)


def _string_value(value) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, Literal):
        return value.value
    if isinstance(value, URI):
        return value.value
    if isinstance(value, BNode):
        return f"_:{value.label}"
    raise FilterError(f"no string value for {value!r}")


def evaluate_filter(expr: FilterExpr, bindings: Bindings):
    """Evaluate a FILTER expression; raises FilterError on type errors."""
    if isinstance(expr, FVar):
        value = bindings.get(expr.name)
        if value is None:
            raise FilterError(f"unbound variable ?{expr.name}")
        return value
    if isinstance(expr, FConst):
        return expr.term
    if isinstance(expr, FBound):
        return expr.var in bindings
    if isinstance(expr, FUnary):
        if expr.op == "!":
            return not _ebv(evaluate_filter(expr.operand, bindings))
        if expr.op == "-":
            return -_numeric(evaluate_filter(expr.operand, bindings))
        raise FilterError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, FBinary):
        return _evaluate_binary(expr, bindings)
    if isinstance(expr, FRegex):
        text = _string_value(evaluate_filter(expr.operand, bindings))
        flags = re.IGNORECASE if "i" in expr.flags else 0
        return re.search(expr.pattern, text, flags) is not None
    if isinstance(expr, FCall):
        return _evaluate_call(expr, bindings)
    raise FilterError(f"cannot evaluate {expr!r}")


def _evaluate_binary(expr: FBinary, bindings: Bindings):
    op = expr.op
    if op in ("&&", "||"):
        # SPARQL three-valued logic with errors.
        left = _try_ebv(expr.left, bindings)
        right = _try_ebv(expr.right, bindings)
        if op == "&&":
            if left is False or right is False:
                return False
            if left is None or right is None:
                raise FilterError("error in &&")
            return True
        if left is True or right is True:
            return True
        if left is None or right is None:
            raise FilterError("error in ||")
        return False
    if op in ("=", "!=", "<", "<=", ">", ">="):
        return _compare(
            op,
            evaluate_filter(expr.left, bindings),
            evaluate_filter(expr.right, bindings),
        )
    if op in ("+", "-", "*", "/"):
        left = _numeric(evaluate_filter(expr.left, bindings))
        right = _numeric(evaluate_filter(expr.right, bindings))
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if right == 0:
            raise FilterError("division by zero")
        return left / right
    raise FilterError(f"unknown operator {op!r}")


def _try_ebv(expr: FilterExpr, bindings: Bindings) -> bool | None:
    try:
        return _ebv(evaluate_filter(expr, bindings))
    except FilterError:
        return None


def _evaluate_call(expr: FCall, bindings: Bindings):
    name = expr.name.upper()
    if name == "STR":
        return _string_value(evaluate_filter(expr.args[0], bindings))
    if name == "LANG":
        value = evaluate_filter(expr.args[0], bindings)
        if isinstance(value, Literal):
            return value.lang or ""
        raise FilterError("LANG on non-literal")
    if name == "DATATYPE":
        value = evaluate_filter(expr.args[0], bindings)
        if isinstance(value, Literal):
            from ..rdf.terms import XSD_STRING

            return URI(value.datatype or XSD_STRING)
        raise FilterError("DATATYPE on non-literal")
    if name in ("ISURI", "ISIRI"):
        return isinstance(evaluate_filter(expr.args[0], bindings), URI)
    if name == "ISLITERAL":
        return isinstance(evaluate_filter(expr.args[0], bindings), Literal)
    if name == "ISBLANK":
        return isinstance(evaluate_filter(expr.args[0], bindings), BNode)
    if name == "SAMETERM":
        left = evaluate_filter(expr.args[0], bindings)
        right = evaluate_filter(expr.args[1], bindings)
        both_terms = isinstance(left, (URI, BNode, Literal)) and isinstance(
            right, (URI, BNode, Literal)
        )
        return term_key(left) == term_key(right) if both_terms else False
    if name == "LANGMATCHES":
        lang = _string_value(evaluate_filter(expr.args[0], bindings)).lower()
        pattern = _string_value(evaluate_filter(expr.args[1], bindings)).lower()
        if pattern == "*":
            return bool(lang)
        return lang == pattern or lang.startswith(pattern + "-")
    raise FilterError(f"unknown builtin {expr.name!r}")


# ---------------------------------------------------------------------------
# Query evaluation
# ---------------------------------------------------------------------------


def _sort_solutions(
    solutions: list[Bindings], query: SelectQuery
) -> list[Bindings]:
    if not query.order_by:
        return solutions
    result = list(solutions)
    for condition in reversed(query.order_by):
        if not isinstance(condition.expr, FVar):
            raise ValueError("ORDER BY supports plain variables only")
        variable = condition.expr.name

        def key(bindings: Bindings, variable=variable):
            value = bindings.get(variable)
            return (0, "") if value is None else (1, term_key(value))

        result.sort(key=key, reverse=not condition.ascending)
    return result


def evaluate_select(graph: Graph, query: SelectQuery) -> SelectResult:
    """Evaluate a SELECT query against a graph (the oracle entry point)."""
    solutions = evaluate_group(graph, query.where, [{}])
    solutions = _sort_solutions(solutions, query)
    variables = query.projected_variables()
    rows = project_rows(variables, solutions)
    if query.distinct or query.reduced:
        rows = list(dict.fromkeys(rows))
    start = query.offset or 0
    if query.limit is not None:
        rows = rows[start:start + query.limit]
    elif start:
        rows = rows[start:]
    return SelectResult(variables, rows)


def evaluate_ask(graph: Graph, query: AskQuery) -> bool:
    """Evaluate an ASK query: does the pattern have any solution?"""
    return bool(evaluate_group(graph, query.where, [{}]))


def query_graph(graph: Graph, sparql: str) -> SelectResult | bool:
    """Parse and evaluate a SPARQL query against a graph (the oracle API)."""
    from .algebra import normalize

    query = parse_sparql(sparql)
    if isinstance(query, AskQuery):
        return evaluate_ask(graph, query)
    return evaluate_select(graph, normalize(query))
