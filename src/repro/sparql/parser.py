"""A recursive-descent parser for the SPARQL 1.0 subset of the paper's
workloads: SELECT/ASK, group graph patterns, UNION, OPTIONAL, FILTER,
predicate-object lists, solution modifiers.
"""

from __future__ import annotations

import re

from ..rdf.terms import (
    BNode,
    Literal,
    Term,
    URI,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
)
from ..rdf.namespaces import RDF
from .ast import (
    AskQuery,
    FBinary,
    FBound,
    FCall,
    FConst,
    FilterExpr,
    FRegex,
    FUnary,
    FVar,
    GroupPattern,
    OptionalPattern,
    OrderCondition,
    SelectQuery,
    TriplePattern,
    UnionPattern,
    Var,
)


class SparqlSyntaxError(ValueError):
    """Malformed SPARQL input."""


_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<comment>\#[^\n]*)
      | (?P<iri><[^<>\s]*>)
      | (?P<var>[?$][A-Za-z_][A-Za-z0-9_]*)
      | (?P<string>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
      | (?P<langtag>@[A-Za-z]+(?:-[A-Za-z0-9]+)*)
      | (?P<dtype>\^\^)
      | (?P<number>[+-]?(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?))
      | (?P<bnode>_:[A-Za-z0-9_]+)
      | (?P<pname>[A-Za-z_][A-Za-z0-9_.-]*?:[A-Za-z0-9_.-]*|:[A-Za-z0-9_.-]*)
      | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
      | (?P<op>&&|\|\||!=|<=|>=|[{}()\[\].;,=<>!*/+^|-])
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT", "ASK", "WHERE", "DISTINCT", "REDUCED", "PREFIX", "BASE",
    "UNION", "OPTIONAL", "FILTER", "ORDER", "BY", "ASC", "DESC",
    "LIMIT", "OFFSET", "A", "TRUE", "FALSE",
}

_BUILTINS = {
    "BOUND", "REGEX", "STR", "LANG", "DATATYPE", "LANGMATCHES",
    "ISURI", "ISIRI", "ISLITERAL", "ISBLANK", "SAMETERM",
}

_STRING_ESCAPES = {
    "\\n": "\n", "\\r": "\r", "\\t": "\t",
    '\\"': '"', "\\'": "'", "\\\\": "\\",
}


class _Token:
    __slots__ = ("kind", "text")

    def __init__(self, kind: str, text: str) -> None:
        self.kind = kind
        self.text = text

    def __repr__(self) -> str:
        return f"{self.kind}:{self.text}"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match or match.end() == position:
            if text[position:].strip() == "":
                break
            raise SparqlSyntaxError(
                f"cannot tokenize SPARQL at: {text[position:position + 40]!r}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "comment":
            continue
        value = match.group(kind)
        if kind == "name":
            if value.upper() in _KEYWORDS:
                tokens.append(_Token("KEYWORD", value.upper()))
            else:
                tokens.append(_Token("NAME", value))
        else:
            tokens.append(_Token(kind.upper(), value))
    tokens.append(_Token("EOF", ""))
    return tokens


def _unescape_string(raw: str) -> str:
    body = raw[1:-1]
    return re.sub(
        r"\\[nrt\"'\\]", lambda m: _STRING_ESCAPES[m.group(0)], body
    )


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.position = 0
        self.prefixes: dict[str, str] = {}
        self.base: str | None = None
        self._bnode_counter = 0

    # -------------------------------------------------------------- cursor

    @property
    def current(self) -> _Token:
        return self.tokens[self.position]

    def advance(self) -> _Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def at(self, kind: str, text: str | None = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: str | None = None) -> _Token | None:
        if self.at(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.accept(kind, text)
        if token is None:
            expected = text or kind
            raise SparqlSyntaxError(f"expected {expected}, found {self.current}")
        return token

    # --------------------------------------------------------------- query

    def parse_query(self) -> SelectQuery | AskQuery:
        self._parse_prologue()
        if self.at("KEYWORD", "ASK"):
            self.advance()
            where = self._parse_group()
            query: SelectQuery | AskQuery = AskQuery(where)
        else:
            query = self._parse_select()
        if self.current.kind != "EOF":
            raise SparqlSyntaxError(f"trailing tokens: {self.current}")
        return query

    def _parse_prologue(self) -> None:
        while True:
            if self.accept("KEYWORD", "PREFIX"):
                pname = self.expect("PNAME").text
                prefix = pname[:-1] if pname.endswith(":") else pname.split(":", 1)[0]
                iri = self.expect("IRI").text[1:-1]
                self.prefixes[prefix] = iri
            elif self.accept("KEYWORD", "BASE"):
                self.base = self.expect("IRI").text[1:-1]
            else:
                return

    def _parse_select(self) -> SelectQuery:
        self.expect("KEYWORD", "SELECT")
        distinct = bool(self.accept("KEYWORD", "DISTINCT"))
        reduced = bool(self.accept("KEYWORD", "REDUCED"))
        variables: list[str] | None
        if self.accept("OP", "*"):
            variables = None
        else:
            variables = []
            while self.current.kind == "VAR":
                variables.append(self.advance().text[1:])
            if not variables:
                raise SparqlSyntaxError("SELECT needs variables or *")
        self.accept("KEYWORD", "WHERE")
        where = self._parse_group()
        order_by, limit, offset = self._parse_solution_modifiers()
        return SelectQuery(
            variables=variables,
            where=where,
            distinct=distinct,
            reduced=reduced,
            order_by=order_by,
            limit=limit,
            offset=offset,
        )

    def _parse_solution_modifiers(
        self,
    ) -> tuple[list[OrderCondition], int | None, int | None]:
        order_by: list[OrderCondition] = []
        if self.accept("KEYWORD", "ORDER"):
            self.expect("KEYWORD", "BY")
            while True:
                condition = self._parse_order_condition()
                if condition is None:
                    break
                order_by.append(condition)
            if not order_by:
                raise SparqlSyntaxError("ORDER BY needs at least one condition")
        limit = offset = None
        while self.at("KEYWORD", "LIMIT") or self.at("KEYWORD", "OFFSET"):
            keyword = self.advance().text
            number = self.expect("NUMBER").text
            try:
                count = int(number)
            except ValueError:
                raise SparqlSyntaxError(
                    f"{keyword} requires an integer, found {number!r}"
                ) from None
            if count < 0:
                raise SparqlSyntaxError(f"{keyword} must be non-negative")
            if keyword == "LIMIT":
                limit = count
            else:
                offset = count
        return order_by, limit, offset

    def _parse_order_condition(self) -> OrderCondition | None:
        if self.accept("KEYWORD", "ASC"):
            self.expect("OP", "(")
            expr = self._parse_expression()
            self.expect("OP", ")")
            return OrderCondition(expr, True)
        if self.accept("KEYWORD", "DESC"):
            self.expect("OP", "(")
            expr = self._parse_expression()
            self.expect("OP", ")")
            return OrderCondition(expr, False)
        if self.current.kind == "VAR":
            return OrderCondition(FVar(self.advance().text[1:]), True)
        if self.at("OP", "("):
            self.advance()
            expr = self._parse_expression()
            self.expect("OP", ")")
            return OrderCondition(expr, True)
        return None

    # ------------------------------------------------------------ patterns

    def _parse_group(self) -> GroupPattern:
        self.expect("OP", "{")
        group = GroupPattern()
        while not self.at("OP", "}"):
            if self.accept("KEYWORD", "OPTIONAL"):
                group.elements.append(OptionalPattern(self._parse_group()))
            elif self.accept("KEYWORD", "FILTER"):
                group.filters.append(self._parse_constraint())
            elif self.at("OP", "{"):
                branch = self._parse_group()
                branches = [branch]
                while self.accept("KEYWORD", "UNION"):
                    branches.append(self._parse_group())
                if len(branches) == 1:
                    group.elements.append(branches[0])
                else:
                    group.elements.append(UnionPattern(branches))
            else:
                group.elements.extend(self._parse_triples_same_subject())
            self.accept("OP", ".")
        self.expect("OP", "}")
        return group

    def _parse_triples_same_subject(self) -> list:
        subject = self._parse_var_or_term()
        elements: list = []
        while True:
            path = self._parse_path()
            while True:
                obj = self._parse_var_or_term()
                elements.extend(self._expand_path(subject, path, obj))
                if not self.accept("OP", ","):
                    break
            if not self.accept("OP", ";"):
                break
            if self.at("OP", ".") or self.at("OP", "}"):
                break  # dangling semicolon
        return elements

    # ---------------------------------------------------- property paths
    #
    # SPARQL 1.1-lite: sequence (/), alternation (|) and inverse (^) paths
    # desugar at parse time into plain triple patterns with fresh internal
    # variables (hidden from SELECT *), so every engine supports them.
    # Arbitrary-length paths (* + ?) are not supported.

    def _parse_path(self):
        branches = [self._parse_path_sequence()]
        while self.accept("OP", "|"):
            branches.append(self._parse_path_sequence())
        if len(branches) == 1:
            return branches[0]
        return ("alt", branches)

    def _parse_path_sequence(self):
        steps = [self._parse_path_primary()]
        while self.accept("OP", "/"):
            steps.append(self._parse_path_primary())
        if len(steps) == 1:
            return steps[0]
        return ("seq", steps)

    def _parse_path_primary(self):
        if self.accept("OP", "^"):
            return ("inv", self._parse_path_primary())
        if self.accept("OP", "("):
            path = self._parse_path()
            self.expect("OP", ")")
            self._reject_path_modifiers()
            return path
        if self.accept("KEYWORD", "A"):
            verb = RDF.type
        elif self.current.kind == "VAR":
            verb = Var(self.advance().text[1:])
        else:
            verb = self._parse_iri()
        self._reject_path_modifiers()
        return verb

    def _reject_path_modifiers(self) -> None:
        if self.at("OP", "*") or self.at("OP", "+"):
            raise SparqlSyntaxError(
                "arbitrary-length property paths (* / +) are not supported"
            )

    def _fresh_path_var(self) -> Var:
        self._bnode_counter += 1
        return Var(f"__path{self._bnode_counter}")

    def _expand_path(self, subject, path, obj) -> list:
        if isinstance(path, (URI, Var)):
            return [TriplePattern(subject, path, obj)]
        kind = path[0]
        if kind == "inv":
            return self._expand_path(obj, path[1], subject)
        if kind == "seq":
            elements: list = []
            current = subject
            steps = path[1]
            for index, step in enumerate(steps):
                target = obj if index == len(steps) - 1 else self._fresh_path_var()
                elements.extend(self._expand_path(current, step, target))
                current = target
            return elements
        if kind == "alt":
            branches = [
                GroupPattern(self._expand_path(subject, branch, obj))
                for branch in path[1]
            ]
            return [UnionPattern(branches)]
        raise SparqlSyntaxError(f"unsupported property path {path!r}")

    def _parse_var_or_term(self):
        token = self.current
        if token.kind == "VAR":
            self.advance()
            return Var(token.text[1:])
        if token.kind == "BNODE":
            self.advance()
            return BNode(token.text[2:])
        if token.kind == "OP" and token.text == "[":
            self.advance()
            self.expect("OP", "]")
            self._bnode_counter += 1
            return Var(f"__anon{self._bnode_counter}")
        return self._parse_term()

    def _parse_term(self) -> Term:
        token = self.current
        if token.kind in ("IRI", "PNAME"):
            return self._parse_iri()
        if token.kind == "STRING":
            self.advance()
            value = _unescape_string(token.text)
            if self.current.kind == "LANGTAG":
                lang = self.advance().text[1:]
                return Literal(value, lang=lang)
            if self.accept("DTYPE"):
                datatype = self._parse_iri()
                return Literal(value, datatype=datatype.value)
            return Literal(value)
        if token.kind == "NUMBER":
            self.advance()
            return _numeric_literal(token.text)
        if token.kind == "KEYWORD" and token.text in ("TRUE", "FALSE"):
            self.advance()
            return Literal(token.text.lower(), datatype=XSD_BOOLEAN)
        raise SparqlSyntaxError(f"expected an RDF term, found {token}")

    def _parse_iri(self) -> URI:
        token = self.current
        if token.kind == "IRI":
            self.advance()
            iri = token.text[1:-1]
            if self.base and not re.match(r"^[A-Za-z][A-Za-z0-9+.-]*:", iri):
                iri = self.base + iri
            return URI(iri)
        if token.kind == "PNAME":
            self.advance()
            prefix, _, local = token.text.partition(":")
            if prefix not in self.prefixes:
                raise SparqlSyntaxError(f"undeclared prefix {prefix!r}:")
            return URI(self.prefixes[prefix] + local)
        raise SparqlSyntaxError(f"expected IRI, found {token}")

    # ------------------------------------------------------------- filters

    def _parse_constraint(self) -> FilterExpr:
        if self.at("OP", "("):
            self.advance()
            expr = self._parse_expression()
            self.expect("OP", ")")
            return expr
        return self._parse_builtin()

    def _parse_expression(self) -> FilterExpr:
        return self._parse_or_expression()

    def _parse_or_expression(self) -> FilterExpr:
        expr = self._parse_and_expression()
        while self.accept("OP", "||"):
            expr = FBinary("||", expr, self._parse_and_expression())
        return expr

    def _parse_and_expression(self) -> FilterExpr:
        expr = self._parse_relational()
        while self.accept("OP", "&&"):
            expr = FBinary("&&", expr, self._parse_relational())
        return expr

    def _parse_relational(self) -> FilterExpr:
        expr = self._parse_additive()
        for op in ("<=", ">=", "!=", "=", "<", ">"):
            if self.at("OP", op):
                self.advance()
                return FBinary(op, expr, self._parse_additive())
        return expr

    def _parse_additive(self) -> FilterExpr:
        expr = self._parse_multiplicative()
        while self.at("OP", "+") or self.at("OP", "-"):
            op = self.advance().text
            expr = FBinary(op, expr, self._parse_multiplicative())
        return expr

    def _parse_multiplicative(self) -> FilterExpr:
        expr = self._parse_unary()
        while self.at("OP", "*") or self.at("OP", "/"):
            op = self.advance().text
            expr = FBinary(op, expr, self._parse_unary())
        return expr

    def _parse_unary(self) -> FilterExpr:
        if self.accept("OP", "!"):
            return FUnary("!", self._parse_unary())
        if self.accept("OP", "-"):
            return FUnary("-", self._parse_unary())
        self.accept("OP", "+")
        return self._parse_primary()

    def _parse_primary(self) -> FilterExpr:
        token = self.current
        if token.kind == "OP" and token.text == "(":
            self.advance()
            expr = self._parse_expression()
            self.expect("OP", ")")
            return expr
        if token.kind == "VAR":
            self.advance()
            return FVar(token.text[1:])
        if token.kind == "NAME" and token.text.upper() in _BUILTINS:
            return self._parse_builtin()
        if token.kind in ("IRI", "PNAME", "STRING", "NUMBER") or (
            token.kind == "KEYWORD" and token.text in ("TRUE", "FALSE")
        ):
            return FConst(self._parse_term())
        raise SparqlSyntaxError(f"unexpected token in FILTER expression: {token}")

    def _parse_builtin(self) -> FilterExpr:
        token = self.current
        if token.kind != "NAME" or token.text.upper() not in _BUILTINS:
            raise SparqlSyntaxError(f"expected a builtin call, found {token}")
        name = self.advance().text.upper()
        self.expect("OP", "(")
        if name == "BOUND":
            var = self.expect("VAR").text[1:]
            self.expect("OP", ")")
            return FBound(var)
        if name == "REGEX":
            operand = self._parse_expression()
            self.expect("OP", ",")
            pattern_term = self._parse_expression()
            flags = ""
            if self.accept("OP", ","):
                flags_term = self._parse_expression()
                if isinstance(flags_term, FConst):
                    flags = flags_term.term.value
            self.expect("OP", ")")
            if not isinstance(pattern_term, FConst):
                raise SparqlSyntaxError("REGEX pattern must be a literal")
            return FRegex(operand, pattern_term.term.value, flags)
        args = []
        if not self.at("OP", ")"):
            args.append(self._parse_expression())
            while self.accept("OP", ","):
                args.append(self._parse_expression())
        self.expect("OP", ")")
        return FCall(name, tuple(args))


def _numeric_literal(text: str) -> Literal:
    if re.fullmatch(r"[+-]?\d+", text):
        return Literal(text, datatype=XSD_INTEGER)
    if "e" in text.lower():
        return Literal(text, datatype=XSD_DOUBLE)
    return Literal(text, datatype=XSD_DECIMAL)


def parse_sparql(text: str) -> SelectQuery | AskQuery:
    """Parse a SPARQL query string into the query model."""
    return _Parser(text).parse_query()
