"""SPARQL substrate: parser, algebra, reference evaluator, optimizer,
translator, and the end-to-end engine."""

from .algebra import PatternTree, normalize
from .ast import (
    AskQuery,
    GroupPattern,
    OptionalPattern,
    OrderCondition,
    SelectQuery,
    TriplePattern,
    UnionPattern,
    Var,
)
from .engine import EngineConfig, SparqlEngine
from .parser import SparqlSyntaxError, parse_sparql
from .reference import evaluate_ask, evaluate_select, query_graph
from .results import SelectResult
from .serialize import query_to_sparql

__all__ = [
    "AskQuery",
    "EngineConfig",
    "GroupPattern",
    "OptionalPattern",
    "OrderCondition",
    "PatternTree",
    "SelectQuery",
    "SelectResult",
    "SparqlEngine",
    "SparqlSyntaxError",
    "TriplePattern",
    "UnionPattern",
    "Var",
    "evaluate_ask",
    "evaluate_select",
    "normalize",
    "parse_sparql",
    "query_graph",
    "query_to_sparql",
]
