"""The query compilation (plan) cache.

The paper's contribution is the compile pipeline — parse tree → data flow
graph → execution tree → merged plan → SQL — and the repo used to rerun
every stage for every call. Production SPARQL engines (and the DB2 lineage
this paper comes from) reuse compiled plans for repeated query text; this
module supplies that reuse layer.

Keying. An entry is addressed by ``(canonicalized SPARQL text, EngineConfig
fingerprint)``. Canonicalization is *lexical* — comments dropped, whitespace
runs collapsed outside quoted strings and ``<IRI>`` brackets — so cache hits
never require parsing (skipping the parser is part of the point), yet
re-formatted copies of one query share a slot. Distinct token streams always
canonicalize to distinct keys: whitespace runs collapse to a single space
but are never deleted outright.

Invalidation. Every entry records the *stats epoch* it was compiled under.
:class:`~repro.core.stats.DatasetStatistics` carries a monotonically
increasing ``epoch`` that store mutations (insert / delete / bulk load)
bump; a lookup whose entry was compiled under an older epoch discards the
entry and reports an invalidation, so plans chosen from stale cardinality
estimates never outlive the data change that made them stale.

Each lookup is classified as exactly one of hit / miss / invalidation.

Thread safety. Snapshot readers compile against *their* pinned epoch while
writers bump the live one, so the cache is shared across threads: one lock
guards the entry map and every counter mutation, which keeps
``hits + misses + invalidations == lookups`` exact under concurrency. An
entry newer than the probing epoch is a plain miss (the prober is a
snapshot pinned in the past — the entry is still valid for live readers),
and ``store`` refuses to replace a newer entry with an older plan.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

DEFAULT_CACHE_SIZE = 128

#: Mirrors the SPARQL tokenizer's IRI production ``<[^<>\s]*>`` so that a
#: ``#fragment`` inside an IRI is never mistaken for a comment.
_IRI_RE = re.compile(r"<[^<>\s]*>")

_WHITESPACE = " \t\r\n\f\v"


def canonicalize_sparql(text: str) -> str:
    """Lexically canonicalize SPARQL text for cache keying.

    Comments become a single space, whitespace runs collapse to one space,
    and quoted strings / ``<IRI>`` tokens are copied verbatim. The result is
    a pure text key — no parsing — and imprecision here can only split or
    merge *lexically equivalent* keys, never change query semantics.
    """
    out: list[str] = []
    pending_space = False
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch in _WHITESPACE:
            pending_space = True
            i += 1
            continue
        if ch == "#":
            while i < n and text[i] != "\n":
                i += 1
            pending_space = True
            continue
        if pending_space and out:
            out.append(" ")
        pending_space = False
        if ch in "\"'":
            quote = ch
            out.append(ch)
            i += 1
            while i < n:
                c = text[i]
                out.append(c)
                i += 1
                if c == "\\" and i < n:  # escaped char, even a quote
                    out.append(text[i])
                    i += 1
                    continue
                if c == quote:
                    break
            continue
        if ch == "<":
            match = _IRI_RE.match(text, i)
            if match:
                out.append(match.group(0))
                i = match.end()
                continue
        out.append(ch)
        i += 1
    return "".join(out)


@dataclass(frozen=True)
class CachedPlan:
    """One compiled query: the translated SQL AST plus decode metadata.

    The SQL AST is a tree of frozen dataclasses, so sharing one instance
    across executions is safe. ``variables`` is the projection order the
    result decoder needs (the engine's only other per-query state).
    """

    sql: Any  # repro.relational.ast.Query
    variables: tuple[str, ...]
    epoch: int
    compile_seconds: float = 0.0
    #: which planner produced the join order ("hybrid", "naive", "cost", or
    #: "cost-fallback" when low confidence reverted to the heuristic)
    planner: str = ""


@dataclass
class CacheInfo:
    """A snapshot of cache effectiveness counters and compile timings."""

    hits: int
    misses: int
    invalidations: int
    evictions: int
    size: int
    maxsize: int
    #: cumulative seconds spent in each compile stage on cache misses
    compile_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.invalidations

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        """One-line rendering for CLIs and benchmark reports."""
        saved = self.hits * (
            self.compile_seconds.get("total", 0.0) / max(1, self.misses + self.invalidations)
        )
        return (
            f"plan cache: {self.hits} hits / {self.misses} misses"
            f" / {self.invalidations} invalidations"
            f" ({self.hit_rate * 100:.0f}% hit rate, {self.size}/{self.maxsize}"
            f" entries, ~{saved * 1000:.1f} ms compile time saved)"
        )


_STAGES = ("parse", "plan", "translate", "total")


class QueryCache:
    """A bounded LRU mapping (canonical text, config fingerprint) → plan.

    ``maxsize <= 0`` disables the cache entirely (``enabled`` is False and
    the engine bypasses it). Entries compiled under an older stats epoch are
    dropped on lookup and counted as invalidations.
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE) -> None:
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple[str, tuple], CachedPlan] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        self.timings: dict[str, float] = {stage: 0.0 for stage in _STAGES}

    @property
    def enabled(self) -> bool:
        return self.maxsize > 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------- lookups

    def lookup(
        self, text: str, fingerprint: tuple, epoch: int
    ) -> CachedPlan | None:
        return self.probe(text, fingerprint, epoch)[0]

    def probe(
        self, text: str, fingerprint: tuple, epoch: int
    ) -> tuple[CachedPlan | None, str]:
        """Like :meth:`lookup`, also naming the outcome — ``"hit"``,
        ``"miss"``, or ``"invalidated"`` — for tracing spans."""
        key = (text, fingerprint)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None, "miss"
            if entry.epoch < epoch:
                # Stale: compiled from cardinalities a later commit changed.
                del self._entries[key]
                self.invalidations += 1
                return None, "invalidated"
            if entry.epoch > epoch:
                # The prober is a snapshot pinned before this entry was
                # compiled. The entry is still the right plan for live
                # readers — miss without evicting it.
                self.misses += 1
                return None, "miss"
            self._entries.move_to_end(key)
            self.hits += 1
            return entry, "hit"

    def store(self, text: str, fingerprint: tuple, plan: CachedPlan) -> None:
        if not self.enabled:
            return
        key = (text, fingerprint)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None and existing.epoch > plan.epoch:
                return  # never clobber a newer plan with a snapshot's older one
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    # ----------------------------------------------------------- accounting

    def record_timings(self, **stage_seconds: float) -> None:
        with self._lock:
            for stage, seconds in stage_seconds.items():
                self.timings[stage] = self.timings.get(stage, 0.0) + seconds

    def clear(self) -> None:
        """Drop all entries (counters are kept; they describe the lifetime)."""
        with self._lock:
            self._entries.clear()

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(
                hits=self.hits,
                misses=self.misses,
                invalidations=self.invalidations,
                evictions=self.evictions,
                size=len(self._entries),
                maxsize=self.maxsize,
                compile_seconds=dict(self.timings),
            )
