"""Predicate-to-column mappings (paper Definitions 2.1 and 2.2).

A *predicate mapping* assigns each predicate URI to a column number in
``[0, m)``. A single mapping risks conflicts (two predicates of the same
entity landing on the same column), which force spill rows; *composition*
of several independent mappings gives each predicate an ordered list of
candidate columns, trading slightly costlier reads (CASE over candidates)
for far fewer spills — exactly the hash-composition scheme of Section 2.2
and Table 3.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping, Sequence


class PredicateMapper:
    """Base interface: predicate URI -> ordered candidate column numbers."""

    #: number of physical columns this mapper targets
    num_columns: int

    def columns_for(self, predicate: str) -> tuple[int, ...]:
        """Candidate columns in insertion-preference order (deduplicated)."""
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


def stable_hash(text: str, seed: int) -> int:
    """A deterministic string hash (Python's builtin ``hash`` is salted)."""
    digest = hashlib.blake2b(
        text.encode("utf-8"), digest_size=8, salt=seed.to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest, "little")


class HashMapper(PredicateMapper):
    """Definition 2.1 instantiated with a hash on the predicate URI."""

    def __init__(self, num_columns: int, seed: int = 0) -> None:
        if num_columns <= 0:
            raise ValueError("num_columns must be positive")
        self.num_columns = num_columns
        self.seed = seed

    def columns_for(self, predicate: str) -> tuple[int, ...]:
        return (stable_hash(predicate, self.seed) % self.num_columns,)

    def describe(self) -> str:
        return f"hash(m={self.num_columns}, seed={self.seed})"


class CompositeMapper(PredicateMapper):
    """Definition 2.2: ``f1 ⊕ f2 ⊕ ... ⊕ fn``.

    Candidates are the concatenation of each component's candidates with
    duplicates removed, preserving order — the insertion path tries them in
    sequence and reads must check all of them.
    """

    def __init__(self, mappers: Sequence[PredicateMapper]) -> None:
        if not mappers:
            raise ValueError("composition of zero mappings")
        self.mappers = list(mappers)
        self.num_columns = max(mapper.num_columns for mapper in mappers)

    def columns_for(self, predicate: str) -> tuple[int, ...]:
        seen: dict[int, None] = {}
        for mapper in self.mappers:
            for column in mapper.columns_for(predicate):
                seen.setdefault(column, None)
        return tuple(seen)

    def describe(self) -> str:
        return " ⊕ ".join(mapper.describe() for mapper in self.mappers)


def composed_hashes(num_columns: int, n: int = 2) -> CompositeMapper:
    """The paper's default when no data sample exists: ``h1 ⊕ ... ⊕ hn``."""
    return CompositeMapper([HashMapper(num_columns, seed) for seed in range(n)])


class ExplicitMapper(PredicateMapper):
    """A fixed predicate -> column table (used in tests and for Table 3)."""

    def __init__(self, assignment: Mapping[str, int], num_columns: int) -> None:
        self.assignment = dict(assignment)
        self.num_columns = num_columns

    def columns_for(self, predicate: str) -> tuple[int, ...]:
        if predicate not in self.assignment:
            raise KeyError(f"no column assigned to predicate {predicate!r}")
        return (self.assignment[predicate],)

    def describe(self) -> str:
        return f"explicit({len(self.assignment)} predicates)"


class ColoringMapper(PredicateMapper):
    """Section 2.2's ``c_{D⊗P} ⊕ h``: colored predicates get exactly one
    column; predicates outside the colored subset (or unseen at coloring
    time — the dynamic-data case) fall back to the composed hash mapping."""

    def __init__(
        self,
        assignment: Mapping[str, int],
        num_columns: int,
        fallback: PredicateMapper | None = None,
    ) -> None:
        self.assignment = dict(assignment)
        self.num_columns = num_columns
        self.fallback = fallback or composed_hashes(num_columns)

    def columns_for(self, predicate: str) -> tuple[int, ...]:
        color = self.assignment.get(predicate)
        if color is not None:
            return (color,)
        return self.fallback.columns_for(predicate)

    @property
    def covered(self) -> frozenset[str]:
        return frozenset(self.assignment)

    def describe(self) -> str:
        return (
            f"coloring({len(self.assignment)} predicates, "
            f"{self.colors_used()} colors) ⊕ {self.fallback.describe()}"
        )

    def colors_used(self) -> int:
        return len(set(self.assignment.values())) if self.assignment else 0


def columns_required(
    mapper: PredicateMapper, predicates: Iterable[str]
) -> int:
    """How many distinct physical columns a predicate set actually touches.

    This is the "DPH Columns" statistic of Table 4.
    """
    used: set[int] = set()
    for predicate in predicates:
        used.update(mapper.columns_for(predicate))
    return len(used)
