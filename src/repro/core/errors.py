"""Errors raised by the DB2RDF store layer."""

from __future__ import annotations


class StoreError(Exception):
    """Base class for RDF-store errors."""


class LoadError(StoreError):
    """Invalid data encountered during load (e.g. reserved lid prefix)."""


class UnsupportedQueryError(StoreError):
    """A SPARQL query outside the supported/translatable subset.

    The benchmark harness maps this to the paper's *unsupported*
    classification (Figure 15).
    """
