"""Snapshot reads and scheduling hooks for concurrent stores.

:class:`Snapshot` is the read side of the store's concurrency contract: it
pins a committed state — the backend's MVCC version (minirel) or a private
read connection (sqlite), the stats epoch, and the engine built from the
metadata as of acquisition — so queries against it are repeatable and never
observe a half-applied transaction, no matter what writers commit
concurrently. Writers serialize behind the store's writer lock; snapshot
acquisition takes the same lock briefly, which is what makes the
(version, epoch, engine) triple it captures consistent.

:class:`StoreHooks` exposes named callback points on the write and
snapshot paths. The deterministic interleaving tests script known-nasty
orderings by blocking threads inside these callbacks; a store with
``hooks`` unset pays a single attribute check per site.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from .observe import Tracer
from .resilience import Budget

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sparql.results import SelectResult
    from .store import RdfStore

HookCallback = Callable[..., None]


class SnapshotClosedError(RuntimeError):
    """Raised when querying a snapshot after :meth:`Snapshot.close`."""


class StoreHooks:
    """Named synchronous callback points on a store's critical paths.

    Fire points: ``txn.begin``, ``commit.wal``, ``commit.publish.before``,
    ``commit.publish.after``, ``rollback``, ``snapshot.acquire``,
    ``snapshot.release``, ``checkpoint`` (after a successful
    :meth:`~repro.core.store.RdfStore.checkpoint`), ``backup`` (after a
    verified :meth:`~repro.core.store.RdfStore.backup`). Callbacks
    registered under ``"*"`` receive every
    point. Callbacks run on the firing thread while it may hold the writer
    lock — a callback that blocks stalls that writer, which is exactly what
    the interleaving tests exploit.
    """

    def __init__(self) -> None:
        self._callbacks: dict[str, list[HookCallback]] = {}

    def on(self, point: str, callback: HookCallback) -> None:
        self._callbacks.setdefault(point, []).append(callback)

    def fire(self, point: str, **info: Any) -> None:
        for callback in self._callbacks.get(point, ()):
            callback(point, **info)
        for callback in self._callbacks.get("*", ()):
            callback(point, **info)


class Snapshot:
    """A pinned point-in-time read view of an :class:`RdfStore`.

    Handed out by :meth:`RdfStore.snapshot`; usable as a context manager.
    Queries through it are repeatable reads: every query sees exactly the
    committed store state at acquisition. Close promptly — an open
    snapshot makes concurrent writers retain superseded row versions
    (minirel) or holds a read transaction / page copy (sqlite).
    """

    def __init__(
        self,
        store: "RdfStore",
        handle: Any,
        epoch: int,
        engine: Any,
    ) -> None:
        self._store = store
        self._handle = handle
        #: the stats epoch this snapshot pins (plan-cache key component)
        self.epoch = epoch
        self._engine = engine
        self.closed = False

    # ---------------------------------------------------------------- reads

    def _check_open(self) -> None:
        if self.closed:
            raise SnapshotClosedError("snapshot is closed")

    def query(
        self,
        sparql,
        timeout: float | None = None,
        max_rows: int | None = None,
        max_intermediate_rows: int | None = None,
        profile: bool = False,
    ) -> "SelectResult":
        """Evaluate a SELECT against the pinned state (same guardrail and
        PROFILE semantics as :meth:`RdfStore.query`)."""
        self._check_open()
        budget = None
        if (
            timeout is not None
            or max_rows is not None
            or max_intermediate_rows is not None
        ):
            budget = Budget(
                timeout=timeout,
                max_rows=max_rows,
                max_intermediate_rows=max_intermediate_rows,
            )
        if not profile:
            return self._engine.query(
                sparql, budget=budget, snapshot=self._handle, epoch=self.epoch
            )
        tracer = Tracer("query", sinks=self._store.profile_sinks)
        with tracer.root:
            result = self._engine.query(
                sparql,
                tracer=tracer,
                budget=budget,
                snapshot=self._handle,
                epoch=self.epoch,
            )
        result.profile = tracer.finish()
        return result

    def ask(self, sparql: str, timeout: float | None = None) -> bool:
        """Evaluate an ASK against the pinned state."""
        return len(self.query(sparql, timeout=timeout)) > 0

    # ---------------------------------------------------------------- close

    def close(self) -> None:
        """Release the pin (idempotent). Retained row versions become
        collectable once the last snapshot pinning them closes."""
        if self.closed:
            return
        self.closed = True
        try:
            self._handle.release()
        finally:
            hooks = self._store.hooks
            if hooks is not None:
                hooks.fire("snapshot.release", epoch=self.epoch)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
