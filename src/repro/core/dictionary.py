"""RDF-term view of the relational string dictionary.

With ``MiniRelBackend(intern_terms=True)`` (the default), every TEXT value
the store writes — term keys in DPH/DS/RPH/RS cells, entry columns, lid
markers — is interned to a dense integer id by the relational layer's
:class:`~repro.relational.dictionary.StringDictionary`. Query execution
then compares, hashes, and joins ids; lexical forms reappear only when a
result set crosses the ``execute`` boundary (late materialization).

This module is the store-level facade over that mechanism: it translates
between :class:`~repro.rdf.terms.Term` objects and dictionary ids, and
reports sizing stats for benchmarks and debugging. Lookups never allocate
ids — only writes (loads, updates) intern new strings, which is what makes
id assignment deterministic per load order while keeping query results
load-order independent.
"""

from __future__ import annotations

from typing import Any

from ..rdf.terms import Term, term_from_key, term_key


class TermDictionary:
    """Read-only term-level access to a backend's string dictionary."""

    __slots__ = ("_strings",)

    def __init__(self, strings: Any) -> None:
        #: the relational StringDictionary (duck-typed: encode/lookup/decode)
        self._strings = strings

    def __len__(self) -> int:
        return len(self._strings)

    def id_for(self, term: Term) -> int | None:
        """The id interned for ``term``, or None if it never appeared.

        Never allocates: an unseen term provably matches nothing stored,
        which query planning exploits (an un-interned constant folds to an
        empty result without scanning).
        """
        return self._strings.lookup(term_key(term))

    def id_for_key(self, key: str) -> int | None:
        """The id for a raw term key string (see :func:`term_key`)."""
        return self._strings.lookup(key)

    def key_for(self, term_id: int) -> str:
        """The stored lexical key for an id (raises IndexError if unknown)."""
        return self._strings.decode(term_id)

    def term_for(self, term_id: int) -> Term:
        """Decode an id back to a :class:`Term` (late materialization)."""
        return term_from_key(self._strings.decode(term_id))

    def stats(self) -> dict[str, int]:
        """Sizing counters for benchmarks: entry count and lexicon bytes."""
        lexicon = getattr(self._strings, "_lexicon", None)
        total_bytes = (
            sum(len(text) for text in lexicon) if lexicon is not None else 0
        )
        return {"entries": len(self._strings), "lexicon_bytes": total_bytes}


def term_dictionary_of(backend: Any) -> TermDictionary | None:
    """The backend's term dictionary, or None when interning is off (or the
    backend has no dictionary at all, e.g. sqlite)."""
    db = getattr(backend, "db", None)
    strings = getattr(db, "dictionary", None)
    if strings is None:
        return None
    return TermDictionary(strings)
