"""The paper's contribution: the DB2RDF entity-oriented store."""

from . import sqlfunctions  # noqa: F401  (registers RDF_* SQL functions)
from .coloring import (
    ColoringResult,
    InterferenceGraph,
    build_interference_graph,
    color_graph_for_store,
    coloring_report,
    direct_interference_graph,
    greedy_color,
    reverse_interference_graph,
)
from .errors import LoadError, StoreError, UnsupportedQueryError
from .loader import Loader, LoadReport, SideMetadata, pack_entity
from .mapping import (
    ColoringMapper,
    CompositeMapper,
    ExplicitMapper,
    HashMapper,
    PredicateMapper,
    columns_required,
    composed_hashes,
    stable_hash,
)
from .observe import Span, Tracer, render_profile, summarize_operators
from .querycache import (
    CachedPlan,
    CacheInfo,
    QueryCache,
    canonicalize_sparql,
)
from .resilience import (
    Budget,
    BudgetExceededError,
    ChaosBackend,
    CircuitBreaker,
    CircuitOpenError,
    Fault,
    FaultPlan,
    GuardrailError,
    QueryTimeoutError,
    ResilientBackend,
    RetryPolicy,
    SimulatedCrash,
    TransientFaultError,
)
from .schema import DB2RDFSchema
from .stats import DatasetStatistics
from .store import RdfStore, StoreReport

__all__ = [
    "Budget",
    "BudgetExceededError",
    "CacheInfo",
    "CachedPlan",
    "ChaosBackend",
    "CircuitBreaker",
    "CircuitOpenError",
    "ColoringMapper",
    "ColoringResult",
    "CompositeMapper",
    "DB2RDFSchema",
    "DatasetStatistics",
    "QueryCache",
    "ExplicitMapper",
    "Fault",
    "FaultPlan",
    "GuardrailError",
    "HashMapper",
    "InterferenceGraph",
    "LoadError",
    "LoadReport",
    "Loader",
    "PredicateMapper",
    "QueryTimeoutError",
    "RdfStore",
    "ResilientBackend",
    "RetryPolicy",
    "SideMetadata",
    "SimulatedCrash",
    "Span",
    "StoreError",
    "StoreReport",
    "Tracer",
    "TransientFaultError",
    "UnsupportedQueryError",
    "build_interference_graph",
    "canonicalize_sparql",
    "color_graph_for_store",
    "coloring_report",
    "columns_required",
    "composed_hashes",
    "direct_interference_graph",
    "greedy_color",
    "pack_entity",
    "render_profile",
    "reverse_interference_graph",
    "stable_hash",
    "summarize_operators",
]
