"""The public DB2RDF store API.

``RdfStore`` owns a relational backend, the DPH/DS/RPH/RS schema, the
predicate mappers (hash composition by default, graph coloring via
:meth:`RdfStore.from_graph`), load-time metadata, dataset statistics, and a
SPARQL engine. Typical use::

    from repro import RdfStore
    store = RdfStore.from_graph(graph)           # color + bulk load
    result = store.query("SELECT ?x WHERE { ?x <p> ?y }")

"""

from __future__ import annotations

import os
import threading
from contextlib import nullcontext
from dataclasses import dataclass

from . import sqlfunctions  # noqa: F401  (registers RDF_* SQL functions)
from ..backends import Backend, MiniRelBackend
from ..rdf.graph import Graph
from ..rdf.terms import Triple, URI, term_from_key, term_key
from ..sparql.ast import SelectQuery
from ..sparql.engine import EngineConfig, SparqlEngine
from ..sparql.results import SelectResult
from ..sparql.translator.db2rdf import Db2RdfEmitter, StorageInfo
from ..update.apply import UpdateResult, apply_update
from ..update.ast import UpdateRequest
from ..update.errors import TransactionError
from ..update.parser import parse_update
from ..update.transaction import Transaction
from ..update.wal import CheckpointInfo, WalStatus, WriteAheadLog, inspect_wal
from .coloring import color_graph_for_store
from .concurrency import Snapshot, StoreHooks
from .loader import Loader, LoadReport, SideMetadata
from .mapping import PredicateMapper, composed_hashes
from .observe import Sink, Span, Tracer
from .querycache import CacheInfo, QueryCache
from .resilience import Budget
from .schema import DB2RDFSchema
from .stats import DatasetStatistics

DEFAULT_COLUMNS = 32
MAX_COLORING_COLUMNS = 100


@dataclass
class StoreReport:
    """Load statistics exposed for the Table 4 / §2.3 experiments,
    plus journal health when a WAL is attached."""

    triples: int
    direct: SideMetadata
    reverse: SideMetadata
    direct_columns: int
    reverse_columns: int
    #: journal records discarded during recovery (0 = clean history)
    wal_records_dropped: int = 0
    #: live journal segments (0 when no WAL is attached)
    wal_segments: int = 0
    #: last committed transaction id (0 when no WAL / empty journal)
    wal_last_txn: int = 0


class RdfStore:
    """An entity-oriented RDF store over a relational backend."""

    def __init__(
        self,
        backend: Backend | None = None,
        direct_columns: int = DEFAULT_COLUMNS,
        reverse_columns: int = DEFAULT_COLUMNS,
        direct_mapper: PredicateMapper | None = None,
        reverse_mapper: PredicateMapper | None = None,
        table_prefix: str = "",
        config: EngineConfig | None = None,
        wal_path: str | os.PathLike | None = None,
    ) -> None:
        self.backend = backend if backend is not None else MiniRelBackend()
        self.schema = DB2RDFSchema(direct_columns, reverse_columns, table_prefix)
        self.schema.create_all(self.backend)
        self.direct_mapper = direct_mapper or composed_hashes(direct_columns)
        self.reverse_mapper = reverse_mapper or composed_hashes(reverse_columns)
        self.loader = Loader(
            self.schema, self.backend, self.direct_mapper, self.reverse_mapper
        )
        self.direct_meta = SideMetadata()
        self.reverse_meta = SideMetadata()
        self.stats = DatasetStatistics()
        self.config = config or EngineConfig()
        # The plan cache outlives engine rebuilds (the engine is recreated
        # whenever storage metadata changes); stats-epoch keying invalidates
        # entries whose cost inputs went stale.
        self._plan_cache = QueryCache(self.config.cache_size)
        self._engine: SparqlEngine | None = None
        #: callables receiving every finished PROFILE trace (root Span)
        self.profile_sinks: list[Sink] = []
        #: the currently open transaction, if any (one at a time per store)
        self._txn: Transaction | None = None
        self._wal: WriteAheadLog | None = None
        #: writers (transactions, bulk loads, WAL replay) serialize here;
        #: snapshot acquisition takes it briefly to capture consistent state
        self._writer_lock = threading.Lock()
        self._writer_thread: int | None = None
        self._write_depth = 0
        #: optional scheduling/observability hook points (None = no cost)
        self.hooks: StoreHooks | None = None
        if wal_path is not None:
            self.attach_wal(wal_path)

    # --------------------------------------------------------- construction

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        backend: Backend | None = None,
        use_coloring: bool = True,
        max_columns: int = MAX_COLORING_COLUMNS,
        sample_fraction: float | None = None,
        table_prefix: str = "",
        config: EngineConfig | None = None,
        top_k_stats: int = 1000,
        wal_path: str | os.PathLike | None = None,
    ) -> "RdfStore":
        """Build a store sized and colored for ``graph``, then bulk load it.

        ``use_coloring=False`` gives the pure hash-composition layout;
        ``sample_fraction`` colors from a random entity sample (the §2.3
        incremental-coloring experiment).
        """
        if use_coloring and len(graph):
            direct_result, reverse_result = color_graph_for_store(
                graph, max_columns, sample_fraction=sample_fraction
            )
            direct_columns = max(direct_result.colors_used, 1)
            reverse_columns = max(reverse_result.colors_used, 1)
            direct_mapper: PredicateMapper = direct_result.to_mapper(
                direct_columns, composed_hashes(direct_columns)
            )
            reverse_mapper: PredicateMapper = reverse_result.to_mapper(
                reverse_columns, composed_hashes(reverse_columns)
            )
            store = cls(
                backend=backend,
                direct_columns=direct_columns,
                reverse_columns=reverse_columns,
                direct_mapper=direct_mapper,
                reverse_mapper=reverse_mapper,
                table_prefix=table_prefix,
                config=config,
            )
            store.coloring_direct = direct_result
            store.coloring_reverse = reverse_result
        else:
            store = cls(backend=backend, table_prefix=table_prefix, config=config)
        store.load_graph(graph, top_k_stats=top_k_stats)
        if wal_path is not None:
            # Attached after the bulk load so journalled incremental writes
            # replay on top of the loaded data.
            store.attach_wal(wal_path)
        return store

    # ------------------------------------------------------- writer bracket

    def _begin_write(self) -> None:
        """Enter the writer bracket (blocking on other threads' writers).

        Re-entrant per thread: a bulk load inside an open transaction nests
        and the outermost exit publishes. The backend's write bracket opens
        exactly once, at the outermost entry.
        """
        ident = threading.get_ident()
        if self._writer_thread == ident:
            self._write_depth += 1
            return
        self._writer_lock.acquire()
        self._writer_thread = ident
        self._write_depth = 1
        self.backend.begin_write()

    def _end_write(self, publish: bool) -> None:
        """Leave the writer bracket; the outermost exit publishes (or
        aborts) the backend bracket and releases the lock."""
        self._write_depth -= 1
        if self._write_depth:
            return
        try:
            if publish:
                self.backend.commit_write()
            else:
                self.backend.abort_write()
        finally:
            self._writer_thread = None
            self._writer_lock.release()

    # ------------------------------------------------------------ snapshots

    def snapshot(self) -> Snapshot:
        """Pin the current committed state for repeatable reads.

        The returned :class:`~repro.core.concurrency.Snapshot` answers
        queries against exactly this state while writers keep committing;
        close it (or use ``with``) to let superseded row versions be
        reclaimed. Acquisition takes the writer lock briefly, so it blocks
        while a transaction is mid-flight and never observes half a batch.
        Calling it from the thread that holds the writer lock would
        deadlock and raises :class:`TransactionError` instead.
        """
        if self._writer_thread == threading.get_ident():
            raise TransactionError(
                "cannot open a snapshot from inside a write (it would pin "
                "mid-transaction state)"
            )
        with self._writer_lock:
            handle = self.backend.open_snapshot()
            epoch = self.stats.epoch
            engine = self.engine  # built under the lock: consistent metadata
        snap = Snapshot(self, handle, epoch, engine)
        if self.hooks is not None:
            self.hooks.fire("snapshot.acquire", epoch=epoch)
        return snap

    # ----------------------------------------------------------- dictionary

    @property
    def term_dictionary(self):
        """The backend's term dictionary (see ``repro.core.dictionary``),
        or None when the backend stores plain strings."""
        from .dictionary import term_dictionary_of

        return term_dictionary_of(self.backend)

    # ---------------------------------------------------------------- load

    def load_graph(self, graph: Graph, top_k_stats: int = 1000) -> LoadReport:
        """Bulk load a graph (appends to any previously loaded data).

        Dataset statistics come out of the loader's shredding pass; on an
        appending load they are *merged* into the existing statistics (the
        old behaviour replaced them, silently forgetting the first batch),
        and the epoch bump invalidates plans costed under the old numbers.
        """
        self._begin_write()
        try:
            report = self.loader.bulk_load(graph, top_k_stats=top_k_stats)
            self.direct_meta.merge(report.direct)
            self.reverse_meta.merge(report.reverse)
            fresh = report.stats
            if fresh is None:  # pragma: no cover - loader always collects
                fresh = DatasetStatistics.from_graph(graph, top_k=top_k_stats)
            if self.stats.total_triples or self.stats.predicate_counts:
                fresh = self.stats.merged_with(fresh)
            fresh.epoch = self.stats.epoch + 1  # bulk load invalidates plans
            self.stats = fresh
            self._engine = None
        except BaseException:
            # Bulk load is not atomic (never was): keep whatever landed,
            # the bracket exists for writer mutual exclusion only.
            self._end_write(publish=True)
            raise
        self._end_write(publish=True)
        return report

    # --------------------------------------------------------------- writes

    def add(self, triple: Triple) -> bool:
        """Insert one triple incrementally (the dynamic-data path).

        Inside an open transaction this joins the batch; standalone it is
        its own single-write transaction (one epoch bump, journalled).
        Returns False for a duplicate no-op."""
        if self._txn is not None and self._writer_thread == threading.get_ident():
            return self._txn.add(triple)
        with self.transaction() as txn:
            return txn.add(triple)

    def remove(self, triple: Triple) -> bool:
        """Delete one triple; returns False when it was not stored.

        Transactional exactly like :meth:`add` — a failed standalone delete
        commits empty and leaves cached plans warm."""
        if self._txn is not None and self._writer_thread == threading.get_ident():
            return self._txn.remove(triple)
        with self.transaction() as txn:
            return txn.remove(triple)

    def transaction(self) -> Transaction:
        """Open an atomic write batch (one at a time per store).

        Inside the batch every ``add``/``remove`` is visible to this
        writer's queries immediately — but never to concurrent snapshot
        readers — and the statistics epoch (with it plan-cache
        invalidation) moves only at commit, once. Rollback restores the
        pre-transaction state without touching the epoch.

        Writers serialize: opening a transaction while another thread's is
        in flight blocks until that one commits or rolls back; a second
        open on the *same* thread raises :class:`TransactionError` as
        before (blocking would self-deadlock)."""
        if self._txn is not None and self._writer_thread == threading.get_ident():
            raise TransactionError(
                "a transaction is already open on this store"
            )
        self._begin_write()
        if self._txn is not None:  # pragma: no cover - defensive
            self._end_write(publish=False)
            raise TransactionError("a transaction is already open on this store")
        txn = Transaction(self)
        self._txn = txn
        if self.hooks is not None:
            self.hooks.fire("txn.begin")
        return txn

    def update(self, sparql, profile: bool = False) -> UpdateResult:
        """Execute a SPARQL Update request (text or a parsed
        :class:`~repro.update.ast.UpdateRequest`).

        The whole request runs atomically: in the caller's open
        transaction if there is one (which then controls commit), else in
        its own. WHERE clauses compile through the regular query pipeline
        against the in-transaction state. With ``profile=True`` the parse,
        per-operation apply, and commit stages are traced and the finished
        trace is attached as ``result.profile``."""
        if not profile:
            return self._run_update(sparql, None)
        tracer = Tracer("update", sinks=self.profile_sinks)
        with tracer.root:
            result = self._run_update(sparql, tracer)
        result.profile = tracer.finish()
        return result

    def _run_update(self, sparql, tracer: Tracer | None) -> UpdateResult:
        def stage(name: str):
            return tracer.span(name) if tracer is not None else nullcontext()

        if isinstance(sparql, UpdateRequest):
            request = sparql
        else:
            with stage("parse"):
                request = parse_update(sparql)
        if self._txn is not None and self._writer_thread == threading.get_ident():
            return apply_update(request, self._txn, tracer=tracer)
        txn = self.transaction()
        try:
            result = apply_update(request, txn, tracer=tracer)
        except BaseException:
            txn.rollback()
            raise
        with stage("commit"):
            txn.commit()
        return result

    def attach_wal(
        self,
        path: str | os.PathLike,
        sync: bool = False,
        max_record_bytes: int | None = None,
        durability: str | None = None,
        recovery: str = "strict",
        segment_max_bytes: int | None = None,
        checkpoint_every_bytes: int | None = None,
        checkpoint_every_records: int | None = None,
        group_fsync_interval: int = 1,
    ) -> int:
        """Attach a write-ahead journal and replay any committed records.

        Every transaction committed afterwards appends its net delta, so a
        crashed process can reopen the store (rebuilding or re-bulk-loading
        its base data first) and call this to recover every committed
        write. ``max_record_bytes`` bounds any single journal record during
        replay (a corrupt or hostile journal cannot balloon memory).

        ``durability`` (``"none"``/``"flush"``/``"fsync"``), ``recovery``
        (``"strict"``/``"tolerate_tail"``), ``segment_max_bytes`` and the
        ``checkpoint_every_*`` auto-checkpoint policy pass straight through
        to :class:`~repro.update.wal.WriteAheadLog`; ``sync=True`` is the
        legacy spelling of ``durability="fsync"``. Records the journal
        dropped during recovery are logged by the journal itself and
        surfaced as ``wal_records_dropped`` in :meth:`report`.

        Returns the number of replayed operations."""
        if self._txn is not None:
            raise TransactionError("cannot attach a journal mid-transaction")
        if self._wal is not None:
            raise TransactionError("a journal is already attached")
        kwargs: dict = {"sync": sync, "durability": durability,
                        "recovery": recovery,
                        "checkpoint_every_bytes": checkpoint_every_bytes,
                        "checkpoint_every_records": checkpoint_every_records,
                        "group_fsync_interval": group_fsync_interval}
        if max_record_bytes is not None:
            kwargs["max_record_bytes"] = max_record_bytes
        if segment_max_bytes is not None:
            kwargs["segment_max_bytes"] = segment_max_bytes
        wal = WriteAheadLog(path, **kwargs)
        replayed = 0
        self._begin_write()
        try:
            for _txn_id, ops in wal.replay():
                for tag, subject_key, predicate, object_key in ops:
                    triple = Triple(
                        term_from_key(subject_key),
                        URI(predicate),
                        term_from_key(object_key),
                    )
                    if tag == "+":
                        self._apply_add(triple)
                    else:
                        self._apply_remove(triple)
                    replayed += 1
        finally:
            # Publish even on a partial replay: recovery keeps whatever
            # records were intact (the journal truncated any tolerated
            # damage during its own open, with a logged warning).
            self._end_write(publish=True)
        if replayed:
            self.stats.bump_epoch()
            self._engine = None
        self._wal = wal
        return replayed

    # ------------------------------------------------------------ durability

    @property
    def wal(self) -> WriteAheadLog | None:
        """The attached journal, if any (read-only introspection)."""
        return self._wal

    def _checkpoint_meta(self) -> dict:
        """Context stamped into a checkpoint (observability only)."""
        return {"epoch": self.stats.epoch,
                "triples": self.stats.total_triples}

    def checkpoint(self) -> CheckpointInfo:
        """Consolidate the journal's committed prefix and compact it.

        Runs under the writer bracket, so it serializes against
        transactions; concurrent snapshot readers are unaffected. After it
        returns, reopening the store replays only the checkpoint plus
        post-checkpoint segments. Raises :class:`TransactionError` when no
        journal is attached or a transaction is open on this thread."""
        wal = self._require_wal()
        self._begin_write()
        try:
            info = wal.checkpoint(meta=self._checkpoint_meta())
        finally:
            self._end_write(publish=False)
        if self.hooks is not None:
            self.hooks.fire("checkpoint", txn=info.txn, ops=info.ops)
        return info

    def backup(self, dest: str | os.PathLike) -> WalStatus:
        """Copy the journal to ``dest`` as a consistent, verified backup.

        Takes the writer bracket for the duration of the copy — commits
        wait, snapshot readers keep reading — then verifies every checksum
        in the copy. Restore by attaching the backup directory to a store
        rebuilt from the same base data:
        ``RdfStore.from_graph(base, wal_path=dest)``."""
        wal = self._require_wal()
        self._begin_write()
        try:
            status = wal.backup_to(dest)
        finally:
            self._end_write(publish=False)
        if self.hooks is not None:
            self.hooks.fire("backup", dest=str(dest))
        return status

    def flush_wal(self) -> None:
        """Force everything journalled so far onto stable storage (used by
        graceful shutdown; a no-op when no journal is attached)."""
        if self._wal is not None:
            self._wal.sync_to_disk()

    def wal_summary(self) -> dict | None:
        """Journal health for ``report()`` consumers and the server's
        ``/health`` endpoint; None when no journal is attached."""
        if self._wal is None:
            return None
        return {
            "path": str(self._wal.path),
            "durability": self._wal.durability,
            "recovery": self._wal.recovery,
            "segments": self._wal.segment_count,
            "records": self._wal.record_count,
            "last_txn": self._wal.last_txn,
            "checkpoint_txn": self._wal.checkpoint_txn,
            "records_dropped": self._wal.records_dropped,
        }

    def verify_wal(self) -> WalStatus | None:
        """Re-scan the attached journal's files read-only, verifying every
        checksum; None when no journal is attached."""
        if self._wal is None:
            return None
        self.flush_wal()
        return inspect_wal(self._wal.path, self._wal.max_record_bytes)

    def _require_wal(self) -> WriteAheadLog:
        if self._wal is None:
            raise TransactionError("no journal is attached to this store")
        if self._txn is not None and self._writer_thread == threading.get_ident():
            raise TransactionError(
                "cannot checkpoint or backup mid-transaction"
            )
        return self._wal

    # Raw single-triple writes: no transaction, no epoch bump. These are the
    # primitives Transaction (and WAL replay) build on; everything public
    # goes through a transaction.

    def _apply_add(self, triple: Triple) -> bool:
        delta = self.loader.insert_triple(triple)
        if not getattr(delta, "inserted", True):
            return False
        self.direct_meta.merge(delta)
        reverse_part = getattr(delta, "reverse_part", None)
        if reverse_part is not None:
            self.reverse_meta.merge(reverse_part)
        self.stats.record_triple(
            term_key(triple.subject),
            triple.predicate.value,
            term_key(triple.object),
        )
        self._engine = None
        return True

    def _apply_remove(self, triple: Triple) -> bool:
        existed = self.loader.delete_triple(triple)
        if existed:
            self.stats.unrecord_triple(
                term_key(triple.subject),
                triple.predicate.value,
                term_key(triple.object),
            )
            self._engine = None
        return existed

    def select(self, query: SelectQuery) -> SelectResult:
        """Evaluate a parsed SELECT query (the update executor's read
        hook; equivalent to :meth:`query` with a query object)."""
        return self.engine.query(query)

    # --------------------------------------------------------------- query

    @property
    def engine(self) -> SparqlEngine:
        if self._engine is None:
            info = StorageInfo(
                schema=self.schema,
                direct_mapper=self.direct_mapper,
                reverse_mapper=self.reverse_mapper,
                multivalued_direct=self.direct_meta.multivalued,
                multivalued_reverse=self.reverse_meta.multivalued,
            )
            self._engine = SparqlEngine(
                backend=self.backend,
                emitter=Db2RdfEmitter(info),
                stats=self.stats,
                spill_direct=frozenset(self.direct_meta.spill_predicates),
                spill_reverse=frozenset(self.reverse_meta.spill_predicates),
                config=self.config,
                cache=self._plan_cache,
            )
        return self._engine

    def query(
        self,
        sparql,
        timeout: float | None = None,
        max_rows: int | None = None,
        max_intermediate_rows: int | None = None,
        profile: bool = False,
    ) -> SelectResult:
        """Evaluate a SPARQL SELECT query (text or a parsed/rewritten
        query object, e.g. from :mod:`repro.sparql.inference`).

        Execution guardrails: ``timeout`` (seconds of wall clock,
        :class:`~repro.core.resilience.QueryTimeoutError` on expiry),
        ``max_rows`` (ceiling on result rows), and
        ``max_intermediate_rows`` (ceiling on rows materialized by
        intermediate operators — on sqlite a best-effort VM work-unit
        proxy), the latter two raising
        :class:`~repro.core.resilience.BudgetExceededError`. All three are
        enforced cooperatively inside the backends; a query with no
        guardrails set pays no per-row cost.

        With ``profile=True`` the whole pipeline runs under a tracer —
        compile stages, plan-cache outcome, and per-operator
        rows-in/rows-out/timings from the backend — and the finished trace
        is attached as ``result.profile`` (render it with
        :func:`repro.core.observe.render_profile`) after being delivered to
        every sink in :attr:`profile_sinks`.
        """
        budget = None
        if (
            timeout is not None
            or max_rows is not None
            or max_intermediate_rows is not None
        ):
            budget = Budget(
                timeout=timeout,
                max_rows=max_rows,
                max_intermediate_rows=max_intermediate_rows,
            )
        if not profile:
            return self.engine.query(sparql, budget=budget)
        tracer = Tracer("query", sinks=self.profile_sinks)
        with tracer.root:
            result = self.engine.query(sparql, tracer=tracer, budget=budget)
        result.profile = tracer.finish()
        return result

    def profile(
        self,
        sparql,
        timeout: float | None = None,
        max_rows: int | None = None,
        max_intermediate_rows: int | None = None,
    ) -> Span:
        """Run a query in PROFILE mode and return just the trace root."""
        return self.query(
            sparql,
            timeout=timeout,
            max_rows=max_rows,
            max_intermediate_rows=max_intermediate_rows,
            profile=True,
        ).profile

    def ask(self, sparql: str, timeout: float | None = None) -> bool:
        """Evaluate a SPARQL ASK query."""
        return self.engine.ask(sparql, timeout=timeout)

    def explain(self, sparql: str, mode: str = "sql") -> str:
        """EXPLAIN a query without executing it.

        ``mode="sql"`` (default) is the generated SQL text; ``mode="plan"``
        prepends the compile configuration and appends the backend's own
        access plan when it can report one (sqlite's EXPLAIN QUERY PLAN).
        """
        if mode == "sql":
            return self.engine.explain(sparql)
        if mode == "plan":
            return self.engine.explain_plan(sparql)
        raise ValueError(f"unknown explain mode {mode!r} (use 'sql' or 'plan')")

    def cache_info(self) -> CacheInfo:
        """Plan-cache counters (hits / misses / invalidations / evictions)
        and cumulative per-stage compile timings."""
        return self._plan_cache.info()

    # ----------------------------------------------------------- reporting

    def report(self) -> StoreReport:
        """Load statistics: entities, spills, multi-valued predicates —
        and, when a journal is attached, its recovery/compaction health."""
        wal = self._wal
        return StoreReport(
            triples=self.stats.total_triples,
            direct=self.direct_meta,
            reverse=self.reverse_meta,
            direct_columns=self.schema.direct_columns,
            reverse_columns=self.schema.reverse_columns,
            wal_records_dropped=wal.records_dropped if wal else 0,
            wal_segments=wal.segment_count if wal else 0,
            wal_last_txn=wal.last_txn if wal else 0,
        )
