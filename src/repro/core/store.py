"""The public DB2RDF store API.

``RdfStore`` owns a relational backend, the DPH/DS/RPH/RS schema, the
predicate mappers (hash composition by default, graph coloring via
:meth:`RdfStore.from_graph`), load-time metadata, dataset statistics, and a
SPARQL engine. Typical use::

    from repro import RdfStore
    store = RdfStore.from_graph(graph)           # color + bulk load
    result = store.query("SELECT ?x WHERE { ?x <p> ?y }")

"""

from __future__ import annotations

from dataclasses import dataclass

from . import sqlfunctions  # noqa: F401  (registers RDF_* SQL functions)
from ..backends import Backend, MiniRelBackend
from ..rdf.graph import Graph
from ..rdf.terms import Triple, term_key
from ..sparql.engine import EngineConfig, SparqlEngine
from ..sparql.results import SelectResult
from ..sparql.translator.db2rdf import Db2RdfEmitter, StorageInfo
from .coloring import color_graph_for_store
from .loader import Loader, LoadReport, SideMetadata
from .mapping import PredicateMapper, composed_hashes
from .observe import Sink, Span, Tracer
from .querycache import CacheInfo, QueryCache
from .schema import DB2RDFSchema
from .stats import DatasetStatistics

DEFAULT_COLUMNS = 32
MAX_COLORING_COLUMNS = 100


@dataclass
class StoreReport:
    """Load statistics exposed for the Table 4 / §2.3 experiments."""

    triples: int
    direct: SideMetadata
    reverse: SideMetadata
    direct_columns: int
    reverse_columns: int


class RdfStore:
    """An entity-oriented RDF store over a relational backend."""

    def __init__(
        self,
        backend: Backend | None = None,
        direct_columns: int = DEFAULT_COLUMNS,
        reverse_columns: int = DEFAULT_COLUMNS,
        direct_mapper: PredicateMapper | None = None,
        reverse_mapper: PredicateMapper | None = None,
        table_prefix: str = "",
        config: EngineConfig | None = None,
    ) -> None:
        self.backend = backend if backend is not None else MiniRelBackend()
        self.schema = DB2RDFSchema(direct_columns, reverse_columns, table_prefix)
        self.schema.create_all(self.backend)
        self.direct_mapper = direct_mapper or composed_hashes(direct_columns)
        self.reverse_mapper = reverse_mapper or composed_hashes(reverse_columns)
        self.loader = Loader(
            self.schema, self.backend, self.direct_mapper, self.reverse_mapper
        )
        self.direct_meta = SideMetadata()
        self.reverse_meta = SideMetadata()
        self.stats = DatasetStatistics()
        self.config = config or EngineConfig()
        # The plan cache outlives engine rebuilds (the engine is recreated
        # whenever storage metadata changes); stats-epoch keying invalidates
        # entries whose cost inputs went stale.
        self._plan_cache = QueryCache(self.config.cache_size)
        self._engine: SparqlEngine | None = None
        #: callables receiving every finished PROFILE trace (root Span)
        self.profile_sinks: list[Sink] = []

    # --------------------------------------------------------- construction

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        backend: Backend | None = None,
        use_coloring: bool = True,
        max_columns: int = MAX_COLORING_COLUMNS,
        sample_fraction: float | None = None,
        table_prefix: str = "",
        config: EngineConfig | None = None,
        top_k_stats: int = 1000,
    ) -> "RdfStore":
        """Build a store sized and colored for ``graph``, then bulk load it.

        ``use_coloring=False`` gives the pure hash-composition layout;
        ``sample_fraction`` colors from a random entity sample (the §2.3
        incremental-coloring experiment).
        """
        if use_coloring and len(graph):
            direct_result, reverse_result = color_graph_for_store(
                graph, max_columns, sample_fraction=sample_fraction
            )
            direct_columns = max(direct_result.colors_used, 1)
            reverse_columns = max(reverse_result.colors_used, 1)
            direct_mapper: PredicateMapper = direct_result.to_mapper(
                direct_columns, composed_hashes(direct_columns)
            )
            reverse_mapper: PredicateMapper = reverse_result.to_mapper(
                reverse_columns, composed_hashes(reverse_columns)
            )
            store = cls(
                backend=backend,
                direct_columns=direct_columns,
                reverse_columns=reverse_columns,
                direct_mapper=direct_mapper,
                reverse_mapper=reverse_mapper,
                table_prefix=table_prefix,
                config=config,
            )
            store.coloring_direct = direct_result
            store.coloring_reverse = reverse_result
        else:
            store = cls(backend=backend, table_prefix=table_prefix, config=config)
        store.load_graph(graph, top_k_stats=top_k_stats)
        return store

    # ---------------------------------------------------------------- load

    def load_graph(self, graph: Graph, top_k_stats: int = 1000) -> LoadReport:
        """Bulk load a graph (appends to any previously loaded data)."""
        report = self.loader.bulk_load(graph)
        self.direct_meta.merge(report.direct)
        self.reverse_meta.merge(report.reverse)
        fresh = DatasetStatistics.from_graph(graph, top_k=top_k_stats)
        fresh.epoch = self.stats.epoch + 1  # bulk load invalidates cached plans
        self.stats = fresh
        self._engine = None
        return report

    def add(self, triple: Triple) -> None:
        """Insert one triple incrementally (the dynamic-data path)."""
        delta = self.loader.insert_triple(triple)
        self.direct_meta.merge(delta)
        reverse_part = getattr(delta, "reverse_part", None)
        if reverse_part is not None:
            self.reverse_meta.merge(reverse_part)
        self.stats.record_triple(
            term_key(triple.subject),
            triple.predicate.value,
            term_key(triple.object),
        )
        self.stats.bump_epoch()
        self._engine = None

    def remove(self, triple: Triple) -> bool:
        """Delete one triple; returns False when it was not stored."""
        existed = self.loader.delete_triple(triple)
        if existed:
            self.stats.total_triples = max(0, self.stats.total_triples - 1)
            predicate = triple.predicate.value
            if predicate in self.stats.predicate_counts:
                self.stats.predicate_counts[predicate] -= 1
            subject_key = term_key(triple.subject)
            if subject_key in self.stats.top_subjects:
                self.stats.top_subjects[subject_key] -= 1
            object_key = term_key(triple.object)
            if object_key in self.stats.top_objects:
                self.stats.top_objects[object_key] -= 1
            self.stats.bump_epoch()
            self._engine = None
        return existed

    # --------------------------------------------------------------- query

    @property
    def engine(self) -> SparqlEngine:
        if self._engine is None:
            info = StorageInfo(
                schema=self.schema,
                direct_mapper=self.direct_mapper,
                reverse_mapper=self.reverse_mapper,
                multivalued_direct=self.direct_meta.multivalued,
                multivalued_reverse=self.reverse_meta.multivalued,
            )
            self._engine = SparqlEngine(
                backend=self.backend,
                emitter=Db2RdfEmitter(info),
                stats=self.stats,
                spill_direct=frozenset(self.direct_meta.spill_predicates),
                spill_reverse=frozenset(self.reverse_meta.spill_predicates),
                config=self.config,
                cache=self._plan_cache,
            )
        return self._engine

    def query(
        self,
        sparql,
        timeout: float | None = None,
        profile: bool = False,
    ) -> SelectResult:
        """Evaluate a SPARQL SELECT query (text or a parsed/rewritten
        query object, e.g. from :mod:`repro.sparql.inference`).

        With ``profile=True`` the whole pipeline runs under a tracer —
        compile stages, plan-cache outcome, and per-operator
        rows-in/rows-out/timings from the backend — and the finished trace
        is attached as ``result.profile`` (render it with
        :func:`repro.core.observe.render_profile`) after being delivered to
        every sink in :attr:`profile_sinks`.
        """
        if not profile:
            return self.engine.query(sparql, timeout=timeout)
        tracer = Tracer("query", sinks=self.profile_sinks)
        with tracer.root:
            result = self.engine.query(sparql, timeout=timeout, tracer=tracer)
        result.profile = tracer.finish()
        return result

    def profile(self, sparql, timeout: float | None = None) -> Span:
        """Run a query in PROFILE mode and return just the trace root."""
        return self.query(sparql, timeout=timeout, profile=True).profile

    def ask(self, sparql: str, timeout: float | None = None) -> bool:
        """Evaluate a SPARQL ASK query."""
        return self.engine.ask(sparql, timeout=timeout)

    def explain(self, sparql: str, mode: str = "sql") -> str:
        """EXPLAIN a query without executing it.

        ``mode="sql"`` (default) is the generated SQL text; ``mode="plan"``
        prepends the compile configuration and appends the backend's own
        access plan when it can report one (sqlite's EXPLAIN QUERY PLAN).
        """
        if mode == "sql":
            return self.engine.explain(sparql)
        if mode == "plan":
            return self.engine.explain_plan(sparql)
        raise ValueError(f"unknown explain mode {mode!r} (use 'sql' or 'plan')")

    def cache_info(self) -> CacheInfo:
        """Plan-cache counters (hits / misses / invalidations / evictions)
        and cumulative per-stage compile timings."""
        return self._plan_cache.info()

    # ----------------------------------------------------------- reporting

    def report(self) -> StoreReport:
        """Load statistics: entities, spills, multi-valued predicates."""
        return StoreReport(
            triples=self.stats.total_triples,
            direct=self.direct_meta,
            reverse=self.reverse_meta,
            direct_columns=self.schema.direct_columns,
            reverse_columns=self.schema.reverse_columns,
        )
