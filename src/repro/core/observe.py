"""Query-pipeline observability: hierarchical spans, counters, sinks.

The paper argues its layout + optimizer produce *better plans*; this module
makes that claim inspectable. A :class:`Tracer` collects one query's work as
a tree of :class:`Span` objects — monotonic (``perf_counter``) timings plus
free-form counters — threaded through compile (parse → dataflow → planbuild
→ merge → translate), the plan cache, and execution (per-operator
rows-in/rows-out in the minirel planner, rowcounts + ``EXPLAIN QUERY PLAN``
on sqlite).

Design constraints:

* **Zero cost when disabled.** The engine's hot path takes ``tracer=None``
  and never touches this module; the minirel planner wraps operator
  iterators only when a trace span is supplied. ``benchmarks/bench_observe``
  measures the residual overhead (<5%) and CI guards it.
* **No upward imports.** The relational substrate never imports this
  module: it receives a :class:`Span` (or ``None``) and uses it through
  duck typing (``child`` / ``inc`` / ``set`` / ``meter`` / ``count``).
* **Pluggable sinks.** A sink is any callable taking the finished root
  span; :meth:`Tracer.finish` fans the tree out to every registered sink
  (log it, ship it, aggregate it — the tracer does not care).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Iterable, Iterator

Sink = Callable[["Span"], None]


class Span:
    """One named unit of work: cumulative seconds, counters, children.

    Timing is *inclusive* (a span's seconds cover its children) and
    cumulative: re-entering a span — e.g. an operator iterator that is
    re-created per outer row — accumulates into the same totals.
    """

    __slots__ = ("name", "attrs", "children", "seconds", "_started")

    def __init__(self, name: str, attrs: dict[str, Any] | None = None) -> None:
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.children: list[Span] = []
        self.seconds = 0.0
        self._started: float | None = None

    # ------------------------------------------------------------- building

    def child(self, name: str, **attrs: Any) -> "Span":
        """Create and attach a child span."""
        span = Span(name, attrs)
        self.children.append(span)
        return span

    def inc(self, key: str, delta: int = 1) -> None:
        """Increment a counter attribute."""
        self.attrs[key] = self.attrs.get(key, 0) + delta

    def set(self, key: str, value: Any) -> None:
        """Set an attribute."""
        self.attrs[key] = value

    # -------------------------------------------------------------- timing

    def __enter__(self) -> "Span":
        self._started = perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        if self._started is not None:
            self.seconds += perf_counter() - self._started
            self._started = None

    # ------------------------------------------------------------ metering

    def meter(self, rows: Iterable, key: str = "rows_out") -> Iterator:
        """Wrap a row iterator: count rows into ``key`` and accumulate the
        inclusive time spent producing them (time inside ``next()``, i.e.
        this operator plus its inputs, excluding the consumer)."""
        def metered() -> Iterator:
            iterator = iter(rows)
            produced = 0
            elapsed = 0.0
            try:
                while True:
                    started = perf_counter()
                    try:
                        row = next(iterator)
                    except StopIteration:
                        elapsed += perf_counter() - started
                        return
                    elapsed += perf_counter() - started
                    produced += 1
                    yield row
            finally:
                self.inc(key, produced)
                self.seconds += elapsed

        return metered()

    def count(self, rows: Iterable, key: str) -> Iterator:
        """Wrap a row iterator counting rows into ``key`` (no timing) —
        used for operator *inputs* (rows-in)."""
        def counted() -> Iterator:
            produced = 0
            try:
                for row in rows:
                    produced += 1
                    yield row
            finally:
                self.inc(key, produced)

        return counted()

    def meter_batches(self, chunks: Iterable, key: str = "rows_out") -> Iterator:
        """:meth:`meter` for the vectorized executor: each item is a *chunk*
        (list of rows); counters record logical rows, so traces are
        batch-size independent."""
        def metered() -> Iterator:
            iterator = iter(chunks)
            produced = 0
            elapsed = 0.0
            try:
                while True:
                    started = perf_counter()
                    try:
                        chunk = next(iterator)
                    except StopIteration:
                        elapsed += perf_counter() - started
                        return
                    elapsed += perf_counter() - started
                    produced += len(chunk)
                    yield chunk
            finally:
                self.inc(key, produced)
                self.seconds += elapsed

        return metered()

    def count_batches(self, chunks: Iterable, key: str) -> Iterator:
        """:meth:`count` over chunks — counts logical rows, no timing."""
        def counted() -> Iterator:
            produced = 0
            try:
                for chunk in chunks:
                    produced += len(chunk)
                    yield chunk
            finally:
                self.inc(key, produced)

        return counted()

    # ----------------------------------------------------------- traversal

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "Span"]]:
        """Depth-first (depth, span) pairs, self included."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> "Span | None":
        """First span (depth-first) whose name equals or starts with
        ``name`` — a convenience for tests and sinks."""
        for _, span in self.walk():
            if span.name == name or span.name.startswith(name + " "):
                return span
        return None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready tree (used by benchmark output and the runner)."""
        node: dict[str, Any] = {"name": self.name, "seconds": self.seconds}
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.children:
            node["children"] = [c.to_dict() for c in self.children]
        return node

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, seconds={self.seconds:.6f}, "
            f"attrs={self.attrs}, children={len(self.children)})"
        )


class Tracer:
    """Collects one query's span tree and fans it out to sinks.

    ``span()`` is the structured entry point: it opens a child of the
    innermost open span, so sequential ``with`` blocks become siblings and
    nested blocks become subtrees. Layers that build spans lazily (the
    minirel planner) instead receive a parent :class:`Span` directly.
    """

    enabled = True

    def __init__(self, name: str = "query", sinks: Iterable[Sink] = ()) -> None:
        self.root = Span(name)
        self.sinks: list[Sink] = list(sinks)
        self._stack: list[Span] = [self.root]

    @property
    def current(self) -> Span:
        """The innermost open span (new work attaches here)."""
        return self._stack[-1]

    def span(self, name: str, **attrs: Any) -> "_OpenSpan":
        """Open a timed child span of the current span (context manager)."""
        return _OpenSpan(self, self.current.child(name, **attrs))

    def add_sink(self, sink: Sink) -> None:
        self.sinks.append(sink)

    def finish(self) -> Span:
        """Close the trace and deliver the root span to every sink."""
        for sink in self.sinks:
            sink(self.root)
        return self.root


class _OpenSpan:
    """Context manager pairing a span's timing with the tracer stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: Tracer, span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        return self._span.__enter__()

    def __exit__(self, *exc: Any) -> None:
        self._span.__exit__(*exc)
        self._tracer._stack.pop()


# ------------------------------------------------------------------ rendering


def summarize_operators(root: Span) -> list[dict[str, Any]]:
    """Flatten a trace into per-operator rows for tables and JSON output.

    An *operator* is any span carrying a ``rows_out`` or ``rows_in*``
    counter (scans, joins, filters, aggregates, set ops, backend executes).
    """
    operators: list[dict[str, Any]] = []
    for depth, span in root.walk():
        row_keys = [k for k in span.attrs if k.startswith(("rows_in", "rows_out"))]
        if not row_keys:
            continue
        entry: dict[str, Any] = {
            "operator": span.name,
            "depth": depth,
            "seconds": span.seconds,
        }
        rows_in = sum(
            v for k, v in span.attrs.items()
            if k.startswith("rows_in") and isinstance(v, (int, float))
        )
        if any(k.startswith("rows_in") for k in row_keys):
            entry["rows_in"] = rows_in
        if "rows_out" in span.attrs:
            entry["rows_out"] = span.attrs["rows_out"]
        operators.append(entry)
    return operators


def _format_attrs(attrs: dict[str, Any]) -> str:
    parts = []
    for key, value in attrs.items():
        if isinstance(value, (list, tuple)):
            continue  # multi-line payloads render as their own lines
        parts.append(f"{key}={value}")
    return " ".join(parts)


def render_profile(root: Span) -> str:
    """Render a span tree as an indented text profile.

    Times are inclusive (a parent covers its children); operator spans show
    their rows-in/rows-out counters inline; list-valued attributes (e.g.
    sqlite's ``EXPLAIN QUERY PLAN`` lines) render as indented sub-lines.
    """
    lines: list[str] = []
    for depth, span in root.walk():
        indent = "  " * depth
        label = f"{indent}{span.name}"
        attr_text = _format_attrs(span.attrs)
        if attr_text:
            label += f"  [{attr_text}]"
        lines.append(f"{label:<64} {span.seconds * 1000:9.3f} ms")
        for key, value in span.attrs.items():
            if isinstance(value, (list, tuple)):
                for item in value:
                    lines.append(f"{indent}  | {item}")
    return "\n".join(lines)
