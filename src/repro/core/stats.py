"""Dataset statistics for the SPARQL optimizer (paper §3.1, input 2).

The paper's examples use exactly these: total triple count, average triples
per subject / per object, and top-k constants with exact counts (Figure 6b).
Constants outside the top-k fall back to the averages — tightened, when the
triple's predicate is constant, by the exact per-predicate total.

On top of the paper's global statistics this module keeps a *per-predicate*
layer for the cost-based join-order enumerator:

* exact per-predicate triple counts (``predicate_counts``, as before);
* per-predicate **distinct subject / object counts** — the denominators of
  classic join selectivity (``|R ⋈ S| ≈ |R|·|S| / max(d_R, d_S)``);
* per-predicate **min-hash sketches** of the subject and object sets — the
  star-selectivity sketches: the estimated overlap between two predicates'
  subject sets says how selective a star join on a shared subject really
  is, and subject/object overlap does the same for chains.

Everything is collected in the single bulk-load pass (see
:class:`StatsCollector`, fed by ``Loader.bulk_load``) and maintained
incrementally by ``record_triple`` / ``unrecord_triple`` at commit time,
under the existing stats-epoch protocol: any mutation bumps ``epoch`` and
cached plans compiled under older epochs are invalidated.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from hashlib import blake2b

from ..rdf.graph import Graph
from ..rdf.terms import Term, term_key

#: Number of min-hash slots per sketch. Jaccard error ~ 1/sqrt(k); 16 slots
#: (±25%) is plenty to rank join orders, and keeps the per-triple load cost
#: at one hash plus sixteen modular multiplies.
SKETCH_SLOTS = 16

_MERSENNE = (1 << 61) - 1

# Deterministic per-slot permutation coefficients: derived from blake2b of
# the slot index, never from Python's randomized hash(), so sketches (and
# with them plans and estimates) are stable across processes and runs.


def _slot_coefficient(label: bytes, slot: int) -> int:
    digest = blake2b(label + slot.to_bytes(2, "big"), digest_size=8).digest()
    return (int.from_bytes(digest, "big") % (_MERSENNE - 1)) + 1


_A = tuple(_slot_coefficient(b"minhash-a", i) for i in range(SKETCH_SLOTS))
_B = tuple(_slot_coefficient(b"minhash-b", i) for i in range(SKETCH_SLOTS))


def _key_hash(key: str) -> int:
    return int.from_bytes(
        blake2b(key.encode("utf-8"), digest_size=8).digest(), "big"
    )


class MinHashSketch:
    """A fixed-width min-hash signature of a string set.

    Supports insertion, union (slot-wise minimum), and Jaccard estimation.
    Deletions are not representable — callers treat post-delete sketches as
    slightly stale, which the estimator absorbs in its confidence score.
    """

    __slots__ = ("mins",)

    def __init__(self, mins: list[int] | None = None) -> None:
        self.mins = list(mins) if mins is not None else [_MERSENNE] * SKETCH_SLOTS

    def add(self, key: str) -> bool:
        """Insert ``key``; returns True when the signature changed (which
        proves the key was not in the set — the converse does not hold)."""
        h = _key_hash(key)
        mins = self.mins
        changed = False
        for i in range(SKETCH_SLOTS):
            v = (_A[i] * h + _B[i]) % _MERSENNE
            if v < mins[i]:
                mins[i] = v
                changed = True
        return changed

    @property
    def empty(self) -> bool:
        return all(m == _MERSENNE for m in self.mins)

    def jaccard(self, other: "MinHashSketch") -> float:
        """Estimated ``|A∩B| / |A∪B|``; 0.0 when either side is empty."""
        if self.empty or other.empty:
            return 0.0
        equal = sum(1 for a, b in zip(self.mins, other.mins) if a == b)
        return equal / SKETCH_SLOTS

    def union(self, other: "MinHashSketch") -> "MinHashSketch":
        return MinHashSketch(
            [min(a, b) for a, b in zip(self.mins, other.mins)]
        )

    def copy(self) -> "MinHashSketch":
        return MinHashSketch(self.mins)


def intersection_estimate(
    a: MinHashSketch, count_a: float, b: MinHashSketch, count_b: float
) -> float:
    """Estimated ``|A∩B|`` from the two sketches and the known set sizes.

    ``J = |∩|/|∪|`` and ``|∪| = |A|+|B|-|∩|`` give
    ``|∩| = J·(|A|+|B|)/(1+J)``; the result is clamped to the feasible
    range ``[0, min(|A|, |B|)]``.
    """
    j = a.jaccard(b)
    estimate = j * (count_a + count_b) / (1.0 + j)
    return max(0.0, min(estimate, count_a, count_b))


@dataclass
class PredicateStat:
    """Per-predicate column statistics (counts live in the parent's
    ``predicate_counts``; this carries the distinct counts and sketches)."""

    distinct_subjects: int = 0
    distinct_objects: int = 0
    subjects: MinHashSketch = field(default_factory=MinHashSketch)
    objects: MinHashSketch = field(default_factory=MinHashSketch)

    def merged_with(self, other: "PredicateStat") -> "PredicateStat":
        subjects = self.subjects.union(other.subjects)
        objects = self.objects.union(other.objects)
        overlap_s = intersection_estimate(
            self.subjects,
            self.distinct_subjects,
            other.subjects,
            other.distinct_subjects,
        )
        overlap_o = intersection_estimate(
            self.objects,
            self.distinct_objects,
            other.objects,
            other.distinct_objects,
        )
        return PredicateStat(
            distinct_subjects=_merged_distinct(
                self.distinct_subjects, other.distinct_subjects, overlap_s
            ),
            distinct_objects=_merged_distinct(
                self.distinct_objects, other.distinct_objects, overlap_o
            ),
            subjects=subjects,
            objects=objects,
        )


def _merged_distinct(a: int, b: int, overlap: float) -> int:
    """Inclusion–exclusion with a sketch-estimated overlap, clamped to the
    feasible range ``[max(a, b), a + b]``."""
    return int(round(min(a + b, max(a, b, a + b - overlap))))


@dataclass
class DatasetStatistics:
    """Cardinality statistics over one loaded dataset."""

    total_triples: int = 0
    distinct_subjects: int = 0
    distinct_objects: int = 0
    top_subjects: dict[str, int] = field(default_factory=dict)
    top_objects: dict[str, int] = field(default_factory=dict)
    predicate_counts: dict[str, int] = field(default_factory=dict)
    #: per-predicate distinct counts and star-selectivity sketches; may be
    #: empty for hand-built statistics (estimators fall back to the global
    #: layer with reduced confidence)
    predicates: dict[str, PredicateStat] = field(default_factory=dict)
    #: global entity sketches — used to merge distinct counts across
    #: successive bulk loads without a rescan
    subject_sketch: MinHashSketch = field(default_factory=MinHashSketch)
    object_sketch: MinHashSketch = field(default_factory=MinHashSketch)
    #: how many top-k slots the frequent-constant maps were built with
    top_k: int = 1000
    #: count of incremental deletes since the last full collection: sketches
    #: cannot forget members, so estimates degrade (the estimator lowers its
    #: confidence as this grows relative to the dataset)
    decayed_deletes: int = 0
    #: Monotonically increasing data-change version. Store mutations bump it;
    #: the plan cache records the epoch each plan was compiled under and
    #: invalidates entries whose epoch no longer matches.
    epoch: int = 0

    def bump_epoch(self) -> int:
        """Mark a data change that may shift cardinalities; returns the new
        epoch. Cached query plans compiled under earlier epochs go stale."""
        self.epoch += 1
        return self.epoch

    @property
    def avg_triples_per_subject(self) -> float:
        if not self.distinct_subjects:
            return 1.0
        return self.total_triples / self.distinct_subjects

    @property
    def avg_triples_per_object(self) -> float:
        if not self.distinct_objects:
            return 1.0
        return self.total_triples / self.distinct_objects

    # ------------------------------------------------------ cost estimates

    def subject_cardinality(
        self, subject: Term | str | None, predicate: str | None = None
    ) -> float:
        """Estimated triples retrieved by a subject lookup.

        Top-k constants give exact counts. Outside the top-k the fallback is
        the per-subject average — capped by the exact per-predicate total
        when the triple's predicate is a known constant, which is the
        tighter bound (a subject cannot contribute more ``p``-triples than
        ``p`` has in total).
        """
        if subject is None:
            return self._capped_average(self.avg_triples_per_subject, predicate)
        key = subject if isinstance(subject, str) else term_key(subject)
        exact = self.top_subjects.get(key)
        if exact is not None:
            return float(exact)
        return self._capped_average(self.avg_triples_per_subject, predicate)

    def object_cardinality(
        self, obj: Term | str | None, predicate: str | None = None
    ) -> float:
        """Estimated triples retrieved by an object lookup (see
        :meth:`subject_cardinality` for the fallback rule)."""
        if obj is None:
            return self._capped_average(self.avg_triples_per_object, predicate)
        key = obj if isinstance(obj, str) else term_key(obj)
        exact = self.top_objects.get(key)
        if exact is not None:
            return float(exact)
        return self._capped_average(self.avg_triples_per_object, predicate)

    def _capped_average(self, average: float, predicate: str | None) -> float:
        if predicate is not None:
            exact_total = self.predicate_counts.get(predicate)
            if exact_total is not None:
                return float(min(average, exact_total))
        return average

    def predicate_cardinality(self, predicate: str | None) -> float:
        if predicate is None:
            return float(self.total_triples)
        return float(
            self.predicate_counts.get(predicate, max(1.0, self.total_triples / 100))
        )

    def scan_cardinality(self) -> float:
        return float(self.total_triples)

    # ------------------------------------------------ per-predicate layer

    def predicate_stat(self, predicate: str) -> PredicateStat | None:
        return self.predicates.get(predicate)

    def distinct_subjects_for(self, predicate: str | None) -> float:
        """Distinct subjects of a predicate, clamped to feasible bounds;
        falls back to the global distinct-subject count."""
        return self._distinct_for(
            predicate, "distinct_subjects", self.distinct_subjects
        )

    def distinct_objects_for(self, predicate: str | None) -> float:
        return self._distinct_for(
            predicate, "distinct_objects", self.distinct_objects
        )

    def _distinct_for(
        self, predicate: str | None, attr: str, global_default: int
    ) -> float:
        fallback = float(max(1, global_default))
        if predicate is None:
            return fallback
        count = self.predicate_counts.get(predicate)
        stat = self.predicates.get(predicate)
        if stat is None:
            if count is not None:
                return float(max(1, min(count, global_default or count)))
            return fallback
        distinct = getattr(stat, attr)
        if count is not None:
            distinct = min(distinct, count)
        return float(max(1, distinct))

    def sketch_for(self, predicate: str, position: str) -> MinHashSketch | None:
        """The subject (``position="subject"``) or object sketch of a
        predicate, or None when unavailable or degraded by deletes."""
        stat = self.predicates.get(predicate)
        if stat is None:
            return None
        sketch = stat.subjects if position == "subject" else stat.objects
        return None if sketch.empty else sketch

    # --------------------------------------------------------- construction

    @classmethod
    def from_graph(cls, graph: Graph, top_k: int = 1000) -> "DatasetStatistics":
        collector = StatsCollector(top_k=top_k)
        for subject in graph.subjects():
            grouped: dict[str, int] = {}
            for triple in graph.triples_for_subject(subject):
                predicate = triple.predicate.value
                grouped[predicate] = grouped.get(predicate, 0) + 1
            collector.direct_entity(term_key(subject), grouped)
        for obj in graph.objects():
            grouped = {}
            for triple in graph.triples_for_object(obj):
                predicate = triple.predicate.value
                grouped[predicate] = grouped.get(predicate, 0) + 1
            collector.reverse_entity(term_key(obj), grouped)
        return collector.finish()

    def merged_with(self, other: "DatasetStatistics") -> "DatasetStatistics":
        """Statistics for the union of two loaded batches (pure: neither
        input is mutated; the caller manages the epoch).

        Counts add exactly; distinct counts combine by inclusion–exclusion
        with sketch-estimated overlaps, so appending a second bulk load
        keeps the statistics describing *all* loaded data.
        """
        top_k = max(self.top_k, other.top_k)
        top_subjects = Counter(self.top_subjects)
        top_subjects.update(other.top_subjects)
        top_objects = Counter(self.top_objects)
        top_objects.update(other.top_objects)
        predicate_counts = Counter(self.predicate_counts)
        predicate_counts.update(other.predicate_counts)
        predicates: dict[str, PredicateStat] = {}
        for name in set(self.predicates) | set(other.predicates):
            mine, theirs = self.predicates.get(name), other.predicates.get(name)
            if mine is None:
                predicates[name] = theirs.merged_with(PredicateStat())
            elif theirs is None:
                predicates[name] = mine.merged_with(PredicateStat())
            else:
                predicates[name] = mine.merged_with(theirs)
        overlap_s = intersection_estimate(
            self.subject_sketch,
            self.distinct_subjects,
            other.subject_sketch,
            other.distinct_subjects,
        )
        overlap_o = intersection_estimate(
            self.object_sketch,
            self.distinct_objects,
            other.object_sketch,
            other.distinct_objects,
        )
        return DatasetStatistics(
            total_triples=self.total_triples + other.total_triples,
            distinct_subjects=_merged_distinct(
                self.distinct_subjects, other.distinct_subjects, overlap_s
            ),
            distinct_objects=_merged_distinct(
                self.distinct_objects, other.distinct_objects, overlap_o
            ),
            top_subjects=dict(top_subjects.most_common(top_k)),
            top_objects=dict(top_objects.most_common(top_k)),
            predicate_counts=dict(predicate_counts),
            predicates=predicates,
            subject_sketch=self.subject_sketch.union(other.subject_sketch),
            object_sketch=self.object_sketch.union(other.object_sketch),
            top_k=top_k,
            decayed_deletes=self.decayed_deletes + other.decayed_deletes,
            epoch=self.epoch,
        )

    # ------------------------------------------------ incremental updates

    def record_triple(self, subject_key: str, predicate: str, object_key: str) -> None:
        """Cheap incremental maintenance used by ``RdfStore.add``.

        Counts stay exact; distinct counts grow only when the sketch proves
        the key is new (a changed min-hash slot implies a first sighting),
        so they undercount slightly but never overshoot the truth.
        """
        self.total_triples += 1
        self.predicate_counts[predicate] = self.predicate_counts.get(predicate, 0) + 1
        if subject_key in self.top_subjects:
            self.top_subjects[subject_key] += 1
        if object_key in self.top_objects:
            self.top_objects[object_key] += 1
        stat = self.predicates.get(predicate)
        if stat is None:
            stat = self.predicates[predicate] = PredicateStat()
        if stat.subjects.add(subject_key) or not stat.distinct_subjects:
            stat.distinct_subjects += 1
        if stat.objects.add(object_key) or not stat.distinct_objects:
            stat.distinct_objects += 1
        if self.subject_sketch.add(subject_key) or not self.distinct_subjects:
            self.distinct_subjects += 1
        if self.object_sketch.add(object_key) or not self.distinct_objects:
            self.distinct_objects += 1

    def unrecord_triple(
        self, subject_key: str, predicate: str, object_key: str
    ) -> None:
        """Inverse of :meth:`record_triple`, used by ``RdfStore.remove``.

        Sketches cannot forget members; the delete is counted in
        ``decayed_deletes`` so estimators can discount sketch-based numbers.
        """
        self.total_triples = max(0, self.total_triples - 1)
        if predicate in self.predicate_counts:
            self.predicate_counts[predicate] -= 1
        if subject_key in self.top_subjects:
            self.top_subjects[subject_key] -= 1
        if object_key in self.top_objects:
            self.top_objects[object_key] -= 1
        self.decayed_deletes += 1


class StatsCollector:
    """Builds a :class:`DatasetStatistics` in one pass over entity groups.

    ``Loader.bulk_load`` already groups the graph by subject (direct side)
    and by object (reverse side) while shredding; feeding those groups here
    collects the full statistics — counts, top-k, per-predicate distincts,
    and sketches — without a second pass over the data.
    """

    def __init__(self, top_k: int = 1000) -> None:
        self.top_k = top_k
        self._subject_counts: Counter = Counter()
        self._object_counts: Counter = Counter()
        self._predicate_counts: Counter = Counter()
        self._predicates: dict[str, PredicateStat] = {}
        self._subject_sketch = MinHashSketch()
        self._object_sketch = MinHashSketch()
        self._subjects = 0
        self._objects = 0

    def _stat(self, predicate: str) -> PredicateStat:
        stat = self._predicates.get(predicate)
        if stat is None:
            stat = self._predicates[predicate] = PredicateStat()
        return stat

    def direct_entity(self, entry_key: str, grouped: "dict[str, int]") -> None:
        """One subject and its ``predicate -> value count`` map."""
        self._subjects += 1
        self._subject_sketch.add(entry_key)
        total = 0
        for predicate, count in grouped.items():
            total += count
            self._predicate_counts[predicate] += count
            stat = self._stat(predicate)
            stat.distinct_subjects += 1
            stat.subjects.add(entry_key)
        self._subject_counts[entry_key] += total

    def reverse_entity(self, entry_key: str, grouped: "dict[str, int]") -> None:
        """One object and its ``predicate -> value count`` map. Counts are
        taken on the direct side only; this side fills the object layer."""
        self._objects += 1
        self._object_sketch.add(entry_key)
        total = 0
        for predicate, count in grouped.items():
            total += count
            stat = self._stat(predicate)
            stat.distinct_objects += 1
            stat.objects.add(entry_key)
        self._object_counts[entry_key] += total

    def finish(self) -> DatasetStatistics:
        return DatasetStatistics(
            total_triples=sum(self._predicate_counts.values()),
            distinct_subjects=self._subjects,
            distinct_objects=self._objects,
            top_subjects=dict(self._subject_counts.most_common(self.top_k)),
            top_objects=dict(self._object_counts.most_common(self.top_k)),
            predicate_counts=dict(self._predicate_counts),
            predicates=self._predicates,
            subject_sketch=self._subject_sketch,
            object_sketch=self._object_sketch,
            top_k=self.top_k,
        )
