"""Dataset statistics for the SPARQL optimizer (paper §3.1, input 2).

The paper's examples use exactly these: total triple count, average triples
per subject / per object, and top-k constants with exact counts (Figure 6b).
Constants outside the top-k fall back to the averages.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..rdf.graph import Graph
from ..rdf.terms import Term, term_key


@dataclass
class DatasetStatistics:
    """Cardinality statistics over one loaded dataset."""

    total_triples: int = 0
    distinct_subjects: int = 0
    distinct_objects: int = 0
    top_subjects: dict[str, int] = field(default_factory=dict)
    top_objects: dict[str, int] = field(default_factory=dict)
    predicate_counts: dict[str, int] = field(default_factory=dict)
    #: Monotonically increasing data-change version. Store mutations bump it;
    #: the plan cache records the epoch each plan was compiled under and
    #: invalidates entries whose epoch no longer matches.
    epoch: int = 0

    def bump_epoch(self) -> int:
        """Mark a data change that may shift cardinalities; returns the new
        epoch. Cached query plans compiled under earlier epochs go stale."""
        self.epoch += 1
        return self.epoch

    @property
    def avg_triples_per_subject(self) -> float:
        if not self.distinct_subjects:
            return 1.0
        return self.total_triples / self.distinct_subjects

    @property
    def avg_triples_per_object(self) -> float:
        if not self.distinct_objects:
            return 1.0
        return self.total_triples / self.distinct_objects

    # ------------------------------------------------------ cost estimates

    def subject_cardinality(self, subject: Term | str | None) -> float:
        """Estimated triples retrieved by a subject lookup."""
        if subject is None:
            return self.avg_triples_per_subject
        key = subject if isinstance(subject, str) else term_key(subject)
        return float(self.top_subjects.get(key, self.avg_triples_per_subject))

    def object_cardinality(self, obj: Term | str | None) -> float:
        """Estimated triples retrieved by an object lookup."""
        if obj is None:
            return self.avg_triples_per_object
        key = obj if isinstance(obj, str) else term_key(obj)
        return float(self.top_objects.get(key, self.avg_triples_per_object))

    def predicate_cardinality(self, predicate: str | None) -> float:
        if predicate is None:
            return float(self.total_triples)
        return float(
            self.predicate_counts.get(predicate, max(1.0, self.total_triples / 100))
        )

    def scan_cardinality(self) -> float:
        return float(self.total_triples)

    # --------------------------------------------------------- construction

    @classmethod
    def from_graph(cls, graph: Graph, top_k: int = 1000) -> "DatasetStatistics":
        subject_counts: Counter = Counter()
        object_counts: Counter = Counter()
        predicate_counts: Counter = Counter()
        for triple in graph:
            subject_counts[term_key(triple.subject)] += 1
            object_counts[term_key(triple.object)] += 1
            predicate_counts[triple.predicate.value] += 1
        return cls(
            total_triples=len(graph),
            distinct_subjects=len(subject_counts),
            distinct_objects=len(object_counts),
            top_subjects=dict(subject_counts.most_common(top_k)),
            top_objects=dict(object_counts.most_common(top_k)),
            predicate_counts=dict(predicate_counts),
        )

    def record_triple(self, subject_key: str, predicate: str, object_key: str) -> None:
        """Cheap incremental maintenance used by ``RdfStore.add``."""
        self.total_triples += 1
        self.predicate_counts[predicate] = self.predicate_counts.get(predicate, 0) + 1
        if subject_key in self.top_subjects:
            self.top_subjects[subject_key] += 1
        if object_key in self.top_objects:
            self.top_objects[object_key] += 1

    def unrecord_triple(
        self, subject_key: str, predicate: str, object_key: str
    ) -> None:
        """Inverse of :meth:`record_triple`, used by ``RdfStore.remove``."""
        self.total_triples = max(0, self.total_triples - 1)
        if predicate in self.predicate_counts:
            self.predicate_counts[predicate] -= 1
        if subject_key in self.top_subjects:
            self.top_subjects[subject_key] -= 1
        if object_key in self.top_objects:
            self.top_objects[object_key] -= 1
