"""Shredding RDF into the DB2RDF schema: bulk load and incremental insert.

Bulk load (the §2.3 path) groups triples per entity, packs each entity's
predicates into columns via the predicate mapper, creates spill rows when
every candidate column of a predicate is taken, and routes multi-valued
predicates through the secondary hash tables with fresh lids.

Incremental insert (the §2.2 hashing illustration, Table 3) reads the
entity's existing rows, places the new predicate in the first free candidate
column, upgrades a single value to a lid when a second object arrives, and
spills into a new row when no candidate is free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..backends.base import Backend
from ..rdf.graph import Graph
from ..rdf.terms import Triple, term_key
from ..relational import ast
from .errors import LoadError
from .mapping import PredicateMapper
from .stats import DatasetStatistics, StatsCollector
from .schema import (
    DB2RDFSchema,
    DIRECT_LID_PREFIX,
    ENTRY,
    REVERSE_LID_PREFIX,
    SPILL,
    pred_col,
    val_col,
)


@dataclass
class SideMetadata:
    """Load-time metadata for one direction (direct or reverse).

    The translator consults this: which predicates are multi-valued (need
    the secondary-table join), and which participate in spills (veto star
    merging, §3.2.1).
    """

    multivalued: set[str] = field(default_factory=set)
    spill_predicates: set[str] = field(default_factory=set)
    spill_rows: int = 0
    entities: int = 0
    rows: int = 0
    #: predicates first seen *after* bulk load, mapped to the column the
    #: online insert algorithm assigned them (paper §2.5): later inserts of
    #: the same predicate prefer this column so it stays clustered.
    online_assignments: dict[str, int] = field(default_factory=dict)

    def merge(self, other: "SideMetadata") -> None:
        self.multivalued |= other.multivalued
        self.spill_predicates |= other.spill_predicates
        self.spill_rows += other.spill_rows
        self.entities += other.entities
        self.rows += other.rows
        for predicate, column in other.online_assignments.items():
            self.online_assignments.setdefault(predicate, column)


@dataclass
class LoadReport:
    """What a bulk load produced (feeds Table 4 / §2.3 numbers)."""

    triples: int
    direct: SideMetadata
    reverse: SideMetadata
    #: statistics collected during shredding (same pass, no rescan); the
    #: store merges these into its dataset statistics on append
    stats: DatasetStatistics | None = None


def _check_key(key: str) -> str:
    if key.startswith((DIRECT_LID_PREFIX, REVERSE_LID_PREFIX)):
        raise LoadError(f"data value collides with reserved lid prefix: {key!r}")
    return key


class _LidAllocator:
    def __init__(self, prefix: str, start: int = 0) -> None:
        self.prefix = prefix
        self.next_id = start

    def allocate(self) -> str:
        lid = f"{self.prefix}{self.next_id}"
        self.next_id += 1
        return lid


def pack_entity(
    entry: str,
    pred_values: Mapping[str, str],
    mapper: PredicateMapper,
    width: int,
) -> tuple[list[list], set[str]]:
    """Pack one entity's (predicate -> value) map into one or more rows.

    Returns the rows (as full value lists matching the primary schema) and
    the set of predicates that landed on spill rows.
    """
    row_buffers: list[dict[int, tuple[str, str]]] = []
    spilled: set[str] = set()
    for predicate, value in pred_values.items():
        placed = False
        for row_index, buffer in enumerate(row_buffers):
            for column in mapper.columns_for(predicate):
                if column < width and column not in buffer:
                    buffer[column] = (predicate, value)
                    if row_index > 0:
                        spilled.add(predicate)
                    placed = True
                    break
            if placed:
                break
        if not placed:
            candidates = [c for c in mapper.columns_for(predicate) if c < width]
            if not candidates:
                raise LoadError(
                    f"predicate {predicate!r} maps to no column below width {width}"
                )
            row_buffers.append({candidates[0]: (predicate, value)})
            if len(row_buffers) > 1:
                spilled.add(predicate)

    spill_flag = 1 if len(row_buffers) > 1 else 0
    rows = []
    for buffer in row_buffers:
        row: list = [entry, spill_flag]
        for column in range(width):
            pair = buffer.get(column)
            row.append(pair[0] if pair else None)
            row.append(pair[1] if pair else None)
        rows.append(row)
    return rows, spilled


def _group_direct(graph: Graph) -> Iterable[tuple[str, dict[str, list[str]]]]:
    for subject in graph.subjects():
        grouped: dict[str, list[str]] = {}
        for triple in graph.triples_for_subject(subject):
            grouped.setdefault(triple.predicate.value, []).append(
                _check_key(term_key(triple.object))
            )
        yield _check_key(term_key(subject)), grouped


def _group_reverse(graph: Graph) -> Iterable[tuple[str, dict[str, list[str]]]]:
    for obj in graph.objects():
        grouped: dict[str, list[str]] = {}
        for triple in graph.triples_for_object(obj):
            grouped.setdefault(triple.predicate.value, []).append(
                _check_key(term_key(triple.subject))
            )
        yield _check_key(term_key(obj)), grouped


class Loader:
    """Shreds triples into one store's DPH/DS/RPH/RS tables."""

    def __init__(
        self,
        schema: DB2RDFSchema,
        backend: Backend,
        direct_mapper: PredicateMapper,
        reverse_mapper: PredicateMapper,
    ) -> None:
        self.schema = schema
        self.backend = backend
        self.direct_mapper = direct_mapper
        self.reverse_mapper = reverse_mapper
        self.direct_lids = _LidAllocator(DIRECT_LID_PREFIX)
        self.reverse_lids = _LidAllocator(REVERSE_LID_PREFIX)
        # Predicates the bulk loader has seen, per side. A predicate outside
        # this set arriving through insert_triple is *novel*: its first
        # placement is remembered (online_*) and preferred afterwards.
        self.bulk_direct_preds: set[str] = set()
        self.bulk_reverse_preds: set[str] = set()
        self.online_direct: dict[str, int] = {}
        self.online_reverse: dict[str, int] = {}

    # ------------------------------------------------------------ bulk load

    def bulk_load(
        self, graph: Graph, batch_size: int = 5000, top_k_stats: int = 1000
    ) -> LoadReport:
        """Shred a whole graph into both directions (the §2.3 bulk path).

        The loader already visits every entity group while shredding, so
        dataset statistics (counts, top-k constants, per-predicate
        distincts and sketches) are collected in the same pass and shipped
        on the report — no second scan of the graph.
        """
        collector = StatsCollector(top_k=top_k_stats)
        direct = self._load_side(
            _group_direct(graph),
            self.schema.dph,
            self.schema.ds,
            self.direct_mapper,
            self.schema.direct_columns,
            self.direct_lids,
            batch_size,
            self.bulk_direct_preds,
            collector.direct_entity,
        )
        reverse = self._load_side(
            _group_reverse(graph),
            self.schema.rph,
            self.schema.rs,
            self.reverse_mapper,
            self.schema.reverse_columns,
            self.reverse_lids,
            batch_size,
            self.bulk_reverse_preds,
            collector.reverse_entity,
        )
        return LoadReport(
            triples=len(graph),
            direct=direct,
            reverse=reverse,
            stats=collector.finish(),
        )

    def _load_side(
        self,
        grouped_entities: Iterable[tuple[str, dict[str, list[str]]]],
        primary_table: str,
        secondary_table: str,
        mapper: PredicateMapper,
        width: int,
        lids: _LidAllocator,
        batch_size: int,
        seen_predicates: set[str] | None = None,
        profile=None,
    ) -> SideMetadata:
        meta = SideMetadata()
        primary_batch: list[list] = []
        secondary_batch: list[tuple[str, str]] = []
        for entry, grouped in grouped_entities:
            meta.entities += 1
            if seen_predicates is not None:
                seen_predicates.update(grouped)
            if profile is not None:
                profile(entry, {p: len(vs) for p, vs in grouped.items()})
            pred_values: dict[str, str] = {}
            for predicate, values in grouped.items():
                if len(values) > 1:
                    lid = lids.allocate()
                    secondary_batch.extend((lid, value) for value in values)
                    pred_values[predicate] = lid
                    meta.multivalued.add(predicate)
                else:
                    pred_values[predicate] = values[0]
            rows, spilled = pack_entity(entry, pred_values, mapper, width)
            meta.rows += len(rows)
            meta.spill_rows += len(rows) - 1
            meta.spill_predicates |= spilled
            primary_batch.extend(rows)
            if len(primary_batch) >= batch_size:
                self.backend.insert_many(primary_table, primary_batch)
                primary_batch = []
            if len(secondary_batch) >= batch_size:
                self.backend.insert_many(secondary_table, secondary_batch)
                secondary_batch = []
        if primary_batch:
            self.backend.insert_many(primary_table, primary_batch)
        if secondary_batch:
            self.backend.insert_many(secondary_table, secondary_batch)
        return meta

    # ---------------------------------------------------------- incremental

    def insert_triple(self, triple: Triple) -> SideMetadata:
        """Insert one triple incrementally; returns the metadata deltas.

        ``delta.inserted`` is False for an exact duplicate, in which case
        neither side was touched."""
        subject_key = _check_key(term_key(triple.subject))
        predicate = triple.predicate.value
        object_key = _check_key(term_key(triple.object))

        delta = SideMetadata()
        inserted = self._insert_one_side(
            self.schema.dph,
            self.schema.ds,
            self.direct_mapper,
            self.schema.direct_columns,
            self.direct_lids,
            DIRECT_LID_PREFIX,
            subject_key,
            predicate,
            object_key,
            delta,
            self.bulk_direct_preds,
            self.online_direct,
        )
        reverse_delta = SideMetadata()
        if inserted:
            # The direct side is authoritative for duplicate detection; a
            # duplicate never reaches the reverse tables.
            self._insert_one_side(
                self.schema.rph,
                self.schema.rs,
                self.reverse_mapper,
                self.schema.reverse_columns,
                self.reverse_lids,
                REVERSE_LID_PREFIX,
                object_key,
                predicate,
                subject_key,
                reverse_delta,
                self.bulk_reverse_preds,
                self.online_reverse,
            )
        # Fold both directions into one delta for the caller; direct fields
        # keep their meaning via the two metadata objects on the store.
        delta.reverse_part = reverse_delta  # type: ignore[attr-defined]
        delta.inserted = inserted  # type: ignore[attr-defined]
        return delta

    def _insert_one_side(
        self,
        primary_table: str,
        secondary_table: str,
        mapper: PredicateMapper,
        width: int,
        lids: _LidAllocator,
        lid_prefix: str,
        entry: str,
        predicate: str,
        value: str,
        delta: SideMetadata,
        bulk_seen: set[str],
        online: dict[str, int],
    ) -> bool:
        rows = self._fetch_entity_rows(primary_table, entry, width)
        candidates = [c for c in mapper.columns_for(predicate) if c < width]
        if not candidates:
            raise LoadError(
                f"predicate {predicate!r} maps to no column below width {width}"
            )
        # A previously assigned online column leads the candidate list so
        # the predicate keeps landing where it first did.
        assigned = online.get(predicate)
        if assigned is not None and assigned in candidates and assigned != candidates[0]:
            candidates = [assigned] + [c for c in candidates if c != assigned]

        def record_assignment(column: int) -> None:
            """First fresh-cell placement of a post-bulk novel predicate."""
            if predicate not in bulk_seen and predicate not in online:
                online[predicate] = column
                delta.online_assignments[predicate] = column

        # Case 1: predicate already present on some row.
        for row in rows:
            for column in candidates:
                if row["preds"][column] == predicate:
                    existing = row["vals"][column]
                    if existing == value:
                        return False  # duplicate triple: no-op
                    if existing is not None and existing.startswith(lid_prefix):
                        if self._secondary_contains(
                            secondary_table, existing, value
                        ):
                            return False  # already in the multi-valued set
                        self.backend.insert_many(
                            secondary_table, [(existing, value)]
                        )
                        return True
                    # Upgrade a single value to a multi-valued lid.
                    lid = lids.allocate()
                    self.backend.insert_many(
                        secondary_table, [(lid, existing), (lid, value)]
                    )
                    self._update_cell(primary_table, row, column, predicate, lid)
                    delta.multivalued.add(predicate)
                    return True

        # Case 2: predicate absent; place it in the first free candidate.
        for row_index, row in enumerate(rows):
            for column in candidates:
                if row["preds"][column] is None:
                    self._update_cell(primary_table, row, column, predicate, value)
                    record_assignment(column)
                    if row_index > 0:
                        delta.spill_predicates.add(predicate)
                    return True

        # Case 3: no free candidate anywhere; create a (spill) row.
        spill_flag = 1 if rows else 0
        new_row: list = [entry, spill_flag]
        for column in range(width):
            is_target = column == candidates[0]
            new_row.append(predicate if is_target else None)
            new_row.append(value if is_target else None)
        record_assignment(candidates[0])
        if rows:
            # Existing rows must be flagged as spilled too.
            self.backend.execute(
                ast.Update(
                    primary_table,
                    ((SPILL, ast.Const(1)),),
                    ast.BinOp("=", ast.Column(None, ENTRY), ast.Const(entry)),
                )
            )
            delta.spill_rows += 1
            delta.spill_predicates.add(predicate)
        else:
            delta.entities += 1
        self.backend.insert_many(primary_table, [new_row])
        delta.rows += 1
        return True

    # -------------------------------------------------------------- delete

    def delete_triple(self, triple: Triple) -> bool:
        """Delete one triple; returns False if it was not stored.

        Multi-valued cells shrink through the secondary table and demote
        back to a direct value when one object remains; a cell whose last
        predicate is cleared leaves a NULL pair, and an entity row with no
        predicates left is dropped.
        """
        subject_key = term_key(triple.subject)
        predicate = triple.predicate.value
        object_key = term_key(triple.object)
        existed = self._delete_one_side(
            self.schema.dph,
            self.schema.ds,
            self.direct_mapper,
            self.schema.direct_columns,
            DIRECT_LID_PREFIX,
            subject_key,
            predicate,
            object_key,
        )
        if existed:
            self._delete_one_side(
                self.schema.rph,
                self.schema.rs,
                self.reverse_mapper,
                self.schema.reverse_columns,
                REVERSE_LID_PREFIX,
                object_key,
                predicate,
                subject_key,
            )
        return existed

    def _delete_one_side(
        self,
        primary_table: str,
        secondary_table: str,
        mapper: PredicateMapper,
        width: int,
        lid_prefix: str,
        entry: str,
        predicate: str,
        value: str,
    ) -> bool:
        rows = self._fetch_entity_rows(primary_table, entry, width)
        candidates = [c for c in mapper.columns_for(predicate) if c < width]
        for row in rows:
            for column in candidates:
                if row["preds"][column] != predicate:
                    continue
                stored = row["vals"][column]
                if stored == value:
                    self._clear_cell(primary_table, row, column)
                    self._drop_row_if_empty(primary_table, row)
                    return True
                if stored is not None and stored.startswith(lid_prefix):
                    if not self._secondary_contains(secondary_table, stored, value):
                        return False
                    self.backend.execute(
                        ast.Delete(
                            secondary_table,
                            ast.BinOp(
                                "AND",
                                ast.BinOp(
                                    "=", ast.Column(None, "l_id"), ast.Const(stored)
                                ),
                                ast.BinOp(
                                    "=", ast.Column(None, "elm"), ast.Const(value)
                                ),
                            ),
                        )
                    )
                    remaining = self._secondary_values(secondary_table, stored)
                    if len(remaining) == 1:
                        # demote back to a direct single value
                        self._update_cell(
                            primary_table, row, column, predicate, remaining[0]
                        )
                        self.backend.execute(
                            ast.Delete(
                                secondary_table,
                                ast.BinOp(
                                    "=", ast.Column(None, "l_id"), ast.Const(stored)
                                ),
                            )
                        )
                    elif not remaining:
                        self._clear_cell(primary_table, row, column)
                        self._drop_row_if_empty(primary_table, row)
                    return True
                return False
        return False

    def _secondary_values(self, secondary_table: str, lid: str) -> list[str]:
        query = ast.Select(
            items=(ast.SelectItem(ast.Column("S", "elm")),),
            from_=ast.TableRef(secondary_table, "S"),
            where=ast.BinOp("=", ast.Column("S", "l_id"), ast.Const(lid)),
        )
        _, rows = self.backend.execute(query)
        return [row[0] for row in rows]

    def _clear_cell(self, primary_table: str, row: dict, column: int) -> None:
        self._update_cell(primary_table, row, column, None, None)

    def _drop_row_if_empty(self, primary_table: str, row: dict) -> None:
        if any(pred is not None for pred in row["preds"]):
            return
        conditions: list[ast.Expr] = [
            ast.BinOp("=", ast.Column(None, ENTRY), ast.Const(row["entry"]))
        ]
        for i in range(len(row["preds"])):
            conditions.append(ast.IsNull(ast.Column(None, pred_col(i))))
        self.backend.execute(ast.Delete(primary_table, ast.conjoin(conditions)))

    def _fetch_entity_rows(
        self, primary_table: str, entry: str, width: int
    ) -> list[dict]:
        items = [ast.SelectItem(ast.Column("T", ENTRY)), ast.SelectItem(ast.Column("T", SPILL))]
        for i in range(width):
            items.append(ast.SelectItem(ast.Column("T", pred_col(i))))
            items.append(ast.SelectItem(ast.Column("T", val_col(i))))
        query = ast.Select(
            items=tuple(items),
            from_=ast.TableRef(primary_table, "T"),
            where=ast.BinOp("=", ast.Column("T", ENTRY), ast.Const(entry)),
        )
        _, raw_rows = self.backend.execute(query)
        rows = []
        for raw in raw_rows:
            rows.append(
                {
                    "entry": raw[0],
                    "spill": raw[1],
                    "preds": list(raw[2::2]),
                    "vals": list(raw[3::2]),
                }
            )
        return rows

    def _secondary_contains(self, secondary_table: str, lid: str, value: str) -> bool:
        query = ast.Select(
            items=(ast.SelectItem(ast.Const(1)),),
            from_=ast.TableRef(secondary_table, "S"),
            where=ast.BinOp(
                "AND",
                ast.BinOp("=", ast.Column("S", "l_id"), ast.Const(lid)),
                ast.BinOp("=", ast.Column("S", "elm"), ast.Const(value)),
            ),
        )
        _, rows = self.backend.execute(query)
        return bool(rows)

    def _update_cell(
        self,
        primary_table: str,
        row: dict,
        column: int,
        predicate: str | None,
        value: str | None,
    ) -> None:
        """Update one pred/val cell of a specific entity row.

        Rows of one entity are distinguished by the predicate content of the
        row's cells (entities have no surrogate row key), so the WHERE clause
        pins the row by entry plus its current cell state.
        """
        conditions: list[ast.Expr] = [
            ast.BinOp("=", ast.Column(None, ENTRY), ast.Const(row["entry"]))
        ]
        for i, (existing_pred, existing_val) in enumerate(
            zip(row["preds"], row["vals"])
        ):
            if existing_pred is None:
                conditions.append(ast.IsNull(ast.Column(None, pred_col(i))))
            else:
                conditions.append(
                    ast.BinOp(
                        "=", ast.Column(None, pred_col(i)), ast.Const(existing_pred)
                    )
                )
                conditions.append(
                    ast.BinOp(
                        "=", ast.Column(None, val_col(i)), ast.Const(existing_val)
                    )
                )
        self.backend.execute(
            ast.Update(
                primary_table,
                (
                    (pred_col(column), ast.Const(predicate)),
                    (val_col(column), ast.Const(value)),
                ),
                ast.conjoin(conditions),
            )
        )
        row["preds"][column] = predicate
        row["vals"][column] = value
