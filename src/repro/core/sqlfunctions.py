"""RDF-aware scalar SQL functions shared by both backends.

Stored column values are canonical term keys (bare URIs, ``_:`` blank nodes,
N3-quoted literals). FILTER translation needs value-level views of those
keys — numeric value, lexical form, language tag, datatype — which these
functions provide. They are registered with the pure-Python engine's
function registry at import time and with every sqlite3 connection the
sqlite backend opens, so generated SQL behaves identically on both.
"""

from __future__ import annotations

import re

from ..rdf.terms import Literal, XSD_STRING, term_from_key
from ..relational.expressions import register_function

_NUMERIC_RE = re.compile(r"[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?$")


def _as_literal(key: str | None) -> Literal | None:
    if key is None or not key.startswith('"'):
        return None
    term = term_from_key(key)
    return term if isinstance(term, Literal) else None


def rdf_num(key: str | None) -> float | None:
    """Numeric value of a term key, or NULL when not numeric.

    Mirrors the reference evaluator (and SPARQL's operator table): only
    numeric-typed literals participate in numeric comparisons.
    """
    literal = _as_literal(key)
    if literal is None or not literal.is_numeric:
        return None
    text = literal.value.strip()
    if not _NUMERIC_RE.match(text):
        return None
    try:
        return float(text)
    except ValueError:
        return None


def rdf_ord(key: str | None) -> str | None:
    """Ordering-comparable string value: plain or xsd:string literals only
    (URIs and other datatypes are not orderable, SPARQL §11.3)."""
    literal = _as_literal(key)
    if literal is None or literal.lang is not None:
        return None
    if literal.datatype not in (None, XSD_STRING):
        return None
    return literal.value


def rdf_str(key: str | None) -> str | None:
    """Lexical form: literal value, URI text, or blank-node label."""
    if key is None:
        return None
    if key.startswith('"'):
        literal = _as_literal(key)
        return literal.value if literal is not None else None
    return key


def rdf_lang(key: str | None) -> str | None:
    literal = _as_literal(key)
    if literal is None:
        return None
    return literal.lang or ""


def rdf_datatype(key: str | None) -> str | None:
    literal = _as_literal(key)
    if literal is None:
        return None
    return literal.datatype or XSD_STRING


def rdf_is_uri(key: str | None) -> int | None:
    if key is None:
        return None
    return 0 if key.startswith(('"', "_:")) else 1


def rdf_is_literal(key: str | None) -> int | None:
    if key is None:
        return None
    return 1 if key.startswith('"') else 0


def rdf_is_blank(key: str | None) -> int | None:
    if key is None:
        return None
    return 1 if key.startswith("_:") else 0


def rdf_regex(key: str | None, pattern: str | None, flags: str | None) -> int | None:
    if key is None or pattern is None:
        return None
    text = rdf_str(key)
    if text is None:
        return None
    re_flags = re.IGNORECASE if flags and "i" in flags else 0
    return 1 if re.search(pattern, text, re_flags) else 0


def rdf_lang_matches(lang: str | None, pattern: str | None) -> int | None:
    if lang is None or pattern is None:
        return None
    lang_l, pattern_l = lang.lower(), pattern.lower()
    if pattern_l == "*":
        return 1 if lang_l else 0
    return 1 if lang_l == pattern_l or lang_l.startswith(pattern_l + "-") else 0


def rdf_ebv(key: str | None) -> int | None:
    """Effective boolean value of a term key (NULL on error/unbound)."""
    literal = _as_literal(key)
    if literal is None:
        return None
    if literal.datatype is not None and literal.datatype.endswith("#boolean"):
        return 1 if literal.value in ("true", "1") else 0
    number = rdf_num(key)
    if number is not None and literal.datatype is not None:
        return 1 if number != 0 else 0
    if literal.datatype is None and literal.lang is None:
        return 1 if literal.value else 0
    return None


ALL_FUNCTIONS = {
    "RDF_NUM": rdf_num,
    "RDF_STR": rdf_str,
    "RDF_ORD": rdf_ord,
    "RDF_LANG": rdf_lang,
    "RDF_DATATYPE": rdf_datatype,
    "RDF_ISURI": rdf_is_uri,
    "RDF_ISLITERAL": rdf_is_literal,
    "RDF_ISBLANK": rdf_is_blank,
    "RDF_REGEX": rdf_regex,
    "RDF_LANGMATCHES": rdf_lang_matches,
    "RDF_EBV": rdf_ebv,
}


def register_all() -> None:
    for name, fn in ALL_FUNCTIONS.items():
        register_function(name, fn)


register_all()
