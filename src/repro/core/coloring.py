"""Interference-graph coloring for predicate-to-column assignment (§2.2–2.3).

Two predicates *interfere* when some entity instantiates both; interfering
predicates must live in different columns or they force spill rows. Greedy
coloring of the interference graph packs non-co-occurring predicates into
shared columns, which is how the paper fits DBpedia's 53,976 predicates into
75 DPH columns (Table 4).

When the graph needs more colors than available columns, we color the most
valuable subset of predicates (by triple frequency, standing in for the
paper's "query workload and most frequently occurring predicates") and leave
the rest to the hash fallback — the ``c_{D⊗P} ⊕ h`` composition.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from ..rdf.graph import Graph
from .mapping import ColoringMapper, PredicateMapper


@dataclass
class InterferenceGraph:
    """Adjacency sets over predicate URIs plus per-predicate frequency."""

    adjacency: dict[str, set[str]] = field(default_factory=dict)
    frequency: Counter = field(default_factory=Counter)

    def add_predicate_set(self, predicates: Iterable, weight: int = 1) -> None:
        """Record one entity's predicate set: a clique in the graph.

        Predicates may be URI terms or plain strings; they are keyed by
        their URI string.
        """
        unique = list(
            dict.fromkeys(
                p.value if hasattr(p, "value") else str(p) for p in predicates
            )
        )
        for predicate in unique:
            self.adjacency.setdefault(predicate, set())
            self.frequency[predicate] += weight
        for position, left in enumerate(unique):
            for right in unique[position + 1:]:
                self.adjacency[left].add(right)
                self.adjacency[right].add(left)

    @property
    def predicates(self) -> list[str]:
        return list(self.adjacency)

    def degree(self, predicate: str) -> int:
        return len(self.adjacency.get(predicate, ()))

    def __len__(self) -> int:
        return len(self.adjacency)


def build_interference_graph(
    predicate_sets: Iterable[Iterable[str]],
) -> InterferenceGraph:
    """Build the interference graph from per-entity predicate sets."""
    graph = InterferenceGraph()
    for predicates in predicate_sets:
        graph.add_predicate_set(predicates)
    return graph


def direct_interference_graph(graph: Graph) -> InterferenceGraph:
    """Interference among outgoing predicates (drives DPH layout)."""
    return build_interference_graph(graph.predicate_sets_by_subject().values())


def reverse_interference_graph(graph: Graph) -> InterferenceGraph:
    """Interference among incoming predicates (drives RPH layout)."""
    return build_interference_graph(graph.predicate_sets_by_object().values())


@dataclass
class ColoringResult:
    """Outcome of coloring a dataset's interference graph."""

    assignment: dict[str, int]
    uncovered: list[str]
    total_predicates: int
    colors_used: int
    covered_triple_fraction: float

    @property
    def covered_predicate_fraction(self) -> float:
        if not self.total_predicates:
            return 1.0
        return len(self.assignment) / self.total_predicates

    def to_mapper(
        self, num_columns: int, fallback: PredicateMapper | None = None
    ) -> ColoringMapper:
        return ColoringMapper(self.assignment, num_columns, fallback)


def greedy_color(
    graph: InterferenceGraph, max_colors: int | None = None
) -> ColoringResult:
    """Greedy (Welsh–Powell style) coloring, largest frequency/degree first.

    Predicates that would need a color ``>= max_colors`` are left uncovered;
    ordering by frequency first means uncovered predicates are the rare ones,
    maximizing the fraction of triples stored in fixed columns.
    """
    order = sorted(
        graph.predicates,
        key=lambda p: (-graph.frequency[p], -graph.degree(p), p),
    )
    assignment: dict[str, int] = {}
    uncovered: list[str] = []
    for predicate in order:
        neighbor_colors = {
            assignment[neighbor]
            for neighbor in graph.adjacency[predicate]
            if neighbor in assignment
        }
        color = 0
        while color in neighbor_colors:
            color += 1
        if max_colors is not None and color >= max_colors:
            uncovered.append(predicate)
            continue
        assignment[predicate] = color

    total_frequency = sum(graph.frequency.values()) or 1
    covered_frequency = sum(graph.frequency[p] for p in assignment)
    return ColoringResult(
        assignment=assignment,
        uncovered=uncovered,
        total_predicates=len(graph),
        colors_used=len(set(assignment.values())) if assignment else 0,
        covered_triple_fraction=covered_frequency / total_frequency,
    )


def color_graph_for_store(
    graph: Graph,
    max_columns: int,
    sample_fraction: float | None = None,
    seed: int = 0,
) -> tuple[ColoringResult, ColoringResult]:
    """Color both directions of an RDF graph (returns direct, reverse).

    ``sample_fraction`` reproduces the §2.3 experiment of coloring from a
    random 10% sample of entities and loading the full dataset against that
    coloring (spills are then counted by the loader).
    """
    direct_sets = list(graph.predicate_sets_by_subject().values())
    reverse_sets = list(graph.predicate_sets_by_object().values())
    if sample_fraction is not None:
        rng = random.Random(seed)
        direct_sets = [s for s in direct_sets if rng.random() < sample_fraction]
        reverse_sets = [s for s in reverse_sets if rng.random() < sample_fraction]
    direct = greedy_color(build_interference_graph(direct_sets), max_columns)
    reverse = greedy_color(build_interference_graph(reverse_sets), max_columns)
    return direct, reverse


def coloring_report(
    name: str, result: ColoringResult
) -> dict[str, object]:
    """One row of the Table 4 report."""
    return {
        "dataset": name,
        "predicates": result.total_predicates,
        "columns": result.colors_used,
        "covered_predicates": len(result.assignment),
        "percent_covered": round(100.0 * result.covered_triple_fraction, 2),
    }
