"""Execution guardrails, retries, and deterministic fault injection.

Production stores bound runaway queries and survive crashes at arbitrary
points; this module gives the reproduction both properties and — just as
importantly — the machinery to *prove* them:

* **Guardrails.** A :class:`Budget` carries a per-query wall-clock
  deadline plus output-row and intermediate-row ceilings. It is threaded
  cooperatively through the minirel operator pipelines (every operator
  ``next()`` ticks it) and enforced on sqlite through
  ``set_progress_handler``. Trips raise :class:`QueryTimeoutError` /
  :class:`BudgetExceededError`, both under
  :class:`~repro.core.errors.StoreError`; ``QueryTimeoutError`` also
  subclasses the relational :class:`~repro.relational.errors.QueryTimeout`
  so the paper's timeout classification keeps working unchanged.
* **Retries + circuit breaking.** :class:`ResilientBackend` wraps any
  backend with a seeded-jitter exponential-backoff :class:`RetryPolicy`
  for :class:`TransientFaultError` and a per-backend
  :class:`CircuitBreaker` that fails fast with :class:`CircuitOpenError`
  (carrying breaker state) instead of hammering a sick backend.
* **Deterministic fault injection.** A :class:`FaultPlan` is a seeded
  schedule of :class:`Fault` rules — fail the Nth ``insert_many``, raise
  on ``fsync``, kill (or tear) WAL record K, fill the disk, lose the
  unsynced suffix of a record at power loss — and :class:`ChaosBackend`
  implements the backend interface while consulting the plan before every
  delegated operation. The crash-matrix test in
  ``tests/update/test_crash_matrix.py`` drives these through every step
  boundary of commit and WAL append, the disk-fault matrix in
  ``tests/update/test_disk_faults.py`` adds torn writes, bit flips,
  partial fsync, ENOSPC and rename-step crashes, and both assert recovery
  always lands on exactly the pre- or post-transaction state.

The relational substrate never imports this module: a :class:`Budget` is
handed down duck-typed (like tracing spans) and raises its own typed
errors from inside the executor's :class:`~repro.relational.executor.
Ticker`.
"""

from __future__ import annotations

import errno
import os
import random
import time
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from ..backends.base import Backend
from ..relational import ast
from ..relational.errors import QueryTimeout
from ..relational.types import ColumnType
from .errors import StoreError

# --------------------------------------------------------------------- errors


class GuardrailError(StoreError):
    """Base class for guardrail trips (timeouts and budget ceilings)."""


class QueryTimeoutError(GuardrailError, QueryTimeout):
    """The query's wall-clock deadline expired.

    Also a :class:`~repro.relational.errors.QueryTimeout`, so existing
    harness code that classifies timeouts keeps catching it.
    """


class BudgetExceededError(GuardrailError):
    """A row budget (output or intermediate) was exceeded."""

    def __init__(self, message: str, limit: int | None = None) -> None:
        super().__init__(message)
        self.limit = limit


class TransientFaultError(StoreError):
    """A retryable backend failure (injected by :class:`ChaosBackend`)."""


class CircuitOpenError(StoreError):
    """The per-backend circuit breaker is open: failing fast, not hanging."""

    def __init__(self, message: str, state: str, failures: int) -> None:
        super().__init__(message)
        self.state = state
        self.failures = failures


class SimulatedCrash(Exception):
    """Process death, simulated. Deliberately *not* a StoreError: nothing
    in the store may catch-and-continue past it — the test harness catches
    it, discards the store, and recovers from durable state alone."""


# --------------------------------------------------------------------- budget


class Budget:
    """Cooperative per-query execution guardrails.

    ``timeout`` is seconds of wall clock from construction;
    ``max_rows`` bounds the final result set; ``max_intermediate_rows``
    bounds total operator work (every row an operator produces or probes
    counts one tick). All three are optional and independent.

    The minirel executor ticks the budget from every operator loop; the
    sqlite backend maps the deadline onto its progress handler and counts
    handler firings (one per ~:data:`~repro.backends.sqlite.SqliteBackend.
    PROGRESS_OPS_BUDGET` VM instructions) against the intermediate
    ceiling — a work proxy, documented as best-effort.
    """

    __slots__ = (
        "timeout",
        "deadline",
        "max_rows",
        "max_intermediate_rows",
        "ticks",
        "tripped",
    )

    def __init__(
        self,
        timeout: float | None = None,
        max_rows: int | None = None,
        max_intermediate_rows: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.timeout = timeout
        self.deadline = clock() + timeout if timeout is not None else None
        self.max_rows = max_rows
        self.max_intermediate_rows = max_intermediate_rows
        #: intermediate rows ticked so far (minirel) / work units (sqlite)
        self.ticks = 0
        #: which guardrail tripped: None | "timeout" | "intermediate" | "rows"
        self.tripped: str | None = None

    def trip(self, reason: str) -> None:
        """Record a trip and raise the matching typed error."""
        self.tripped = reason
        if reason == "timeout":
            raise QueryTimeoutError(
                f"query exceeded its {self.timeout}s timeout"
            )
        if reason == "intermediate":
            raise BudgetExceededError(
                f"query exceeded max_intermediate_rows="
                f"{self.max_intermediate_rows}",
                limit=self.max_intermediate_rows,
            )
        raise BudgetExceededError(
            f"query exceeded max_rows={self.max_rows}", limit=self.max_rows
        )

    def raise_tripped(self, cause: BaseException | None = None) -> None:
        """Re-raise the recorded trip (set by the sqlite progress handler,
        which can only return an abort flag, not raise)."""
        reason = self.tripped or "timeout"
        try:
            self.trip(reason)
        except GuardrailError as exc:
            raise exc from cause

    def enforce_output(self, count: int) -> None:
        """Check the final result size against ``max_rows``."""
        if self.max_rows is not None and count > self.max_rows:
            self.trip("rows")

    def __repr__(self) -> str:
        return (
            f"Budget(timeout={self.timeout}, max_rows={self.max_rows}, "
            f"max_intermediate_rows={self.max_intermediate_rows}, "
            f"ticks={self.ticks}, tripped={self.tripped})"
        )


# ------------------------------------------------------- retries and breaking


class RetryPolicy:
    """Seeded-jitter exponential backoff for transient backend faults.

    Attempt ``n`` (0-based) sleeps ``min(max_delay, base_delay * 2**n)``
    scaled by a jitter factor in ``[0.5, 1.0)`` drawn from a seeded RNG,
    so a schedule is fully reproducible from its seed. ``sleep`` is
    injectable for tests.
    """

    def __init__(
        self,
        attempts: int = 3,
        base_delay: float = 0.01,
        max_delay: float = 1.0,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.seed = seed
        self.sleep = sleep
        self._rng = random.Random(seed)

    def delays(self) -> Iterator[float]:
        """The backoff schedule: one delay per retry (attempts - 1 total)."""
        for attempt in range(self.attempts - 1):
            base = min(self.max_delay, self.base_delay * (2**attempt))
            yield base * (0.5 + self._rng.random() / 2)


class CircuitBreaker:
    """Consecutive-failure circuit breaker: closed → open → half-open.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, calls are refused until ``reset_timeout`` seconds pass, after
    which one probe is allowed (half-open). A probe success closes the
    circuit; a probe failure re-opens it immediately.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self.state = "closed"  # closed | open | half-open
        self.failures = 0
        self.opened_at: float | None = None

    def allow(self) -> bool:
        if self.state == "closed":
            return True
        if self.state == "open":
            assert self.opened_at is not None
            if self._clock() - self.opened_at >= self.reset_timeout:
                self.state = "half-open"
                return True
            return False
        return True  # half-open: the single probe is in flight

    def record_success(self) -> None:
        self.state = "closed"
        self.failures = 0
        self.opened_at = None

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == "half-open" or self.failures >= self.failure_threshold:
            self.state = "open"
            self.opened_at = self._clock()


class ResilientBackend(Backend):
    """A backend wrapper: retry transient faults, break circuits.

    Only :class:`TransientFaultError` is retried — real errors (syntax,
    guardrail trips, :class:`SimulatedCrash`) propagate untouched. Every
    underlying failure feeds the breaker; once it opens, calls fail fast
    with :class:`CircuitOpenError` carrying the breaker state instead of
    hanging on a sick backend. ``metrics`` counts retries, faults seen,
    breaker opens, and short-circuited calls; the profiled path also
    reports per-query retries as span counters.
    """

    def __init__(
        self,
        inner: Backend,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.inner = inner
        self.retry = retry or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self.name = f"resilient({inner.name})"
        self.metrics: dict[str, int] = {
            "retries": 0,
            "faults": 0,
            "breaker_opens": 0,
            "short_circuits": 0,
        }

    # ------------------------------------------------------------ machinery

    def _guarded(self, op: str, call: Callable[[], Any]) -> Any:
        breaker = self.breaker
        if not breaker.allow():
            self.metrics["short_circuits"] += 1
            raise CircuitOpenError(
                f"circuit open for backend {self.inner.name!r}: refusing "
                f"{op} after {breaker.failures} consecutive faults",
                state=breaker.state,
                failures=breaker.failures,
            )
        delays = self.retry.delays()
        while True:
            try:
                result = call()
            except TransientFaultError as exc:
                self.metrics["faults"] += 1
                breaker.record_failure()
                if breaker.state == "open":
                    self.metrics["breaker_opens"] += 1
                    raise CircuitOpenError(
                        f"circuit opened for backend {self.inner.name!r} "
                        f"during {op} after {breaker.failures} consecutive "
                        f"faults: {exc}",
                        state=breaker.state,
                        failures=breaker.failures,
                    ) from exc
                try:
                    delay = next(delays)
                except StopIteration:
                    raise exc from None
                self.metrics["retries"] += 1
                if delay > 0:
                    self.retry.sleep(delay)
            else:
                breaker.record_success()
                return result

    # ----------------------------------------------------- backend protocol

    def create_table(
        self,
        table_name: str,
        columns: Sequence[tuple[str, ColumnType]],
        if_not_exists: bool = False,
    ) -> None:
        self._guarded(
            "create_table",
            lambda: self.inner.create_table(table_name, columns, if_not_exists),
        )

    def create_index(
        self, index_name: str, table_name: str, columns: Sequence[str]
    ) -> None:
        self._guarded(
            "create_index",
            lambda: self.inner.create_index(index_name, table_name, columns),
        )

    def insert_many(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        # Materialize once so a retried call re-sends identical rows.
        materialized = rows if isinstance(rows, list) else list(rows)
        return self._guarded(
            "insert_many", lambda: self.inner.insert_many(table_name, materialized)
        )

    def execute(
        self,
        statement: ast.Statement | str,
        timeout: float | None = None,
        budget: Any = None,
        snapshot: Any = None,
    ) -> tuple[list[str], list[tuple]]:
        return self._guarded(
            "execute",
            lambda: self.inner.execute(
                statement, timeout=timeout, budget=budget, snapshot=snapshot
            ),
        )

    def execute_profiled(
        self,
        statement: ast.Statement | str,
        timeout: float | None = None,
        tracer: Any = None,
        budget: Any = None,
        snapshot: Any = None,
    ) -> tuple[list[str], list[tuple]]:
        if tracer is None or not tracer.enabled:
            return self.execute(
                statement, timeout=timeout, budget=budget, snapshot=snapshot
            )
        before = self.metrics["retries"]
        with tracer.span("resilient", backend=self.inner.name) as span:
            result = self._guarded(
                "execute",
                lambda: self.inner.execute_profiled(
                    statement,
                    timeout=timeout,
                    tracer=tracer,
                    budget=budget,
                    snapshot=snapshot,
                ),
            )
            span.set("retries", self.metrics["retries"] - before)
            span.set("breaker", self.breaker.state)
        return result

    def table_names(self) -> list[str]:
        return self.inner.table_names()

    def row_count(self, table_name: str) -> int:
        return self.inner.row_count(table_name)

    def sql_text(self, statement: ast.Statement) -> str:
        return self.inner.sql_text(statement)

    # Write brackets and snapshots delegate explicitly: the Backend base
    # class has (no-op) defaults for these, so ``__getattr__`` would never
    # fire and the inner backend's MVCC machinery would be silently skipped.

    @property
    def supports_snapshots(self) -> bool:  # type: ignore[override]
        return self.inner.supports_snapshots

    def begin_write(self) -> None:
        self.inner.begin_write()

    def commit_write(self) -> None:
        self.inner.commit_write()

    def abort_write(self) -> None:
        self.inner.abort_write()

    def open_snapshot(self) -> Any:
        return self.inner.open_snapshot()

    def __getattr__(self, attr: str) -> Any:
        # Backend extras (explain_query_plan, connection, db) pass through.
        return getattr(self.inner, attr)


# ------------------------------------------------------------ fault injection


@dataclass(frozen=True)
class Fault:
    """One scheduled fault.

    ``op`` names a backend operation (``"execute"``, ``"insert_many"``,
    ``"create_table"``, ``"create_index"``, or ``"any"`` to count every
    operation) or a WAL step — the append steps ``"append.start"`` /
    ``"append.write"`` / ``"append.flush"`` / ``"append.fsync"``, the
    rotation step ``"rotate.seal"``, and the
    checkpoint/compaction steps ``"checkpoint.write"`` /
    ``"checkpoint.sync"`` / ``"checkpoint.rename"`` /
    ``"manifest.write"`` / ``"manifest.rename"`` / ``"compact.unlink"``.
    ``at`` is the 1-based occurrence of that op at which the fault fires.

    ``kind`` selects what happens:

    * ``"transient"`` — retryable :class:`TransientFaultError`;
    * ``"crash"`` — :class:`SimulatedCrash` (process death);
    * ``"enospc"`` — ``OSError(ENOSPC)``, the disk filling up mid-write;
      the journal reacts by truncating the partial record and raising
      :class:`~repro.update.errors.WalWriteError`, which the transaction
      unwinds — the process survives.

    ``torn_bytes`` applies to ``append.write`` crashes: that many bytes
    of the record are written before the process dies, modelling a torn
    journal tail. ``durable_bytes`` applies to ``append.fsync`` crashes:
    the file is truncated back to that many bytes past the record's start
    offset before dying, modelling a *partial fsync* — the OS accepted
    the whole write but only a prefix reached stable storage when power
    was lost.
    """

    op: str
    at: int
    kind: str = "transient"
    torn_bytes: int | None = None
    durable_bytes: int | None = None


class FaultPlan:
    """A deterministic schedule of faults, keyed by (op, occurrence).

    The plan is consulted by :class:`ChaosBackend` for backend operations
    and by :meth:`wal_hook` for WAL append steps; ``fired`` records every
    fault actually raised, in order, for assertions.
    """

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self._by_op: dict[str, dict[int, Fault]] = {}
        for fault in faults:
            self._by_op.setdefault(fault.op, {})[fault.at] = fault
        self.fired: list[Fault] = []

    def match(self, op: str, op_count: int, total_count: int) -> Fault | None:
        fault = self._by_op.get(op, {}).get(op_count)
        if fault is None:
            fault = self._by_op.get("any", {}).get(total_count)
        return fault

    def fire(self, fault: Fault, where: str) -> None:
        """Raise ``fault``; called once the schedule matched."""
        self.fired.append(fault)
        if fault.kind == "crash":
            raise SimulatedCrash(f"injected crash at {where}")
        if fault.kind == "enospc":
            raise OSError(
                errno.ENOSPC, f"injected disk-full fault at {where}"
            )
        raise TransientFaultError(f"injected transient fault at {where}")

    @classmethod
    def random(
        cls,
        seed: int,
        ops: Sequence[str] = ("execute", "insert_many"),
        horizon: int = 300,
        rate: float = 0.15,
        max_consecutive: int = 2,
        kind: str = "transient",
    ) -> "FaultPlan":
        """A seeded random schedule: each of the first ``horizon``
        occurrences of each op faults with probability ``rate``, with at
        most ``max_consecutive`` faulted occurrences in a row (so a retry
        policy with ``attempts > max_consecutive`` always gets through).
        """
        rng = random.Random(seed)
        faults: list[Fault] = []
        for op in ops:
            run = 0
            for at in range(1, horizon + 1):
                if run < max_consecutive and rng.random() < rate:
                    faults.append(Fault(op=op, at=at, kind=kind))
                    run += 1
                else:
                    run = 0
        return cls(faults)

    def wal_hook(self) -> Callable[[str, dict], None]:
        """A :class:`~repro.update.wal.WriteAheadLog` fault hook driven by
        this plan: counts journal steps (append, rotation, checkpoint,
        manifest, compaction) and fires matching faults. A ``torn_bytes``
        crash on ``append.write`` writes that prefix of the record (and
        flushes it) before dying, leaving a torn tail. A ``durable_bytes``
        crash on ``append.fsync`` truncates the file so only that prefix
        of the record survives — a partial fsync at power loss."""
        counts: Counter[str] = Counter()

        def hook(step: str, payload: dict) -> None:
            counts[step] += 1
            counts["any"] += 1
            fault = self.match(step, counts[step], counts["any"])
            if fault is None:
                return
            if (
                fault.kind == "crash"
                and fault.torn_bytes is not None
                and step == "append.write"
            ):
                payload["handle"].write(payload["data"][: fault.torn_bytes])
                payload["handle"].flush()
            if (
                fault.kind == "crash"
                and fault.durable_bytes is not None
                and step == "append.fsync"
            ):
                handle = payload["handle"]
                handle.flush()
                os.ftruncate(
                    handle.fileno(), payload["offset"] + fault.durable_bytes
                )
            self.fire(fault, f"wal {step} #{counts[step]}")

        return hook


class ChaosBackend(Backend):
    """A backend wrapper that injects scheduled faults before delegating.

    Counts operations (only while armed, so store construction and bulk
    load stay fault-free by default) and consults the :class:`FaultPlan`
    before every delegated call. Implements the full backend interface,
    so any store runs over it unchanged; compose under
    :class:`ResilientBackend` to exercise the retry path.
    """

    def __init__(
        self, inner: Backend, plan: FaultPlan | None = None, armed: bool = False
    ) -> None:
        self.inner = inner
        self.plan = plan if plan is not None else FaultPlan()
        self.armed = armed
        self.op_counts: Counter[str] = Counter()
        self.total_ops = 0
        self.name = f"chaos({inner.name})"

    def arm(self) -> None:
        """Start counting operations and injecting faults."""
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    def _step(self, op: str) -> None:
        if not self.armed:
            return
        self.op_counts[op] += 1
        self.total_ops += 1
        fault = self.plan.match(op, self.op_counts[op], self.total_ops)
        if fault is not None:
            self.plan.fire(
                fault, f"{self.inner.name}.{op} #{self.op_counts[op]}"
            )

    # ----------------------------------------------------- backend protocol

    def create_table(
        self,
        table_name: str,
        columns: Sequence[tuple[str, ColumnType]],
        if_not_exists: bool = False,
    ) -> None:
        self._step("create_table")
        self.inner.create_table(table_name, columns, if_not_exists)

    def create_index(
        self, index_name: str, table_name: str, columns: Sequence[str]
    ) -> None:
        self._step("create_index")
        self.inner.create_index(index_name, table_name, columns)

    def insert_many(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        self._step("insert_many")
        return self.inner.insert_many(table_name, rows)

    def execute(
        self,
        statement: ast.Statement | str,
        timeout: float | None = None,
        budget: Any = None,
        snapshot: Any = None,
    ) -> tuple[list[str], list[tuple]]:
        self._step("execute")
        return self.inner.execute(
            statement, timeout=timeout, budget=budget, snapshot=snapshot
        )

    def execute_profiled(
        self,
        statement: ast.Statement | str,
        timeout: float | None = None,
        tracer: Any = None,
        budget: Any = None,
        snapshot: Any = None,
    ) -> tuple[list[str], list[tuple]]:
        self._step("execute")
        return self.inner.execute_profiled(
            statement, timeout=timeout, tracer=tracer, budget=budget, snapshot=snapshot
        )

    def table_names(self) -> list[str]:
        return self.inner.table_names()

    def row_count(self, table_name: str) -> int:
        return self.inner.row_count(table_name)

    def sql_text(self, statement: ast.Statement) -> str:
        return self.inner.sql_text(statement)

    # Uncounted pass-throughs (Backend has defaults, so __getattr__ would
    # not fire): brackets and snapshots are not fault-injection points —
    # keeping them out of the op count preserves the numbering every
    # recorded crash-matrix scenario depends on.

    @property
    def supports_snapshots(self) -> bool:  # type: ignore[override]
        return self.inner.supports_snapshots

    def begin_write(self) -> None:
        self.inner.begin_write()

    def commit_write(self) -> None:
        self.inner.commit_write()

    def abort_write(self) -> None:
        self.inner.abort_write()

    def open_snapshot(self) -> Any:
        return self.inner.open_snapshot()

    def __getattr__(self, attr: str) -> Any:
        return getattr(self.inner, attr)
