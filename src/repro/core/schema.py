"""The DB2RDF relational schema (paper §2.1, Figure 1).

Four relations:

* **DPH** (Direct Primary Hash): one row per subject (plus spill rows);
  ``entry`` holds the subject, ``pred_i``/``val_i`` pairs hold its
  predicates and objects in dynamically assigned columns.
* **DS** (Direct Secondary Hash): multi-valued objects, keyed by lid.
* **RPH** / **RS**: the same structure reversed — one row per *object*,
  storing incoming predicates and their subjects.

Only the ``entry`` columns of DPH/RPH and the ``l_id`` columns of DS/RS are
indexed, matching the paper's evaluation setup ("no indexes on the pred_i
and val_i columns").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..backends.base import Backend
from ..relational.types import ColumnType

# Reserved prefixes marking secondary-hash keys. Data values are rejected by
# the loader if they collide (they never do for URI/N3-literal keys).
DIRECT_LID_PREFIX = "@lid:d:"
REVERSE_LID_PREFIX = "@lid:r:"

ENTRY = "entry"
SPILL = "spill"
LID = "l_id"
ELM = "elm"


def pred_col(i: int) -> str:
    return f"pred{i}"


def val_col(i: int) -> str:
    return f"val{i}"


@dataclass
class DB2RDFSchema:
    """Table names and widths for one store instance."""

    direct_columns: int
    reverse_columns: int
    prefix: str = ""

    dph: str = field(init=False)
    ds: str = field(init=False)
    rph: str = field(init=False)
    rs: str = field(init=False)

    def __post_init__(self) -> None:
        if self.direct_columns <= 0 or self.reverse_columns <= 0:
            raise ValueError("column counts must be positive")
        self.dph = self.prefix + "DPH"
        self.ds = self.prefix + "DS"
        self.rph = self.prefix + "RPH"
        self.rs = self.prefix + "RS"

    def primary_columns(self, width: int) -> list[tuple[str, ColumnType]]:
        columns: list[tuple[str, ColumnType]] = [
            (ENTRY, ColumnType.TEXT),
            (SPILL, ColumnType.INTEGER),
        ]
        for i in range(width):
            columns.append((pred_col(i), ColumnType.TEXT))
            columns.append((val_col(i), ColumnType.TEXT))
        return columns

    def secondary_columns(self) -> list[tuple[str, ColumnType]]:
        return [(LID, ColumnType.TEXT), (ELM, ColumnType.TEXT)]

    def create_all(self, backend: Backend) -> None:
        backend.create_table(self.dph, self.primary_columns(self.direct_columns))
        backend.create_table(self.ds, self.secondary_columns())
        backend.create_table(self.rph, self.primary_columns(self.reverse_columns))
        backend.create_table(self.rs, self.secondary_columns())
        backend.create_index(f"{self.dph}_entry", self.dph, [ENTRY])
        backend.create_index(f"{self.rph}_entry", self.rph, [ENTRY])
        backend.create_index(f"{self.ds}_lid", self.ds, [LID])
        backend.create_index(f"{self.rs}_lid", self.rs, [LID])

    def primary_row_width(self, width: int) -> int:
        return 2 + 2 * width
