"""A pure-Python relational engine: the substrate DB2RDF shreds RDF into.

Public surface:

* :class:`Database` — tables, indexes, ``execute()`` for SQL text or ASTs
* :mod:`repro.relational.ast` — the SQL AST the translator targets
* :func:`parse_sql` / :func:`render_statement` — text <-> AST
"""

from . import ast
from .catalog import Database, QueryResult
from .errors import (
    CatalogError,
    ExecutionError,
    PlanError,
    QueryTimeout,
    RelationalError,
    SqlSyntaxError,
)
from .index import HashIndex
from .parser import parse_expression, parse_query, parse_sql
from .render import render_expr, render_query, render_statement
from .table import Table, TableSchema
from .types import ColumnType

__all__ = [
    "CatalogError",
    "ColumnType",
    "Database",
    "ExecutionError",
    "HashIndex",
    "PlanError",
    "QueryResult",
    "QueryTimeout",
    "RelationalError",
    "SqlSyntaxError",
    "Table",
    "TableSchema",
    "ast",
    "parse_expression",
    "parse_query",
    "parse_sql",
    "render_expr",
    "render_query",
    "render_statement",
]
