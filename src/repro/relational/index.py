"""Hash indexes over heap tables.

The paper's DB2RDF configuration indexes only the ``entry`` columns of the
DPH and RPH relations (Section 4: "no indexes on the pred_i and val_i
columns"), so equality hash indexes are exactly the machinery the planner
needs; range predicates fall back to scans.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from .table import Table


class HashIndex:
    """An equality index on one or more columns of a table."""

    def __init__(self, name: str, table: Table, column_names: Sequence[str]) -> None:
        self.name = name
        self.table = table
        self.column_names = list(column_names)
        self.positions = [table.schema.position(c) for c in column_names]
        self._buckets: dict[tuple, list[int]] = defaultdict(list)
        #: number of probes served (observability for plan tests/tuning)
        self.probe_count = 0
        # Almost every index is single-column (the paper's entry indexes),
        # and _key runs once per inserted row: specialize that case.
        if len(self.positions) == 1:
            position = self.positions[0]

            def single_key(row: tuple) -> tuple:
                return (row[position],)

            self._key = single_key
        table.register_index(self)

    def _key(self, row: tuple) -> tuple:
        return tuple([row[position] for position in self.positions])

    def build(self, table: Table) -> None:
        self._buckets.clear()
        # Raw row iteration (not scan_with_ids): logically-deleted rows
        # retained for snapshot readers must stay reachable via the index.
        for row_id, row in enumerate(table.rows):
            if row is not None:
                self._buckets[self._key(row)].append(row_id)

    def insert(self, row_id: int, row: tuple) -> None:
        self._buckets[self._key(row)].append(row_id)

    def delete(self, row_id: int, row: tuple) -> None:
        bucket = self._buckets.get(self._key(row))
        if bucket is not None:
            try:
                bucket.remove(row_id)
            except ValueError:
                pass

    def lookup(self, key: tuple, version: int | None = None) -> Iterable[tuple]:
        """Yield rows whose indexed columns equal ``key``, visible at
        ``version`` (``None`` = the latest state)."""
        self.probe_count += 1
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        table = self.table
        rows = table.rows
        if version is None:
            died = table.died
            if not died:
                for row_id in bucket:
                    row = rows[row_id]
                    if row is not None:
                        yield row
                return
            for row_id in bucket:
                row = rows[row_id]
                if row is not None and row_id not in died:
                    yield row
            return
        born, died = table.born, table.died
        for row_id in bucket:
            row = rows[row_id]
            if row is None:
                continue
            if born.get(row_id, 0) > version:
                continue
            death = died.get(row_id)
            if death is not None and death <= version:
                continue
            yield row

    def covers(self, column_names: Sequence[str]) -> bool:
        """True when this index can serve an equality lookup on ``column_names``.

        The lookup must bind a *prefix* that is the whole index key here
        (hash indexes cannot answer partial-key probes).
        """
        lowered = [c.lower() for c in column_names]
        return [c.lower() for c in self.column_names] == lowered

    def distinct_keys(self) -> int:
        return len(self._buckets)

    def __repr__(self) -> str:
        return f"HashIndex({self.name!r} on {self.table.name}({', '.join(self.column_names)}))"


def find_index(table: Table, column_names: Sequence[str]) -> HashIndex | None:
    """Find an index on ``table`` exactly covering ``column_names``."""
    for index in table.indexes:
        if isinstance(index, HashIndex) and index.covers(column_names):
            return index
    return None
