"""The database catalog: tables, indexes, and the statement entry point."""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from . import ast
from .dictionary import StringDictionary
from .errors import CatalogError
from .index import HashIndex
from .mvcc import MvccController
from .table import Table, TableSchema
from .types import ColumnType

#: default rows per execution batch (0 = tuple-at-a-time)
DEFAULT_BATCH_SIZE = 256


class Database:
    """A collection of named tables and indexes plus ``execute()``.

    This is the top-level object of the relational substrate. It can be used
    standalone (``db.execute("SELECT ...")`` with SQL text) or programmatically
    with AST statements, which is how the RDF store drives it.

    ``batch_size`` selects the vectorized executor: operators stream lists
    of up to that many rows instead of single tuples (0 restores the
    tuple-at-a-time pipeline, kept as the measured baseline).
    ``intern_strings`` dictionary-encodes every TEXT value at insert time;
    results are decoded back to text at this ``execute`` boundary, so
    callers never observe ids (late materialization).
    """

    def __init__(
        self,
        batch_size: int = DEFAULT_BATCH_SIZE,
        intern_strings: bool = True,
    ) -> None:
        self.tables: dict[str, Table] = {}
        self.indexes: dict[str, HashIndex] = {}
        #: snapshot-read version state shared by every table
        self.mvcc = MvccController()
        self.batch_size = batch_size
        self.dictionary: StringDictionary | None = (
            StringDictionary() if intern_strings else None
        )

    # ------------------------------------------------------------------ DDL

    def create_table(
        self,
        name: str,
        columns: Sequence[tuple[str, ColumnType]],
        if_not_exists: bool = False,
    ) -> Table:
        key = name.lower()
        if key in self.tables:
            if if_not_exists:
                return self.tables[key]
            raise CatalogError(f"table {name!r} already exists")
        table = Table(TableSchema(name, columns))
        if self.dictionary is not None:
            table.set_dictionary(self.dictionary)
        self.mvcc.register(table)
        self.tables[key] = table
        return table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self.tables:
            raise CatalogError(f"no table {name!r}")
        table = self.tables.pop(key)
        for index_name in [n for n, i in self.indexes.items() if i.table is table]:
            del self.indexes[index_name]

    def create_index(
        self,
        name: str,
        table_name: str,
        columns: Sequence[str],
        if_not_exists: bool = False,
    ) -> HashIndex:
        key = name.lower()
        if key in self.indexes:
            if if_not_exists:
                return self.indexes[key]
            raise CatalogError(f"index {name!r} already exists")
        index = HashIndex(name, self.table(table_name), columns)
        self.indexes[key] = index
        return index

    def table(self, name: str) -> Table:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    # ------------------------------------------------------------------ DML

    def insert(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        return self.table(table_name).insert_many(rows)

    # ------------------------------------------------------------- execute

    def execute(
        self,
        statement: ast.Statement | str,
        deadline: float | None = None,
        trace: Any = None,
        budget: Any = None,
        version: int | None = None,
    ) -> "QueryResult":
        """Run a statement (AST node or SQL text); returns a QueryResult.

        ``deadline`` is an absolute ``time.monotonic()`` instant; queries
        cooperatively abort with :class:`QueryTimeout` once it passes.
        ``trace`` is an optional parent span (duck-typed, see
        ``repro.core.observe``) under which the planner reports
        per-operator rows-in/rows-out and timings. ``budget`` is an
        optional guardrail object (duck-typed,
        ``repro.core.resilience.Budget``) ticked by every operator loop.
        ``version`` pins every table scan to an MVCC snapshot version
        (``None`` reads the latest state, pending writes included).
        """
        from .planner import run_statement  # deferred: planner imports catalog

        if isinstance(statement, str):
            from .parser import parse_sql

            results: QueryResult | None = None
            for parsed in parse_sql(statement):
                results = run_statement(
                    self, parsed, deadline, trace, budget, version
                )
            if results is None:
                raise CatalogError("empty SQL script")
            return self._materialize(results)
        return self._materialize(
            run_statement(self, statement, deadline, trace, budget, version)
        )

    def _materialize(self, result: "QueryResult") -> "QueryResult":
        """Decode dictionary ids back to text at the result boundary."""
        if self.dictionary is None:
            return result
        # Decoded rows no longer honor affinity claims ("TEXT slots hold
        # only ids"); drop them so stale claims cannot leak into planning.
        result.column_types = None
        # Exact-type check against this database's EncodedString subclass:
        # every id in these rows was minted by our dictionary, and type()
        # is measurably cheaper than isinstance() on this per-value path.
        # Decoding runs column-at-a-time: transpose once (zip is a C loop),
        # decode each column in one comprehension, transpose back — instead
        # of detect-and-rebuild tuple work per row.
        cls = self.dictionary.cls
        lexicon = cls.lexicon
        rows = result.rows
        if rows and rows[0]:
            decoded = [
                [lexicon[v] if type(v) is cls else v for v in column]
                for column in zip(*rows)
            ]
            rows[:] = zip(*decoded)
        return result


class QueryResult:
    """Column names plus materialized rows (list of tuples)."""

    def __init__(self, columns: list[str], rows: list[tuple]) -> None:
        self.columns = columns
        self.rows = rows
        #: per-column affinities inferred by the planner (None = unknown);
        #: consumed by filter kernels when this result is scanned as a CTE
        self.column_types: list | None = None

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"QueryResult(columns={self.columns}, rows={len(self.rows)})"
