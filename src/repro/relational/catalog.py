"""The database catalog: tables, indexes, and the statement entry point."""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from . import ast
from .errors import CatalogError
from .index import HashIndex
from .mvcc import MvccController
from .table import Table, TableSchema
from .types import ColumnType


class Database:
    """A collection of named tables and indexes plus ``execute()``.

    This is the top-level object of the relational substrate. It can be used
    standalone (``db.execute("SELECT ...")`` with SQL text) or programmatically
    with AST statements, which is how the RDF store drives it.
    """

    def __init__(self) -> None:
        self.tables: dict[str, Table] = {}
        self.indexes: dict[str, HashIndex] = {}
        #: snapshot-read version state shared by every table
        self.mvcc = MvccController()

    # ------------------------------------------------------------------ DDL

    def create_table(
        self,
        name: str,
        columns: Sequence[tuple[str, ColumnType]],
        if_not_exists: bool = False,
    ) -> Table:
        key = name.lower()
        if key in self.tables:
            if if_not_exists:
                return self.tables[key]
            raise CatalogError(f"table {name!r} already exists")
        table = Table(TableSchema(name, columns))
        self.mvcc.register(table)
        self.tables[key] = table
        return table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self.tables:
            raise CatalogError(f"no table {name!r}")
        table = self.tables.pop(key)
        for index_name in [n for n, i in self.indexes.items() if i.table is table]:
            del self.indexes[index_name]

    def create_index(
        self,
        name: str,
        table_name: str,
        columns: Sequence[str],
        if_not_exists: bool = False,
    ) -> HashIndex:
        key = name.lower()
        if key in self.indexes:
            if if_not_exists:
                return self.indexes[key]
            raise CatalogError(f"index {name!r} already exists")
        index = HashIndex(name, self.table(table_name), columns)
        self.indexes[key] = index
        return index

    def table(self, name: str) -> Table:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    # ------------------------------------------------------------------ DML

    def insert(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        return self.table(table_name).insert_many(rows)

    # ------------------------------------------------------------- execute

    def execute(
        self,
        statement: ast.Statement | str,
        deadline: float | None = None,
        trace: Any = None,
        budget: Any = None,
        version: int | None = None,
    ) -> "QueryResult":
        """Run a statement (AST node or SQL text); returns a QueryResult.

        ``deadline`` is an absolute ``time.monotonic()`` instant; queries
        cooperatively abort with :class:`QueryTimeout` once it passes.
        ``trace`` is an optional parent span (duck-typed, see
        ``repro.core.observe``) under which the planner reports
        per-operator rows-in/rows-out and timings. ``budget`` is an
        optional guardrail object (duck-typed,
        ``repro.core.resilience.Budget``) ticked by every operator loop.
        ``version`` pins every table scan to an MVCC snapshot version
        (``None`` reads the latest state, pending writes included).
        """
        from .planner import run_statement  # deferred: planner imports catalog

        if isinstance(statement, str):
            from .parser import parse_sql

            results: QueryResult | None = None
            for parsed in parse_sql(statement):
                results = run_statement(
                    self, parsed, deadline, trace, budget, version
                )
            if results is None:
                raise CatalogError("empty SQL script")
            return results
        return run_statement(self, statement, deadline, trace, budget, version)


class QueryResult:
    """Column names plus materialized rows (list of tuples)."""

    def __init__(self, columns: list[str], rows: list[tuple]) -> None:
        self.columns = columns
        self.rows = rows

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"QueryResult(columns={self.columns}, rows={len(self.rows)})"
