"""Vectorized execution: operators over fixed-size row batches.

The tuple-at-a-time pipeline in :mod:`executor` pays Python generator and
closure overhead for every row. This module provides the batched
equivalents: operators stream *chunks* (lists of up to ``batch_size`` row
tuples), so per-row interpreter work collapses into slice copies, list
comprehensions, and ``map(itemgetter(...), ...)`` — all of which run inside
the interpreter's C loops.

Two kinds of building blocks live here:

* **Batch operators** (``seq_scan_batches``, ``filter_batches``, the
  joins): generator functions over chunk iterators. Guardrails move to
  per-chunk ``Ticker.tick_batch(len(chunk))`` calls, which count *logical
  rows*, so row budgets and deadlines keep tuple-at-a-time semantics.
* **Kernel compilers** (``compile_filter_kernel``,
  ``compile_projection_kernel``): translate a restricted but hot subset of
  expression ASTs — conjunctions/disjunctions of equalities over columns,
  constants, and COALESCE chains, NULL tests, COALESCE projections — into
  a single compiled comprehension, eliminating the per-row closure tree.
  Anything outside the subset returns ``None`` and the caller falls back
  to evaluating the compiled scalar expression per row *within* the batch,
  so semantics never depend on kernel coverage.

Kernel equality uses Python ``==`` where it provably agrees with SQL ``=``
under WHERE semantics (unknown drops the row): constants are non-NULL by
construction, NULL operands are guarded with ``is not None``, and
dictionary-encoded text is kept distinct from plain ints via ``isinstance``
checks that only run on candidate matches. ``NOT`` is deliberately outside
the subset — negation is where two-valued shortcuts and three-valued logic
part ways.
"""

from __future__ import annotations

from itertools import chain, repeat
from operator import itemgetter
from typing import Any, Callable, Iterable, Iterator

from . import ast
from .dictionary import EncodedString, StringDictionary
from .errors import PlanError
from .executor import Ticker, nested_loop_join
from .expressions import Evaluator, Scope
from .index import HashIndex
from .table import Table
from .types import ColumnType

Row = tuple
Chunk = list  # list[Row]
Chunks = Iterator[Chunk]

FilterKernel = Callable[[Chunk], Chunk]
ProjectionKernel = Callable[[list], list]


def flatten(chunks: Iterable[Chunk]) -> Iterator[Row]:
    """Stream the rows of a chunk iterator (C-speed chain)."""
    return chain.from_iterable(chunks)


def chunked(rows: Iterable[Row], size: int) -> Chunks:
    """Re-batch a row iterator into chunks of up to ``size``."""
    chunk: Chunk = []
    for row in rows:
        chunk.append(row)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def chunk_list(rows: list, size: int) -> Chunks:
    """Slice a materialized row list into chunks (CTE / subquery scans)."""
    for start in range(0, len(rows), size):
        yield rows[start:start + size]


# ---------------------------------------------------------------- operators


def seq_scan_batches(
    table: Table, ticker: Ticker, version: int | None, size: int
) -> Chunks:
    batches = (
        table.scan_batches(size)
        if version is None
        else table.scan_at_batches(version, size)
    )
    tick = ticker.tick_batch
    for chunk in batches:
        tick(len(chunk))
        yield chunk


def index_scan_batches(
    index: HashIndex, key: tuple, ticker: Ticker, version: int | None, size: int
) -> Chunks:
    chunk: Chunk = []
    for row in index.lookup(key, version):
        chunk.append(row)
        if len(chunk) >= size:
            ticker.tick_batch(len(chunk))
            yield chunk
            chunk = []
    if chunk:
        ticker.tick_batch(len(chunk))
        yield chunk


def filter_batches(
    chunks: Chunks,
    kernel: FilterKernel | None,
    condition: Evaluator | None,
    ticker: Ticker,
) -> Chunks:
    """Filter whole chunks; compiled kernel when available, else the scalar
    condition applied inside a comprehension (exact three-valued logic)."""
    tick = ticker.tick_batch
    if kernel is not None:
        for chunk in chunks:
            tick(len(chunk))
            kept = kernel(chunk)
            if kept:
                yield kept
        return
    assert condition is not None
    for chunk in chunks:
        tick(len(chunk))
        kept = [row for row in chunk if condition(row) is True]
        if kept:
            yield kept


def hash_join_batches(
    left_chunks: Chunks,
    right_chunks: Chunks,
    left_slots: list[int],
    right_slots: list[int],
    right_width: int,
    residual: Evaluator | None,
    outer: bool,
    ticker: Ticker,
) -> Chunks:
    """Batched equi hash join (LEFT OUTER when ``outer``); NULL keys never
    match, mirroring the scalar operator."""
    tick = ticker.tick_batch
    buckets: dict[Any, list[Row]] = {}
    if len(right_slots) == 1:
        slot = right_slots[0]
        for chunk in right_chunks:
            tick(len(chunk))
            for row in chunk:
                key = row[slot]
                if key is not None:
                    bucket = buckets.get(key)
                    if bucket is None:
                        buckets[key] = [row]
                    else:
                        bucket.append(row)
    else:
        for chunk in right_chunks:
            tick(len(chunk))
            for row in chunk:
                key = tuple(row[s] for s in right_slots)
                if not any(value is None for value in key):
                    bucket = buckets.get(key)
                    if bucket is None:
                        buckets[key] = [row]
                    else:
                        bucket.append(row)

    null_pad = (None,) * right_width
    get = buckets.get
    single = left_slots[0] if len(left_slots) == 1 else None
    for chunk in left_chunks:
        tick(len(chunk))
        out: Chunk = []
        for left_row in chunk:
            if single is not None:
                key = left_row[single]
                bucket = get(key) if key is not None else None
            else:
                key = tuple(left_row[s] for s in left_slots)
                bucket = (
                    get(key)
                    if not any(value is None for value in key)
                    else None
                )
            matched = False
            if bucket:
                if residual is None:
                    out.extend(left_row + right_row for right_row in bucket)
                    matched = True
                else:
                    for right_row in bucket:
                        combined = left_row + right_row
                        if residual(combined) is True:
                            matched = True
                            out.append(combined)
            if outer and not matched:
                out.append(left_row + null_pad)
        if out:
            tick(len(out))
            yield out


def index_join_batches(
    left_chunks: Chunks,
    index: HashIndex,
    left_slot: int,
    right_width: int,
    right_filter: Evaluator | None,
    residual: Evaluator | None,
    outer: bool,
    ticker: Ticker,
    version: int | None,
) -> Chunks:
    """Batched index-nested-loop join: probe the right index per left row,
    emitting one output chunk per input chunk.

    The hot path bypasses ``index.lookup`` (a generator paying setup plus a
    per-row visibility check on every probe) and walks the bucket's row ids
    directly. That is only valid reading latest state with no logically
    deleted rows; the check is re-evaluated per input chunk so concurrent
    deletes degrade to the exact path mid-join rather than being missed."""
    tick = ticker.tick_batch
    lookup = index.lookup
    table = index.table
    buckets = index._buckets  # intra-package: the probe loop is the hot path
    null_pad = (None,) * right_width
    plain = right_filter is None and residual is None and not outer
    for chunk in left_chunks:
        tick(len(chunk))
        out: Chunk = []
        if version is None and not table.died:
            rows = table.rows
            bucket_get = buckets.get
            probes = 0
            if plain:
                append = out.append
                for left_row in chunk:
                    key = left_row[left_slot]
                    if key is not None:
                        probes += 1
                        bucket = bucket_get((key,))
                        if bucket:
                            for row_id in bucket:
                                right_row = rows[row_id]
                                if right_row is not None:
                                    append(left_row + right_row)
            else:
                for left_row in chunk:
                    key = left_row[left_slot]
                    matched = False
                    if key is not None:
                        probes += 1
                        bucket = bucket_get((key,))
                        if bucket:
                            for row_id in bucket:
                                right_row = rows[row_id]
                                if right_row is None:
                                    continue
                                if (
                                    right_filter is not None
                                    and right_filter(right_row) is not True
                                ):
                                    continue
                                combined = left_row + right_row
                                if residual is None or residual(combined) is True:
                                    matched = True
                                    out.append(combined)
                    if outer and not matched:
                        out.append(left_row + null_pad)
            index.probe_count += probes
        else:
            for left_row in chunk:
                key = left_row[left_slot]
                matched = False
                if key is not None:
                    for right_row in lookup((key,), version):
                        if (
                            right_filter is not None
                            and right_filter(right_row) is not True
                        ):
                            continue
                        combined = left_row + right_row
                        if residual is None or residual(combined) is True:
                            matched = True
                            out.append(combined)
                if outer and not matched:
                    out.append(left_row + null_pad)
        if out:
            tick(len(out))
            yield out


def nested_loop_join_batches(
    left_chunks: Chunks,
    right_chunks_factory: Callable[[], Chunks],
    right_width: int,
    condition: Evaluator | None,
    outer: bool,
    ticker: Ticker,
    size: int,
) -> Chunks:
    """Fallback non-equi join: delegates to the scalar operator (it is the
    rare path) and re-batches its output."""
    joined = nested_loop_join(
        flatten(left_chunks),
        lambda: flatten(right_chunks_factory()),
        right_width,
        condition,
        outer,
        ticker,
    )
    return chunked(joined, size)


# ------------------------------------------------------------------ kernels

_EVAL_GLOBALS = {"__builtins__": {}, "isinstance": isinstance, "map": map}


def _compile(source: str, bindings: list) -> Any:
    """Evaluate a ``lambda _enc, _c0, ...: <kernel>`` source with constants
    passed as arguments (never interpolated into the source)."""
    factory = eval(source, dict(_EVAL_GLOBALS))  # noqa: S307 - internal codegen
    return factory(EncodedString, *bindings)


def _params(consts: list) -> str:
    return "".join(f", _c{position}" for position in range(len(consts)))


#: provenance tri-state for an equality operand's value space
_TEXT = object()  # only None or EncodedString (an interned TEXT value)
_PLAIN = object()  # never EncodedString (numeric column, or no dictionary)
_ANY = object()  # unknown mix: encoded ids and plain values may coexist


class _KernelCtx:
    """Per-compilation state: bound constants plus fresh temp names."""

    __slots__ = ("scope", "dictionary", "types", "consts", "_temps")

    def __init__(
        self,
        scope: Scope,
        dictionary: StringDictionary | None,
        column_types: list[ColumnType | None] | None,
    ) -> None:
        self.scope = scope
        self.dictionary = dictionary
        self.types = column_types
        self.consts: list = []
        self._temps = 0

    def bind(self, value: Any) -> str:
        self.consts.append(value)
        return f"_c{len(self.consts) - 1}"

    def use(self, src: str, compound: bool) -> tuple[str, str]:
        """(first_use, later_use) for a value source: compound sources
        (COALESCE chains) get walrus-bound to a temp so they evaluate
        once per row even when the leaf mentions them twice."""
        if not compound:
            return src, src
        self._temps += 1
        name = f"_v{self._temps}"
        return f"({name} := {src})", name

    def tri(self, slot: int) -> object:
        if self.dictionary is None:
            return _PLAIN
        affinity = (
            self.types[slot]
            if self.types is not None and slot < len(self.types)
            else None
        )
        if affinity is ColumnType.TEXT:
            return _TEXT
        if affinity is None:
            return _ANY
        return _PLAIN


def compile_filter_kernel(
    expr: ast.Expr,
    scope: Scope,
    dictionary: StringDictionary | None,
    column_types: list[ColumnType | None] | None = None,
) -> FilterKernel | None:
    """A whole-chunk filter for the supported predicate subset, or None.

    ``column_types`` (aligned with ``scope`` slots) comes from base-table
    schemas or the planner's per-result affinity inference; knowing an
    operand is TEXT allows the tight ``id == id`` comparison because TEXT
    values are always interned. ``None`` entries mean unknown provenance,
    which restricts that slot to the conservative leaf forms.
    """
    ctx = _KernelCtx(scope, dictionary, column_types)
    source = _bool_source(expr, ctx)
    if source is None:
        return None
    code = (
        f"lambda _enc{_params(ctx.consts)}: "
        f"lambda chunk: [r for r in chunk if {source}]"
    )
    return _compile(code, ctx.consts)


def _bool_source(expr: ast.Expr, ctx: _KernelCtx) -> str | None:
    if isinstance(expr, ast.BinOp):
        op = expr.op.upper() if expr.op.isalpha() else expr.op
        if op in ("AND", "OR"):
            left = _bool_source(expr.left, ctx)
            if left is None:
                return None
            right = _bool_source(expr.right, ctx)
            if right is None:
                return None
            joiner = " and " if op == "AND" else " or "
            return f"({left}{joiner}{right})"
        if op == "=":
            return _eq_source(expr.left, expr.right, ctx)
        return None
    if isinstance(expr, ast.IsNull):
        ref = _value_ref(expr.operand, ctx)
        if ref is None:
            return None
        src = ref[0]
        return f"({src} is not None)" if expr.negated else f"({src} is None)"
    return None


def _column_slot(expr: ast.Expr, scope: Scope) -> int | None:
    if not isinstance(expr, ast.Column):
        return None
    try:
        return scope.resolve(expr)
    except PlanError:
        return None


def _bind(consts: list, value: Any) -> str:
    consts.append(value)
    return f"_c{len(consts) - 1}"


def _value_ref(
    expr: ast.Expr, ctx: _KernelCtx
) -> tuple[str, object, bool] | None:
    """(source, tri-state, compound) for a column or COALESCE-of-columns
    operand; None for anything else."""
    if isinstance(expr, ast.Column):
        slot = _column_slot(expr, ctx.scope)
        if slot is None:
            return None
        return f"r[{slot}]", ctx.tri(slot), False
    if (
        isinstance(expr, ast.FuncCall)
        and expr.name.upper() == "COALESCE"
        and expr.args
    ):
        parts: list[str] = []
        tris: list[object] = []
        for arg in expr.args:
            ref = _value_ref(arg, ctx)
            if ref is None or ref[2]:
                return None  # nested COALESCE: keep codegen single-level
            parts.append(ref[0])
            tris.append(ref[1])
        src = parts[-1]
        for part in reversed(parts[:-1]):
            src = f"({part} if {part} is not None else {src})"
        tri = tris[0] if all(t is tris[0] for t in tris) else _ANY
        return src, tri, True
    return None


def _eq_source(lhs: ast.Expr, rhs: ast.Expr, ctx: _KernelCtx) -> str | None:
    if isinstance(lhs, ast.Const) and not isinstance(rhs, ast.Const):
        lhs, rhs = rhs, lhs
    if isinstance(rhs, ast.Const):
        ref = _value_ref(lhs, ctx)
        if ref is None:
            return None
        src, tri, compound = ref
        value = rhs.value
        if value is None:
            return "False"  # = NULL is unknown: the row is dropped
        if isinstance(value, EncodedString):
            return None  # the parser never produces these; bail defensively
        if isinstance(value, str):
            if tri is _PLAIN:
                return f"({src} == {ctx.bind(value)})"
            if tri is _TEXT:
                encoded = ctx.dictionary.lookup(value)
                if encoded is None:
                    # TEXT values are always interned: an un-interned
                    # constant cannot match any stored value.
                    return "False"
                first, later = ctx.use(src, compound)
                name = ctx.bind(encoded)
                # isinstance only runs on candidate matches (id collisions
                # with plain ints), keeping the common comparison int-fast.
                return f"({first} == {name} and isinstance({later}, _enc))"
            # _ANY: match either the interned id or a plain string, never
            # a numeric id collision.
            encoded = ctx.dictionary.lookup(value)
            enc_name = ctx.bind(encoded if encoded is not None else object())
            raw_name = ctx.bind(value)
            first, later = ctx.use(src, compound)
            return (
                f"(({later} == {enc_name}) if isinstance({first}, _enc)"
                f" else ({later} == {raw_name}))"
            )
        name = ctx.bind(value)
        if tri is _PLAIN:
            return f"({src} == {name})"
        first, later = ctx.use(src, compound)
        return f"({first} == {name} and not isinstance({later}, _enc))"
    left = _value_ref(lhs, ctx)
    right = _value_ref(rhs, ctx)
    if left is None or right is None:
        return None
    l_src, l_tri, l_comp = left
    r_src, r_tri, _ = right
    if l_tri is _ANY or r_tri is _ANY or l_tri is not r_tri:
        # Mixed or unknown provenance: encoded-vs-plain text equality
        # needs the full comparison machinery — scalar path handles it.
        return None
    # Both TEXT (ids or None) or both PLAIN: Python == agrees with SQL =
    # once NULL is guarded. A NULL right side compares unequal anyway.
    l_first, l_later = ctx.use(l_src, l_comp)
    return f"({l_first} is not None and {l_later} == {r_src})"


def compile_projection_kernel(
    item_exprs: list[ast.Expr], scope: Scope
) -> ProjectionKernel | None:
    """A whole-list projection for columns / constants / COALESCE chains.

    Pure computation (no equality), so it is sound for any value mix; falls
    back (None) on anything needing the expression evaluator.
    """
    slots: list[int] = []
    all_columns = True
    for expr in item_exprs:
        if isinstance(expr, ast.Column):
            slot = _column_slot(expr, scope)
            if slot is None:
                return None
            slots.append(slot)
        else:
            all_columns = False
            break
    if all_columns and slots:
        if len(slots) == 1:
            getter = itemgetter(slots[0])
            return lambda rows: [(value,) for value in map(getter, rows)]
        getter = itemgetter(*slots)
        return lambda rows: list(map(getter, rows))

    # Mixed projection (columns, constants, COALESCE chains): extract each
    # output column independently — itemgetter maps and pairwise COALESCE
    # comprehensions are C-driven loops — then recompose rows with zip().
    # This column-at-a-time shape beats a generated row-wise comprehension
    # because per-row work collapses to one zip step instead of N
    # subscript/conditional opcodes inside a tuple display.
    extractors: list[Callable[[list], Any]] = []
    for expr in item_exprs:
        extractor = _column_extractor(expr, scope)
        if extractor is None:
            return None
        extractors.append(extractor)
    if not extractors:
        return None
    if len(extractors) == 1:
        single = extractors[0]
        return lambda rows: [(value,) for value in single(rows)]

    def kernel(rows: list) -> list:
        return list(zip(*[extract(rows) for extract in extractors]))

    return kernel


def _column_extractor(
    expr: ast.Expr, scope: Scope
) -> Callable[[list], Any] | None:
    """rows -> iterable of this expression's values, or None if unsupported.

    Extractors may return lazy iterables (map objects, itertools.repeat);
    the caller recomposes them with zip, which also bounds the infinite
    constant columns."""
    if isinstance(expr, ast.Column):
        slot = _column_slot(expr, scope)
        if slot is None:
            return None
        getter = itemgetter(slot)
        return lambda rows: map(getter, rows)
    if isinstance(expr, ast.Const):
        value = expr.value
        return lambda rows: repeat(value, len(rows))
    if isinstance(expr, ast.FuncCall) and expr.name.upper() == "COALESCE":
        parts = [_column_extractor(arg, scope) for arg in expr.args]
        if not parts or any(part is None for part in parts):
            return None
        folded = parts[-1]
        for part in reversed(parts[:-1]):
            def fold(rows, first=part, rest=folded):
                return [
                    value if value is not None else fallback
                    for value, fallback in zip(first(rows), rest(rows))
                ]
            folded = fold
        return folded
    return None
