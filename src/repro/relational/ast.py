"""SQL abstract syntax tree.

The SPARQL-to-SQL translator builds these nodes directly (no text round
trip); the text parser in :mod:`repro.relational.parser` produces the same
nodes, and :mod:`repro.relational.render` turns them back into SQL text for
the sqlite3 backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

from .types import ColumnType

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Column:
    """A (possibly qualified) column reference, e.g. ``T.entry``."""

    table: str | None
    name: str

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Const:
    """A literal constant (``None`` renders as NULL)."""

    value: Any


@dataclass(frozen=True)
class BinOp:
    """Binary operator: comparison, arithmetic, ``||``, AND, OR."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class UnaryOp:
    """``NOT x`` or ``-x``."""

    op: str
    operand: "Expr"


@dataclass(frozen=True)
class IsNull:
    operand: "Expr"
    negated: bool = False


@dataclass(frozen=True)
class InList:
    operand: "Expr"
    items: tuple["Expr", ...]
    negated: bool = False


@dataclass(frozen=True)
class Like:
    """SQL LIKE with ``%`` and ``_`` wildcards (case-insensitive, as SQLite)."""

    operand: "Expr"
    pattern: "Expr"
    negated: bool = False


@dataclass(frozen=True)
class FuncCall:
    """Scalar function call (COALESCE, LOWER, UPPER, LENGTH, ABS, SUBSTR)."""

    name: str
    args: tuple["Expr", ...]


@dataclass(frozen=True)
class Case:
    """Searched CASE: ``CASE WHEN c1 THEN r1 ... ELSE d END``."""

    whens: tuple[tuple["Expr", "Expr"], ...]
    default: "Expr | None" = None


@dataclass(frozen=True)
class Aggregate:
    """Aggregate call; ``arg is None`` means ``COUNT(*)``."""

    func: str  # COUNT, SUM, MIN, MAX, AVG
    arg: "Expr | None" = None
    distinct: bool = False


Expr = Union[Column, Const, BinOp, UnaryOp, IsNull, InList, Like, FuncCall, Case, Aggregate]

COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}
ARITHMETIC_OPS = {"+", "-", "*", "/", "%", "||"}
LOGICAL_OPS = {"AND", "OR"}


# ---------------------------------------------------------------------------
# FROM clause
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TableRef:
    """A base table or CTE reference with an optional alias."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryRef:
    """A derived table ``(SELECT ...) AS alias``."""

    query: "Query"
    alias: str


@dataclass(frozen=True)
class Join:
    """A join tree node; ``on is None`` means a cross (comma) join."""

    left: "FromItem"
    right: "FromItem"
    kind: str  # "INNER" or "LEFT"
    on: Expr | None = None


FromItem = Union[TableRef, SubqueryRef, Join]


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One projection: an expression with an optional alias, or ``*``."""

    expr: Expr | None  # None means "*"
    alias: str | None = None

    @staticmethod
    def star() -> "SelectItem":
        return SelectItem(expr=None, alias=None)


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass(frozen=True)
class Select:
    items: tuple[SelectItem, ...]
    from_: FromItem | None = None
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    distinct: bool = False
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int | None = None


@dataclass(frozen=True)
class SetOp:
    """UNION / UNION ALL / INTERSECT / EXCEPT of two queries."""

    op: str
    left: "Query"
    right: "Query"
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int | None = None


@dataclass(frozen=True)
class With:
    """A WITH clause: named, non-recursive CTEs evaluated in order."""

    ctes: tuple[tuple[str, "Query"], ...]
    body: "Query"


Query = Union[Select, SetOp, With]


# ---------------------------------------------------------------------------
# DDL / DML
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type: ColumnType = ColumnType.TEXT


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple[ColumnDef, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class CreateIndex:
    name: str
    table: str
    columns: tuple[str, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...] | None
    rows: tuple[tuple[Expr, ...], ...]


@dataclass(frozen=True)
class Delete:
    table: str
    where: Expr | None = None


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Expr | None = None


@dataclass(frozen=True)
class DropTable:
    name: str
    if_exists: bool = False


Statement = Union[
    Query, CreateTable, CreateIndex, Insert, Delete, Update, DropTable
]


def union_all(queries: list["Query"]) -> "Query":
    """Combine queries with UNION ALL as a *balanced* tree.

    Left-deep chains of hundreds of branches (variable-predicate unpivots,
    per-type-table unions) would otherwise nest deeply enough to exhaust
    Python's recursion limit in the planner and renderer; a balanced tree
    keeps depth logarithmic.
    """
    if not queries:
        raise ValueError("union of zero queries")
    level = list(queries)
    while len(level) > 1:
        paired: list[Query] = []
        for i in range(0, len(level) - 1, 2):
            paired.append(SetOp("UNION ALL", level[i], level[i + 1]))
        if len(level) % 2:
            paired.append(level[-1])
        level = paired
    return level[0]


def conjoin(conditions: list[Expr]) -> Expr | None:
    """AND together a list of conditions (None for an empty list)."""
    result: Expr | None = None
    for condition in conditions:
        result = condition if result is None else BinOp("AND", result, condition)
    return result


def split_conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a condition into its top-level AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]
