"""Expression compilation and evaluation.

Expressions are compiled once per query into Python closures over tuple
indexes (``row -> value``); this keeps per-row evaluation cheap, which
matters because the benchmark harness pushes hundreds of thousands of rows
through these closures.

Boolean results use SQL three-valued logic: ``True`` / ``False`` / ``None``
(unknown). A WHERE clause keeps a row only when its condition is ``True``.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Sequence

from . import ast
from .dictionary import EncodedString
from .errors import ExecutionError, PlanError
from .types import compare, tv_and, tv_not, tv_or

Row = tuple
Evaluator = Callable[[Row], Any]
ColumnResolver = Callable[[ast.Column], int]

# Custom scalar functions usable from SQL. The RDF layer registers term
# helpers here (RDF_NUM, RDF_STR, ...); the sqlite backend registers the
# same callables on its connections so both engines agree.
CUSTOM_FUNCTIONS: dict[str, Callable[..., Any]] = {}


def register_function(name: str, fn: Callable[..., Any]) -> None:
    """Register a deterministic scalar function callable from SQL."""
    CUSTOM_FUNCTIONS[name.upper()] = fn


class Scope:
    """Maps column references to positions in the current row tuple.

    A scope is an ordered list of ``(binding, column_name)`` pairs, where
    *binding* is the table alias (or CTE name) the column came from.
    """

    def __init__(self, slots: Sequence[tuple[str, str]]) -> None:
        self.slots = list(slots)
        self._by_qualified: dict[tuple[str, str], int] = {}
        self._by_name: dict[str, list[int]] = {}
        for position, (binding, name) in enumerate(self.slots):
            key = (binding.lower(), name.lower())
            if key not in self._by_qualified:
                self._by_qualified[key] = position
            self._by_name.setdefault(name.lower(), []).append(position)

    def __len__(self) -> int:
        return len(self.slots)

    def resolve(self, column: ast.Column) -> int:
        if column.table is not None:
            key = (column.table.lower(), column.name.lower())
            if key not in self._by_qualified:
                raise PlanError(f"unknown column {column.table}.{column.name}")
            return self._by_qualified[key]
        positions = self._by_name.get(column.name.lower(), [])
        if not positions:
            raise PlanError(f"unknown column {column.name}")
        if len(positions) > 1:
            raise PlanError(f"ambiguous column {column.name}")
        return positions[0]

    def contains(self, column: ast.Column) -> bool:
        try:
            self.resolve(column)
        except PlanError:
            return False
        return True

    def merged_with(self, other: "Scope") -> "Scope":
        return Scope(self.slots + other.slots)


def _numeric(value: Any, op: str) -> float | int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, EncodedString):
        value = value.lexicon[value]  # text semantics, never the raw id
    elif isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        try:
            return int(value)
        except ValueError:
            try:
                return float(value)
            except ValueError as exc:
                raise ExecutionError(f"non-numeric operand for {op}: {value!r}") from exc
    raise ExecutionError(f"non-numeric operand for {op}: {value!r}")


def _like_to_regex(pattern: str) -> re.Pattern[str]:
    parts: list[str] = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("^" + "".join(parts) + "$", re.IGNORECASE | re.DOTALL)


_COMPARE_CHECKS: dict[str, Callable[[int], bool]] = {
    "=": lambda c: c == 0,
    "<>": lambda c: c != 0,
    "!=": lambda c: c != 0,
    "<": lambda c: c < 0,
    "<=": lambda c: c <= 0,
    ">": lambda c: c > 0,
    ">=": lambda c: c >= 0,
}


def compile_expr(expr: ast.Expr, scope: Scope) -> Evaluator:
    """Compile an expression into a ``row -> value`` closure."""
    if isinstance(expr, ast.Const):
        value = expr.value
        return lambda row: value

    if isinstance(expr, ast.Column):
        index = scope.resolve(expr)
        return lambda row: row[index]

    if isinstance(expr, ast.BinOp):
        left = compile_expr(expr.left, scope)
        right = compile_expr(expr.right, scope)
        op = expr.op.upper() if expr.op.isalpha() else expr.op

        if op == "AND":
            return lambda row: tv_and(left(row), right(row))
        if op == "OR":
            return lambda row: tv_or(left(row), right(row))
        if op in _COMPARE_CHECKS:
            check = _COMPARE_CHECKS[op]

            def compare_eval(row: Row) -> bool | None:
                result = compare(left(row), right(row))
                return None if result is None else check(result)

            return compare_eval
        if op == "||":

            def concat_eval(row: Row) -> str | None:
                lv, rv = left(row), right(row)
                if lv is None or rv is None:
                    return None
                return str(lv) + str(rv)

            return concat_eval
        if op in ("+", "-", "*", "/", "%"):

            def arith_eval(row: Row) -> Any:
                lv, rv = left(row), right(row)
                if lv is None or rv is None:
                    return None
                ln, rn = _numeric(lv, op), _numeric(rv, op)
                if op == "+":
                    return ln + rn
                if op == "-":
                    return ln - rn
                if op == "*":
                    return ln * rn
                if op == "/":
                    if rn == 0:
                        return None  # SQLite yields NULL on division by zero
                    result = ln / rn
                    if isinstance(ln, int) and isinstance(rn, int):
                        return ln // rn
                    return result
                if rn == 0:
                    return None
                return ln % rn

            return arith_eval
        raise PlanError(f"unsupported binary operator {expr.op!r}")

    if isinstance(expr, ast.UnaryOp):
        operand = compile_expr(expr.operand, scope)
        if expr.op.upper() == "NOT":
            return lambda row: tv_not(operand(row))
        if expr.op == "-":

            def negate(row: Row) -> Any:
                value = operand(row)
                return None if value is None else -_numeric(value, "-")

            return negate
        raise PlanError(f"unsupported unary operator {expr.op!r}")

    if isinstance(expr, ast.IsNull):
        operand = compile_expr(expr.operand, scope)
        if expr.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None

    if isinstance(expr, ast.InList):
        operand = compile_expr(expr.operand, scope)
        items = [compile_expr(item, scope) for item in expr.items]
        negated = expr.negated

        def in_eval(row: Row) -> bool | None:
            value = operand(row)
            if value is None:
                return None
            saw_null = False
            for item in items:
                item_value = item(row)
                result = compare(value, item_value)
                if result is None:
                    saw_null = True
                elif result == 0:
                    return False if negated else True
            if saw_null:
                return None
            return negated

        return in_eval

    if isinstance(expr, ast.Like):
        operand = compile_expr(expr.operand, scope)
        pattern = compile_expr(expr.pattern, scope)
        negated = expr.negated

        def like_eval(row: Row) -> bool | None:
            value, pat = operand(row), pattern(row)
            if value is None or pat is None:
                return None
            matched = bool(_like_to_regex(str(pat)).match(str(value)))
            return (not matched) if negated else matched

        return like_eval

    if isinstance(expr, ast.FuncCall):
        return _compile_func(expr, scope)

    if isinstance(expr, ast.Case):
        whens = [
            (compile_expr(cond, scope), compile_expr(result, scope))
            for cond, result in expr.whens
        ]
        default = compile_expr(expr.default, scope) if expr.default is not None else None

        def case_eval(row: Row) -> Any:
            for cond, result in whens:
                if cond(row) is True:
                    return result(row)
            return default(row) if default is not None else None

        return case_eval

    if isinstance(expr, ast.Aggregate):
        raise PlanError("aggregate used outside of an aggregating SELECT")

    raise PlanError(f"cannot compile expression {expr!r}")


def _compile_func(expr: ast.FuncCall, scope: Scope) -> Evaluator:
    name = expr.name.upper()
    args = [compile_expr(arg, scope) for arg in expr.args]

    if name == "COALESCE":

        def coalesce_eval(row: Row) -> Any:
            for arg in args:
                value = arg(row)
                if value is not None:
                    return value
            return None

        return coalesce_eval

    if name in ("LOWER", "UPPER"):
        (arg,) = args
        transform = str.lower if name == "LOWER" else str.upper
        return lambda row: None if arg(row) is None else transform(str(arg(row)))

    if name == "LENGTH":
        (arg,) = args
        return lambda row: None if arg(row) is None else len(str(arg(row)))

    if name == "ABS":
        (arg,) = args

        def abs_eval(row: Row) -> Any:
            value = arg(row)
            return None if value is None else abs(_numeric(value, "ABS"))

        return abs_eval

    if name == "SUBSTR":
        if len(args) == 2:
            operand, start = args

            def substr2(row: Row) -> Any:
                value = operand(row)
                if value is None:
                    return None
                begin = int(_numeric(start(row), "SUBSTR")) - 1
                return str(value)[max(begin, 0):]

            return substr2
        operand, start, length = args

        def substr3(row: Row) -> Any:
            value = operand(row)
            if value is None:
                return None
            begin = int(_numeric(start(row), "SUBSTR")) - 1
            count = int(_numeric(length(row), "SUBSTR"))
            begin = max(begin, 0)
            return str(value)[begin:begin + count]

        return substr3

    if name == "NULLIF":
        left, right = args

        def nullif_eval(row: Row) -> Any:
            lv = left(row)
            return None if compare(lv, right(row)) == 0 else lv

        return nullif_eval

    if name == "IFNULL":
        left, right = args

        def ifnull_eval(row: Row) -> Any:
            lv = left(row)
            return right(row) if lv is None else lv

        return ifnull_eval

    if name == "ROWNUM":
        # A per-query monotonically increasing integer: gives derived rows a
        # unique identity so outer joins can preserve bag semantics. Rendered
        # as ROW_NUMBER() OVER () on the sqlite backend.
        counter = iter(range(1, 1 << 62))
        return lambda row: next(counter)

    if name in CUSTOM_FUNCTIONS:
        fn = CUSTOM_FUNCTIONS[name]
        # Custom functions (the RDF_* term helpers) receive lexical forms,
        # never dictionary ids.
        if len(args) == 1:
            (arg,) = args

            def call1(row: Row) -> Any:
                value = arg(row)
                if isinstance(value, EncodedString):
                    value = value.lexicon[value]
                return fn(value)

            return call1

        def call_n(row: Row) -> Any:
            return fn(
                *(
                    value.lexicon[value]
                    if isinstance(value := arg(row), EncodedString)
                    else value
                    for arg in args
                )
            )

        return call_n

    raise PlanError(f"unsupported function {expr.name!r}")


def expr_columns(expr: ast.Expr | None) -> list[ast.Column]:
    """All column references inside an expression (for push-down analysis)."""
    found: list[ast.Column] = []

    def walk(node: ast.Expr | None) -> None:
        if node is None:
            return
        if isinstance(node, ast.Column):
            found.append(node)
        elif isinstance(node, ast.BinOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.UnaryOp):
            walk(node.operand)
        elif isinstance(node, ast.IsNull):
            walk(node.operand)
        elif isinstance(node, ast.InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.Like):
            walk(node.operand)
            walk(node.pattern)
        elif isinstance(node, ast.FuncCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, ast.Case):
            for cond, result in node.whens:
                walk(cond)
                walk(result)
            walk(node.default)
        elif isinstance(node, ast.Aggregate):
            walk(node.arg)

    walk(expr)
    return found


def contains_aggregate(expr: ast.Expr | None) -> bool:
    if expr is None:
        return False
    if isinstance(expr, ast.Aggregate):
        return True
    if isinstance(expr, ast.BinOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, ast.UnaryOp):
        return contains_aggregate(expr.operand)
    if isinstance(expr, ast.IsNull):
        return contains_aggregate(expr.operand)
    if isinstance(expr, ast.InList):
        return contains_aggregate(expr.operand) or any(
            contains_aggregate(item) for item in expr.items
        )
    if isinstance(expr, ast.Like):
        return contains_aggregate(expr.operand) or contains_aggregate(expr.pattern)
    if isinstance(expr, ast.FuncCall):
        return any(contains_aggregate(arg) for arg in expr.args)
    if isinstance(expr, ast.Case):
        return any(
            contains_aggregate(cond) or contains_aggregate(result)
            for cond, result in expr.whens
        ) or contains_aggregate(expr.default)
    return False
