"""Multi-version concurrency control for the minirel substrate.

The paper assumes the relational back-end provides snapshot reads; DB2
gives them for free, minirel has to earn them. The design trades write-path
generality for a zero-cost read path:

* Row versions live in two side dicts per table — ``born[row_id]`` and
  ``died[row_id]`` — populated **only while a snapshot is pinned**. With no
  pins the write path is byte-for-byte the old one (physical tombstones,
  empty dicts), so the single-threaded query path pays nothing.
* A row is visible at snapshot version ``V`` iff
  ``born.get(rid, 0) <= V`` and (``rid not in died`` or ``died[rid] > V``).
  Latest-state readers only check ``died`` membership, preserving the
  read-your-own-pending-writes semantics transactions rely on.
* One writer at a time (the store's writer lock enforces this); a write
  bracket decides at :meth:`MvccController.begin` whether it must retain
  old versions, and garbage-collects retained versions as soon as the last
  pin drains.

Snapshot acquisition happens under the same writer lock, so the pin set
cannot change in the middle of a bracket — the retention decision made at
``begin`` stays valid until ``publish``/``abort``.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .table import Table


class MvccController:
    """Database-wide version state: committed/write versions plus pins.

    ``version`` is the latest published version; ``write_version`` is what
    in-flight writes are tagged with (``version + 1`` inside a bracket).
    ``pin()`` registers a snapshot reader at the current version and
    returns it; ``unpin()`` releases it. Only :meth:`pin`/:meth:`unpin`
    may be called concurrently with a writer — everything else is
    serialized by the store's writer lock.
    """

    def __init__(self) -> None:
        self.version = 0
        self.write_version = 0
        #: True while the current write bracket must retain old versions
        self.tag_writes = False
        self._pins: dict[int, int] = {}
        self._lock = threading.Lock()
        self._tables: list["Table"] = []

    def register(self, table: "Table") -> None:
        table._mvcc = self
        self._tables.append(table)

    # -------------------------------------------------------- write bracket

    def begin(self) -> None:
        """Open a write bracket (caller holds the writer lock)."""
        self.write_version = self.version + 1
        with self._lock:
            pinned = bool(self._pins)
        self.tag_writes = pinned
        if not pinned:
            self._collect(self.version)

    def publish(self) -> None:
        """Commit the bracket: writes become the latest version."""
        self.version = self.write_version
        self.tag_writes = False
        with self._lock:
            pinned = bool(self._pins)
        if not pinned:
            self._collect(self.version)

    def abort(self) -> None:
        """Close the bracket without publishing (undo already replayed)."""
        self.write_version = self.version
        self.tag_writes = False

    # -------------------------------------------------------------- readers

    def pin(self) -> int:
        """Register a snapshot at the current published version."""
        with self._lock:
            version = self.version
            self._pins[version] = self._pins.get(version, 0) + 1
            return version

    def unpin(self, version: int) -> None:
        with self._lock:
            remaining = self._pins.get(version, 0) - 1
            if remaining > 0:
                self._pins[version] = remaining
            else:
                self._pins.pop(version, None)

    def pinned_versions(self) -> list[int]:
        with self._lock:
            return sorted(self._pins)

    # ------------------------------------------------------------------- GC

    def _collect(self, horizon: int) -> None:
        """Physically drop versions retained for now-closed snapshots.

        Only called from inside the writer lock with zero pins, so no
        reader can be iterating the side dicts concurrently.
        """
        for table in self._tables:
            table.mvcc_gc(horizon)
