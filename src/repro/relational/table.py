"""Heap tables: schema, row storage, and insert/delete maintenance."""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from .dictionary import StringDictionary
from .errors import CatalogError, ExecutionError
from .types import ColumnType


class TableSchema:
    """Ordered column definitions for a table."""

    def __init__(self, name: str, columns: Sequence[tuple[str, ColumnType]]) -> None:
        self.name = name
        self.column_names = [column_name for column_name, _ in columns]
        self.column_types = [column_type for _, column_type in columns]
        self._positions = {
            column_name.lower(): position
            for position, (column_name, _) in enumerate(columns)
        }
        if len(self._positions) != len(columns):
            raise CatalogError(f"duplicate column name in table {name!r}")

    def position(self, column_name: str) -> int:
        try:
            return self._positions[column_name.lower()]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {column_name!r}"
            ) from None

    def has_column(self, column_name: str) -> bool:
        return column_name.lower() in self._positions

    def __len__(self) -> int:
        return len(self.column_names)


class Table:
    """A heap table: a schema plus a list of row tuples.

    Deleted rows are tombstoned (set to ``None``) so that row ids held by
    indexes stay stable; :meth:`compact` rebuilds storage when fragmentation
    grows. Indexes attach via :meth:`register_index` and are maintained by
    insert/delete.

    When the owning database has pinned snapshots (``_mvcc.tag_writes``),
    deletes become logical — ``died[row_id]`` records the write version and
    the row stays physically present for snapshot readers — and inserts
    record ``born[row_id]``. Both dicts stay empty with no snapshots open,
    so the unversioned scan path is unchanged.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.rows: list[tuple | None] = []
        self.live_count = 0
        self._indexes: list[Any] = []  # HashIndex instances
        #: version metadata, populated only while snapshots are pinned
        self.born: dict[int, int] = {}
        self.died: dict[int, int] = {}
        self._mvcc: Any = None  # MvccController, set via register()
        #: string dictionary for TEXT columns (None = store plain strings)
        self.dictionary: StringDictionary | None = None
        #: per-column coerce (+encode for TEXT when interning) callables
        self._column_ops: list[Any] = [t.coerce for t in schema.column_types]
        #: count of physical tombstones (None slots) in ``rows``
        self.tombstones = 0

    def set_dictionary(self, dictionary: StringDictionary) -> None:
        """Intern TEXT values of this table through ``dictionary``."""
        self.dictionary = dictionary
        # Bulk load runs this op once per TEXT cell, so the coerce + encode
        # pipeline is fused into a single closure: one Python call per cell,
        # with the interning dict probed directly (allocation only on miss).
        ids_get = dictionary._ids.get
        encode = dictionary.encode

        def text_op(value: Any) -> Any:
            if type(value) is str:
                encoded = ids_get(value)
                return encoded if encoded is not None else encode(value)
            if value is None or isinstance(value, str):
                return value  # NULL, or str subclass stored as-is (lax)
            value = str(value)
            encoded = ids_get(value)
            return encoded if encoded is not None else encode(value)

        self._column_ops = [
            text_op if t is ColumnType.TEXT else t.coerce
            for t in self.schema.column_types
        ]

    @property
    def name(self) -> str:
        return self.schema.name

    def register_index(self, index: Any) -> None:
        self._indexes.append(index)
        index.build(self)

    @property
    def indexes(self) -> list[Any]:
        return list(self._indexes)

    def insert(self, values: Sequence[Any]) -> int:
        """Insert one row (coercing to column affinities); returns its row id."""
        if len(values) != len(self.schema):
            raise ExecutionError(
                f"table {self.name!r} expects {len(self.schema)} values, "
                f"got {len(values)}"
            )
        row = tuple(op(value) for op, value in zip(self._column_ops, values))
        row_id = len(self.rows)
        self.rows.append(row)
        self.live_count += 1
        mvcc = self._mvcc
        if mvcc is not None and mvcc.tag_writes:
            self.born[row_id] = mvcc.write_version
        for index in self._indexes:
            index.insert(row_id, row)
        return row_id

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk :meth:`insert`: one loop with everything hoisted.

        Loading dominates store construction, so this path avoids the
        per-row method call, re-resolving column ops, and the MVCC
        attribute checks that :meth:`insert` performs for each row.
        """
        ops = self._column_ops
        width = len(ops)
        store = self.rows
        indexes = self._indexes
        mvcc = self._mvcc
        tagged = mvcc is not None and mvcc.tag_writes
        born = self.born
        count = 0
        for values in rows:
            if len(values) != width:
                raise ExecutionError(
                    f"table {self.name!r} expects {width} values, "
                    f"got {len(values)}"
                )
            row = tuple([op(value) for op, value in zip(ops, values)])
            row_id = len(store)
            store.append(row)
            if tagged:
                born[row_id] = mvcc.write_version
            for index in indexes:
                index.insert(row_id, row)
            count += 1
        self.live_count += count
        return count

    def delete_row(self, row_id: int) -> None:
        row = self.rows[row_id]
        if row is None or row_id in self.died:
            return
        mvcc = self._mvcc
        if mvcc is not None and mvcc.tag_writes:
            # Logical delete: pinned snapshots still need this version.
            self.died[row_id] = mvcc.write_version
            self.live_count -= 1
            return
        for index in self._indexes:
            index.delete(row_id, row)
        self.rows[row_id] = None
        self.tombstones += 1
        self.live_count -= 1

    def update_row(self, row_id: int, values: Sequence[Any]) -> None:
        old = self.rows[row_id]
        if old is None or row_id in self.died:
            raise ExecutionError(f"row {row_id} of table {self.name!r} is deleted")
        new = tuple(op(value) for op, value in zip(self._column_ops, values))
        mvcc = self._mvcc
        if mvcc is not None and mvcc.tag_writes:
            # Old version stays for snapshot readers; new version is a
            # fresh row id born at the write version.
            write_version = mvcc.write_version
            self.died[row_id] = write_version
            new_id = len(self.rows)
            self.rows.append(new)
            self.born[new_id] = write_version
            for index in self._indexes:
                index.insert(new_id, new)
            return
        for index in self._indexes:
            index.delete(row_id, old)
        self.rows[row_id] = new
        for index in self._indexes:
            index.insert(row_id, new)

    def get(self, row_id: int) -> tuple | None:
        return self.rows[row_id]

    def scan(self) -> Iterator[tuple]:
        """Yield all live rows (the latest state, pending writes included)."""
        if not self.died:
            for row in self.rows:
                if row is not None:
                    yield row
            return
        died = self.died
        for row_id, row in enumerate(self.rows):
            if row is not None and row_id not in died:
                yield row

    def scan_at(self, version: int) -> Iterator[tuple]:
        """Yield rows visible at snapshot ``version``."""
        born, died = self.born, self.died
        for row_id, row in enumerate(self.rows):
            if row is None:
                continue
            if born.get(row_id, 0) > version:
                continue
            death = died.get(row_id)
            if death is not None and death <= version:
                continue
            yield row

    def scan_batches(self, size: int) -> Iterator[list[tuple]]:
        """Yield live rows in lists of up to ``size``.

        The common case — no logical deletes, no tombstones — degenerates to
        plain list slices, which is what makes batched scans cheap: no
        per-row Python-level work at all.
        """
        rows = self.rows
        if not self.died:
            if not self.tombstones:
                for start in range(0, len(rows), size):
                    yield rows[start:start + size]
                return
            for start in range(0, len(rows), size):
                chunk = [row for row in rows[start:start + size] if row is not None]
                if chunk:
                    yield chunk
            return
        died = self.died
        chunk = []
        for row_id, row in enumerate(rows):
            if row is not None and row_id not in died:
                chunk.append(row)
                if len(chunk) >= size:
                    yield chunk
                    chunk = []
        if chunk:
            yield chunk

    def scan_at_batches(self, version: int, size: int) -> Iterator[list[tuple]]:
        """Batched :meth:`scan_at` (snapshot visibility checked per row)."""
        scan = self.scan_at(version)
        while True:
            chunk = []
            for row in scan:
                chunk.append(row)
                if len(chunk) >= size:
                    break
            if not chunk:
                return
            yield chunk

    def scan_with_ids(self) -> Iterator[tuple[int, tuple]]:
        if not self.died:
            for row_id, row in enumerate(self.rows):
                if row is not None:
                    yield row_id, row
            return
        died = self.died
        for row_id, row in enumerate(self.rows):
            if row is not None and row_id not in died:
                yield row_id, row

    def visible_at(self, row_id: int, version: int | None) -> tuple | None:
        """The row iff visible at ``version`` (``None`` version = latest)."""
        row = self.rows[row_id]
        if row is None:
            return None
        if version is None:
            return None if row_id in self.died else row
        if self.born.get(row_id, 0) > version:
            return None
        death = self.died.get(row_id)
        if death is not None and death <= version:
            return None
        return row

    def mvcc_gc(self, horizon: int) -> None:
        """Physically drop versions dead at or before ``horizon``.

        Called only from the MVCC controller with no pinned snapshots and
        the writer lock held.
        """
        if self.died:
            for row_id in [r for r, v in self.died.items() if v <= horizon]:
                row = self.rows[row_id]
                if row is not None:
                    for index in self._indexes:
                        index.delete(row_id, row)
                    self.rows[row_id] = None
                    self.tombstones += 1
                del self.died[row_id]
        if self.born:
            for row_id in [r for r, v in self.born.items() if v <= horizon]:
                del self.born[row_id]

    def compact(self) -> None:
        """Drop tombstones and rebuild all indexes.

        Unsafe while snapshots are pinned (row ids shift); callers compact
        only from quiesced maintenance paths.
        """
        live = [
            row
            for row_id, row in enumerate(self.rows)
            if row is not None and row_id not in self.died
        ]
        self.rows = live
        self.born.clear()
        self.died.clear()
        self.tombstones = 0
        self.live_count = len(self.rows)
        for index in self._indexes:
            index.build(self)

    def __len__(self) -> int:
        return self.live_count
