"""Render SQL ASTs to SQL text (SQLite dialect).

The sqlite3 backend executes the rendered text; the minirel backend executes
the AST directly. Rendering the same AST both ways and diffing the results is
the engine's differential test.
"""

from __future__ import annotations

from . import ast
from .errors import PlanError


def _quote_ident(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def _quote_string(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


def render_expr(expr: ast.Expr) -> str:
    """Render an expression to SQL text."""
    if isinstance(expr, ast.Const):
        value = expr.value
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return "1" if value else "0"
        if isinstance(value, (int, float)):
            return repr(value)
        return _quote_string(str(value))
    if isinstance(expr, ast.Column):
        if expr.table:
            return f"{_quote_ident(expr.table)}.{_quote_ident(expr.name)}"
        return _quote_ident(expr.name)
    if isinstance(expr, ast.BinOp):
        op = expr.op.upper() if expr.op.isalpha() else expr.op
        return f"({render_expr(expr.left)} {op} {render_expr(expr.right)})"
    if isinstance(expr, ast.UnaryOp):
        op = expr.op.upper() if expr.op.isalpha() else expr.op
        return f"({op} {render_expr(expr.operand)})"
    if isinstance(expr, ast.IsNull):
        suffix = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({render_expr(expr.operand)} {suffix})"
    if isinstance(expr, ast.InList):
        body = ", ".join(render_expr(item) for item in expr.items)
        keyword = "NOT IN" if expr.negated else "IN"
        return f"({render_expr(expr.operand)} {keyword} ({body}))"
    if isinstance(expr, ast.Like):
        keyword = "NOT LIKE" if expr.negated else "LIKE"
        return f"({render_expr(expr.operand)} {keyword} {render_expr(expr.pattern)})"
    if isinstance(expr, ast.FuncCall):
        if expr.name.upper() == "ROWNUM":
            return "ROW_NUMBER() OVER ()"
        body = ", ".join(render_expr(arg) for arg in expr.args)
        return f"{expr.name.upper()}({body})"
    if isinstance(expr, ast.Case):
        parts = ["CASE"]
        for condition, result in expr.whens:
            parts.append(f"WHEN {render_expr(condition)} THEN {render_expr(result)}")
        if expr.default is not None:
            parts.append(f"ELSE {render_expr(expr.default)}")
        parts.append("END")
        return "(" + " ".join(parts) + ")"
    if isinstance(expr, ast.Aggregate):
        if expr.arg is None:
            return "COUNT(*)"
        inner = render_expr(expr.arg)
        if expr.distinct:
            inner = "DISTINCT " + inner
        return f"{expr.func.upper()}({inner})"
    raise PlanError(f"cannot render expression {expr!r}")


def _render_from(item: ast.FromItem) -> str:
    if isinstance(item, ast.TableRef):
        text = _quote_ident(item.name)
        if item.alias:
            text += f" AS {_quote_ident(item.alias)}"
        return text
    if isinstance(item, ast.SubqueryRef):
        return f"({render_query(item.query)}) AS {_quote_ident(item.alias)}"
    if isinstance(item, ast.Join):
        left = _render_from(item.left)
        right = _render_from(item.right)
        if isinstance(item.right, ast.Join):
            right = f"({right})"
        if item.on is None:
            if item.kind == "LEFT":
                raise PlanError("LEFT JOIN requires an ON condition")
            return f"{left} CROSS JOIN {right}"
        keyword = "LEFT OUTER JOIN" if item.kind == "LEFT" else "JOIN"
        return f"{left} {keyword} {right} ON {render_expr(item.on)}"
    raise PlanError(f"cannot render FROM item {item!r}")


def _render_order_limit(
    order_by: tuple[ast.OrderItem, ...], limit: int | None, offset: int | None
) -> str:
    parts: list[str] = []
    if order_by:
        rendered = ", ".join(
            render_expr(item.expr) + ("" if item.ascending else " DESC")
            for item in order_by
        )
        parts.append(f"ORDER BY {rendered}")
    if limit is not None:
        parts.append(f"LIMIT {limit}")
        if offset is not None:
            parts.append(f"OFFSET {offset}")
    elif offset is not None:
        parts.append(f"LIMIT -1 OFFSET {offset}")
    return " ".join(parts)


def render_query(query: ast.Query) -> str:
    """Render a query (SELECT / set operation / WITH) to SQL text."""
    if isinstance(query, ast.With):
        ctes = ", ".join(
            f"{_quote_ident(name)} AS ({render_query(sub)})" for name, sub in query.ctes
        )
        return f"WITH {ctes} {render_query(query.body)}"
    if isinstance(query, ast.SetOp):
        text = f"{render_query(query.left)} {query.op.upper()} {render_query(query.right)}"
        tail = _render_order_limit(query.order_by, query.limit, query.offset)
        return f"{text} {tail}".rstrip()
    if isinstance(query, ast.Select):
        items: list[str] = []
        for item in query.items:
            if item.expr is None:
                items.append("*")
            else:
                rendered = render_expr(item.expr)
                if item.alias:
                    rendered += f" AS {_quote_ident(item.alias)}"
                items.append(rendered)
        parts = ["SELECT"]
        if query.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(items))
        if query.from_ is not None:
            parts.append("FROM " + _render_from(query.from_))
        if query.where is not None:
            parts.append("WHERE " + render_expr(query.where))
        if query.group_by:
            parts.append("GROUP BY " + ", ".join(render_expr(e) for e in query.group_by))
        if query.having is not None:
            parts.append("HAVING " + render_expr(query.having))
        tail = _render_order_limit(query.order_by, query.limit, query.offset)
        if tail:
            parts.append(tail)
        return " ".join(parts)
    raise PlanError(f"cannot render query {query!r}")


def render_statement(statement: ast.Statement) -> str:
    """Render any statement (query, DDL, or DML) to SQL text."""
    if isinstance(statement, (ast.Select, ast.SetOp, ast.With)):
        return render_query(statement)
    if isinstance(statement, ast.CreateTable):
        columns = ", ".join(
            f"{_quote_ident(c.name)} {c.type.value}" for c in statement.columns
        )
        clause = "IF NOT EXISTS " if statement.if_not_exists else ""
        return f"CREATE TABLE {clause}{_quote_ident(statement.name)} ({columns})"
    if isinstance(statement, ast.CreateIndex):
        columns = ", ".join(_quote_ident(c) for c in statement.columns)
        clause = "IF NOT EXISTS " if statement.if_not_exists else ""
        return (
            f"CREATE INDEX {clause}{_quote_ident(statement.name)} "
            f"ON {_quote_ident(statement.table)} ({columns})"
        )
    if isinstance(statement, ast.Insert):
        columns = ""
        if statement.columns is not None:
            columns = " (" + ", ".join(_quote_ident(c) for c in statement.columns) + ")"
        rows = ", ".join(
            "(" + ", ".join(render_expr(value) for value in row) + ")"
            for row in statement.rows
        )
        return f"INSERT INTO {_quote_ident(statement.table)}{columns} VALUES {rows}"
    if isinstance(statement, ast.Delete):
        where = f" WHERE {render_expr(statement.where)}" if statement.where else ""
        return f"DELETE FROM {_quote_ident(statement.table)}{where}"
    if isinstance(statement, ast.DropTable):
        clause = "IF EXISTS " if statement.if_exists else ""
        return f"DROP TABLE {clause}{_quote_ident(statement.name)}"
    if isinstance(statement, ast.Update):
        assignments = ", ".join(
            f"{_quote_ident(column)} = {render_expr(value)}"
            for column, value in statement.assignments
        )
        where = f" WHERE {render_expr(statement.where)}" if statement.where else ""
        return f"UPDATE {_quote_ident(statement.table)} SET {assignments}{where}"
    raise PlanError(f"cannot render statement {statement!r}")
