"""Rule-based planner: SQL ASTs to operator pipelines.

Planning follows the classic recipe the paper relies on its relational
back-end to perform: conjunct classification (local / equi-join / residual),
index selection for equality predicates, index-nested-loop joins for
CTE-to-entry probes (the dominant pattern in the generated DB2RDF SQL), hash
joins for the rest, and a final filter/aggregate/sort/limit pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from . import ast
from .catalog import Database, QueryResult
from .errors import PlanError
from .executor import (
    AggregateState,
    Ticker,
    count_star_sentinel,
    filter_rows,
    hash_join,
    index_nested_loop_join,
    index_scan,
    nested_loop_join,
    seq_scan,
)
from .expressions import Scope, compile_expr, contains_aggregate, expr_columns
from .index import HashIndex, find_index
from .table import Table
from .types import sort_key

Row = tuple
RowsFactory = Callable[[], Iterator[Row]]


@dataclass
class PlannedUnit:
    """One planned FROM unit: its scope, a re-iterable row source, and the
    base table when the unit is a direct table reference (enables index use)."""

    scope: Scope
    factory: RowsFactory
    base: Table | None


def run_statement(
    db: Database,
    statement: ast.Statement,
    deadline: float | None = None,
    trace: Any = None,
    budget: Any = None,
    version: int | None = None,
) -> QueryResult:
    """Execute any statement against ``db``.

    ``trace`` is an optional parent span (duck-typed against
    ``repro.core.observe.Span``: ``child`` / ``set`` / ``inc`` / ``meter``
    / ``count``). When supplied, every operator the planner builds reports
    rows-in/rows-out and inclusive time under it; when ``None`` (the
    default) the operator pipelines are exactly the uninstrumented ones.
    ``budget`` (duck-typed, ``repro.core.resilience.Budget``) threads
    per-query guardrails into every operator's :class:`Ticker`.
    """
    if isinstance(statement, (ast.Select, ast.SetOp, ast.With)):
        return Planner(
            db, deadline, trace=trace, budget=budget, version=version
        ).execute_query(statement)
    if isinstance(statement, ast.CreateTable):
        db.create_table(
            statement.name,
            [(c.name, c.type) for c in statement.columns],
            if_not_exists=statement.if_not_exists,
        )
        return QueryResult([], [])
    if isinstance(statement, ast.CreateIndex):
        db.create_index(
            statement.name,
            statement.table,
            statement.columns,
            if_not_exists=statement.if_not_exists,
        )
        return QueryResult([], [])
    if isinstance(statement, ast.Insert):
        return _run_insert(db, statement)
    if isinstance(statement, ast.Delete):
        return _run_delete(db, statement, deadline)
    if isinstance(statement, ast.Update):
        return _run_update(db, statement)
    if isinstance(statement, ast.DropTable):
        if statement.if_exists and not db.has_table(statement.name):
            return QueryResult([], [])
        db.drop_table(statement.name)
        return QueryResult([], [])
    raise PlanError(f"cannot execute statement {statement!r}")


def _run_insert(db: Database, statement: ast.Insert) -> QueryResult:
    table = db.table(statement.table)
    empty_scope = Scope([])
    count = 0
    for row_exprs in statement.rows:
        values = [compile_expr(expr, empty_scope)(()) for expr in row_exprs]
        if statement.columns is not None:
            full = [None] * len(table.schema)
            for column_name, value in zip(statement.columns, values):
                full[table.schema.position(column_name)] = value
            values = full
        table.insert(values)
        count += 1
    return QueryResult(["rowcount"], [(count,)])


def _run_delete(
    db: Database, statement: ast.Delete, deadline: float | None
) -> QueryResult:
    table = db.table(statement.table)
    scope = Scope([(table.name, c) for c in table.schema.column_names])
    condition = (
        compile_expr(statement.where, scope) if statement.where is not None else None
    )
    doomed = [
        row_id
        for row_id, row in table.scan_with_ids()
        if condition is None or condition(row) is True
    ]
    for row_id in doomed:
        table.delete_row(row_id)
    return QueryResult(["rowcount"], [(len(doomed),)])


def _run_update(db: Database, statement: ast.Update) -> QueryResult:
    table = db.table(statement.table)
    scope = Scope([(table.name, c) for c in table.schema.column_names])
    condition = (
        compile_expr(statement.where, scope) if statement.where is not None else None
    )
    setters = [
        (table.schema.position(column), compile_expr(value, scope))
        for column, value in statement.assignments
    ]
    touched = 0
    updates: list[tuple[int, list]] = []
    for row_id, row in table.scan_with_ids():
        if condition is None or condition(row) is True:
            new_row = list(row)
            for position, setter in setters:
                new_row[position] = setter(row)
            updates.append((row_id, new_row))
    for row_id, new_row in updates:
        table.update_row(row_id, new_row)
        touched += 1
    return QueryResult(["rowcount"], [(touched,)])


class Planner:
    """Plans and executes one query (shared CTE environment per query)."""

    def __init__(
        self,
        db: Database,
        deadline: float | None = None,
        cte_env: dict[str, QueryResult] | None = None,
        trace: Any = None,
        budget: Any = None,
        version: int | None = None,
    ) -> None:
        self.db = db
        self.ticker = Ticker(deadline, budget)
        self.deadline = deadline
        self.budget = budget
        self.cte_env: dict[str, QueryResult] = dict(cte_env or {})
        #: parent span for operators planned next (None = tracing off)
        self.trace = trace
        #: MVCC snapshot version every table scan pins (None = latest)
        self.version = version

    # ------------------------------------------------------------- queries

    def execute_query(self, query: ast.Query) -> QueryResult:
        if isinstance(query, ast.With):
            inner = Planner(
                self.db,
                self.deadline,
                self.cte_env,
                trace=self.trace,
                budget=self.budget,
                version=self.version,
            )
            for name, cte_query in query.ctes:
                if inner.trace is not None:
                    with self.trace.child(f"cte {name}") as cte_span:
                        inner.trace = cte_span
                        result = inner.execute_query(cte_query)
                        cte_span.set("rows_out", len(result.rows))
                    inner.trace = self.trace
                else:
                    result = inner.execute_query(cte_query)
                inner.cte_env[name.lower()] = result
            return inner.execute_query(query.body)
        if isinstance(query, ast.SetOp):
            return self._execute_setop(query)
        if isinstance(query, ast.Select):
            if self.trace is None:
                return self._execute_select(query)
            saved = self.trace
            span = saved.child("select")
            self.trace = span
            try:
                with span:
                    result = self._execute_select(query)
                    span.set("rows_out", len(result.rows))
                return result
            finally:
                self.trace = saved
        raise PlanError(f"not a query: {query!r}")

    def _execute_setop(self, query: ast.SetOp) -> QueryResult:
        if self.trace is None:
            return self._run_setop(query)
        saved = self.trace
        span = saved.child(f"setop {query.op.upper().replace(' ', '-')}")
        self.trace = span
        try:
            with span:
                result = self._run_setop(query)
                span.set("rows_out", len(result.rows))
            return result
        finally:
            self.trace = saved

    def _run_setop(self, query: ast.SetOp) -> QueryResult:
        left = self.execute_query(query.left)
        right = self.execute_query(query.right)
        if self.trace is not None:
            self.trace.inc("rows_in_left", len(left.rows))
            self.trace.inc("rows_in_right", len(right.rows))
        if left.rows and right.rows and len(left.rows[0]) != len(right.rows[0]):
            raise PlanError("set operation arity mismatch")
        op = query.op.upper()
        if op == "UNION ALL":
            rows = left.rows + right.rows
        elif op == "UNION":
            rows = list(dict.fromkeys(left.rows + right.rows))
        elif op == "INTERSECT":
            right_set = set(right.rows)
            rows = list(dict.fromkeys(r for r in left.rows if r in right_set))
        elif op == "EXCEPT":
            right_set = set(right.rows)
            rows = list(dict.fromkeys(r for r in left.rows if r not in right_set))
        else:
            raise PlanError(f"unsupported set operation {query.op!r}")
        columns = left.columns or right.columns
        rows = self._order_output(rows, columns, query.order_by)
        rows = _apply_limit(rows, query.limit, query.offset)
        return QueryResult(columns, rows)

    # -------------------------------------------------------------- select

    def _execute_select(self, select: ast.Select) -> QueryResult:
        scope, rows = self._plan_from_where(select)

        is_aggregate = (
            bool(select.group_by)
            or select.having is not None
            or any(
                item.expr is not None and contains_aggregate(item.expr)
                for item in select.items
            )
        )
        if is_aggregate:
            if self.trace is None:
                scope, rows = self._aggregate(select, scope, rows)
            else:
                span = self.trace.child("aggregate")
                with span:
                    scope, rows = self._aggregate(
                        select, scope, span.count(rows, "rows_in")
                    )
                    span.set("rows_out", len(rows))
            if select.having is not None:
                condition = compile_expr(
                    _rewrite_with_index(select.having, self._agg_index), scope
                )
                rows = [row for row in rows if condition(row) is True]
        items = self._expand_items(select.items, scope)
        column_names = [name for name, _ in items]
        item_exprs = [expr for _, expr in items]
        if is_aggregate:
            item_exprs = [
                _rewrite_with_index(expr, self._agg_index) for expr in item_exprs
            ]
        evaluators = [compile_expr(expr, scope) for expr in item_exprs]

        needs_scope_sort = False
        order_plan: list[tuple[str, Any, bool]] = []  # (kind, key, ascending)
        for order_item in select.order_by:
            resolved = self._resolve_order_item(order_item, column_names, scope)
            order_plan.append(resolved)
            if resolved[0] == "scope":
                needs_scope_sort = True

        materialized = list(rows)
        if needs_scope_sort:
            materialized = self._sort_scope_rows(
                materialized, order_plan, evaluators, scope
            )
            projected = [
                tuple(evaluator(row) for evaluator in evaluators)
                for row in materialized
            ]
            if select.distinct:
                projected = self._distinct(projected)
        else:
            projected = [
                tuple(evaluator(row) for evaluator in evaluators)
                for row in materialized
            ]
            if select.distinct:
                projected = self._distinct(projected)
            if order_plan:
                projected = _sort_projected(projected, order_plan)
        projected = _apply_limit(projected, select.limit, select.offset)
        return QueryResult(column_names, projected)

    def _distinct(self, projected: list[Row]) -> list[Row]:
        deduped = list(dict.fromkeys(projected))
        if self.trace is not None:
            self.trace.child(
                "distinct", rows_in=len(projected), rows_out=len(deduped)
            )
        return deduped

    def _resolve_order_item(
        self, order_item: ast.OrderItem, column_names: list[str], scope: Scope
    ) -> tuple[str, Any, bool]:
        expr = order_item.expr
        if isinstance(expr, ast.Const) and isinstance(expr.value, int):
            position = expr.value - 1
            if not 0 <= position < len(column_names):
                raise PlanError(f"ORDER BY position {expr.value} out of range")
            return ("output", position, order_item.ascending)
        if isinstance(expr, ast.Column) and expr.table is None:
            lowered = [name.lower() for name in column_names]
            if lowered.count(expr.name.lower()) == 1:
                return ("output", lowered.index(expr.name.lower()), order_item.ascending)
        evaluator = compile_expr(expr, scope)
        return ("scope", evaluator, order_item.ascending)

    def _sort_scope_rows(
        self,
        rows: list[Row],
        order_plan: list[tuple[str, Any, bool]],
        evaluators: list,
        scope: Scope,
    ) -> list[Row]:
        # Descending keys are handled by repeated stable sorts from the last
        # key to the first.
        result = list(rows)
        for kind, key, ascending in reversed(order_plan):
            if kind == "scope":
                extractor = key
            else:
                evaluator = evaluators[key]
                extractor = evaluator
            result.sort(key=lambda row: sort_key(extractor(row)), reverse=not ascending)
        return result

    def _expand_items(
        self, items: tuple[ast.SelectItem, ...], scope: Scope
    ) -> list[tuple[str, ast.Expr]]:
        expanded: list[tuple[str, ast.Expr]] = []
        for position, item in enumerate(items):
            if item.expr is None:
                for binding, name in scope.slots:
                    if binding == "#agg":
                        continue
                    expanded.append((name, ast.Column(binding, name)))
                continue
            if item.alias:
                name = item.alias
            elif isinstance(item.expr, ast.Column):
                name = item.expr.name
            else:
                name = f"col{position + 1}"
            expanded.append((name, item.expr))
        return expanded

    # ---------------------------------------------------------- FROM/WHERE

    def _plan_from_where(self, select: ast.Select) -> tuple[Scope, Iterable[Row]]:
        if select.from_ is None:
            scope = Scope([])
            rows: Iterable[Row] = [()]
            if select.where is not None:
                condition = compile_expr(select.where, scope)
                rows = [row for row in rows if condition(row) is True]
            return scope, rows

        units = _flatten_from(select.from_)
        remaining = ast.split_conjuncts(select.where)

        first_item, _, _ = units[0]
        planned = self._plan_unit(first_item)
        scope = planned.scope
        rows: Iterable[Row] = None  # type: ignore[assignment]
        rows, remaining, used_base_index = self._apply_local(
            planned, remaining
        )

        for item, kind, on in units[1:]:
            right = self._plan_unit(item)
            outer = kind == "LEFT"
            merged = scope.merged_with(right.scope)
            if outer:
                candidates = ast.split_conjuncts(on)
            else:
                candidates = ast.split_conjuncts(on)
                pulled = []
                for conjunct in remaining:
                    if _resolves_in(conjunct, merged) and not _resolves_in(
                        conjunct, scope
                    ):
                        pulled.append(conjunct)
                for conjunct in pulled:
                    remaining.remove(conjunct)
                candidates.extend(pulled)
            rows = self._join(scope, rows, right, candidates, outer)
            scope = merged
            if not outer:
                # conjuncts that became resolvable only now (rare) were pulled
                # above; nothing else to do here
                pass

        # Apply any still-unapplied conjuncts (e.g. IS NULL over LEFT joins).
        leftovers = []
        for conjunct in remaining:
            if not _resolves_in(conjunct, scope):
                raise PlanError(f"cannot resolve WHERE condition {conjunct!r}")
            leftovers.append(conjunct)
        if leftovers:
            condition = compile_expr(ast.conjoin(leftovers), scope)
            rows = self._filtered(rows, condition)
        return scope, rows

    def _metered(self, factory: RowsFactory, name: str, **attrs) -> RowsFactory:
        """Wrap a row-source factory in an operator span when tracing.

        The span is created on first use — a factory the planner ends up
        bypassing (e.g. a seq scan displaced by an index probe) leaves no
        phantom operator — and accumulates rows_out / inclusive time across
        every invocation (a nested-loop right side re-runs per left batch)."""
        if self.trace is None:
            return factory
        parent = self.trace
        state: dict[str, Any] = {}

        def wrapped() -> Iterator[Row]:
            span = state.get("span")
            if span is None:
                span = parent.child(name, **attrs)
                state["span"] = span
            return span.meter(factory())

        return wrapped

    def _plan_unit(self, item: ast.FromItem) -> PlannedUnit:
        if isinstance(item, ast.TableRef):
            key = item.name.lower()
            if key in self.cte_env:
                result = self.cte_env[key]
                binding = item.binding
                scope = Scope([(binding, name) for name in result.columns])
                rows_list = result.rows
                factory = self._metered(
                    lambda: iter(rows_list), f"cte-scan {item.name}"
                )
                return PlannedUnit(scope, factory, None)
            table = self.db.table(item.name)
            binding = item.binding
            scope = Scope([(binding, name) for name in table.schema.column_names])
            ticker = self.ticker
            version = self.version
            factory = self._metered(
                lambda: seq_scan(table, ticker, version),
                f"seq-scan {table.name}",
                table_rows=len(table),
            )
            return PlannedUnit(scope, factory, table)
        if isinstance(item, ast.SubqueryRef):
            result = self.execute_query(item.query)
            scope = Scope([(item.alias, name) for name in result.columns])
            rows_list = result.rows
            return PlannedUnit(scope, lambda: iter(rows_list), None)
        if isinstance(item, ast.Join):
            # A parenthesized join subtree: plan it as a nested pipeline.
            sub_select = ast.Select(items=(ast.SelectItem.star(),), from_=item)
            sub_scope, sub_rows = self._plan_from_where(sub_select)
            rows_list = list(sub_rows)
            return PlannedUnit(sub_scope, lambda: iter(rows_list), None)
        raise PlanError(f"cannot plan FROM item {item!r}")

    def _apply_local(
        self, planned: PlannedUnit, remaining: list[ast.Expr]
    ) -> tuple[Iterable[Row], list[ast.Expr], bool]:
        """Apply WHERE conjuncts local to a just-planned first unit, using an
        index for constant equality when available."""
        local = [c for c in remaining if _resolves_in(c, planned.scope)]
        rest = [c for c in remaining if c not in local]
        used_index = False
        rows: Iterable[Row]
        if planned.base is not None and local:
            index_match = _find_const_index_lookup(planned.base, planned.scope, local)
            if index_match is not None:
                index, key, leftovers = index_match
                rows = index_scan(index, key, self.ticker, self.version)
                if self.trace is not None:
                    span = self.trace.child(
                        f"index-scan {planned.base.name}", index=index.name
                    )
                    rows = span.meter(rows)
                local = leftovers
                used_index = True
            else:
                rows = planned.factory()
        else:
            rows = planned.factory()
        if local:
            condition = compile_expr(ast.conjoin(local), planned.scope)
            rows = self._filtered(rows, condition)
        return rows, rest, used_index

    def _filtered(self, rows: Iterable[Row], condition: Any) -> Iterable[Row]:
        """A filter operator, metered (rows-in/rows-out/time) when tracing."""
        if self.trace is None:
            return filter_rows(rows, condition, self.ticker)
        span = self.trace.child("filter")
        return span.meter(
            filter_rows(span.count(rows, "rows_in"), condition, self.ticker)
        )

    def _join(
        self,
        left_scope: Scope,
        left_rows: Iterable[Row],
        right: PlannedUnit,
        candidates: list[ast.Expr],
        outer: bool,
    ) -> Iterator[Row]:
        merged = left_scope.merged_with(right.scope)
        right_only: list[ast.Expr] = []
        equi_pairs: list[tuple[ast.Column, ast.Column]] = []
        residual: list[ast.Expr] = []
        for conjunct in candidates:
            pair = _as_equi_pair(conjunct, left_scope, right.scope)
            if pair is not None:
                equi_pairs.append(pair)
            elif _resolves_in(conjunct, right.scope):
                right_only.append(conjunct)
            elif _resolves_in(conjunct, merged):
                residual.append(conjunct)
            else:
                raise PlanError(f"cannot resolve join condition {conjunct!r}")

        residual_eval = (
            compile_expr(ast.conjoin(residual), merged) if residual else None
        )

        # Try an index-nested-loop join: right base table indexed on one of
        # the equi-join columns (the DPH/RPH "entry" probe pattern), or on a
        # constant-equality column from right_only.
        if right.base is not None:
            probe = self._try_index_probe(
                left_scope, right, equi_pairs, right_only, residual_eval, outer
            )
            if probe is not None:
                if self.trace is None:
                    return probe(left_rows)
                span = self.trace.child(
                    f"index-join {right.base.name}", outer=outer
                )
                return span.meter(probe(span.count(left_rows, "rows_in_left")))

        if equi_pairs:
            left_slots = [left_scope.resolve(left_col) for left_col, _ in equi_pairs]
            right_slots = [right.scope.resolve(right_col) for _, right_col in equi_pairs]
            right_rows: Iterable[Row] = right.factory()
            if right_only:
                right_condition = compile_expr(ast.conjoin(right_only), right.scope)
                right_rows = self._filtered(right_rows, right_condition)
            span = None if self.trace is None else self.trace.child(
                "hash-join", outer=outer
            )
            if span is not None:
                left_rows = span.count(left_rows, "rows_in_left")
                right_rows = span.count(right_rows, "rows_in_right")
            joined = hash_join(
                left_rows,
                right_rows,
                lambda row: tuple(row[s] for s in left_slots),
                lambda row: tuple(row[s] for s in right_slots),
                len(right.scope),
                residual_eval,
                outer,
                self.ticker,
            )
            return joined if span is None else span.meter(joined)

        # No equi keys: nested loop with the full condition.
        condition_parts = residual[:]
        right_factory = right.factory
        if right_only:
            right_condition = compile_expr(ast.conjoin(right_only), right.scope)
            ticker = self.ticker
            base_factory = right.factory

            def _filtered_right() -> Iterator[Row]:
                return filter_rows(base_factory(), right_condition, ticker)

            right_factory = _filtered_right
        condition = (
            compile_expr(ast.conjoin(condition_parts), merged)
            if condition_parts
            else None
        )
        span = None if self.trace is None else self.trace.child(
            "nested-loop-join", outer=outer
        )
        if span is not None:
            left_rows = span.count(left_rows, "rows_in_left")
            inner_factory = right_factory

            def _counted_right() -> Iterator[Row]:
                return span.count(inner_factory(), "rows_in_right")

            right_factory = _counted_right
        joined = nested_loop_join(
            left_rows,
            right_factory,
            len(right.scope),
            condition,
            outer,
            self.ticker,
        )
        return joined if span is None else span.meter(joined)

    def _try_index_probe(
        self,
        left_scope: Scope,
        right: PlannedUnit,
        equi_pairs: list[tuple[ast.Column, ast.Column]],
        right_only: list[ast.Expr],
        residual_eval,
        outer: bool,
    ):
        assert right.base is not None
        for pair_position, (left_col, right_col) in enumerate(equi_pairs):
            index = find_index(right.base, [right_col.name])
            if index is None:
                continue
            left_slot = left_scope.resolve(left_col)
            other_pairs = [
                p for i, p in enumerate(equi_pairs) if i != pair_position
            ]
            merged = left_scope.merged_with(right.scope)
            extra_residuals = [
                ast.BinOp("=", lhs, rhs) for lhs, rhs in other_pairs
            ]
            combined_residual = residual_eval
            if extra_residuals:
                extra_eval = compile_expr(ast.conjoin(extra_residuals), merged)
                if residual_eval is None:
                    combined_residual = extra_eval
                else:
                    prior = residual_eval

                    def combined(row, prior=prior, extra=extra_eval):
                        return (
                            True
                            if prior(row) is True and extra(row) is True
                            else False
                        )

                    combined_residual = combined
            right_filter = (
                compile_expr(ast.conjoin(right_only), right.scope)
                if right_only
                else None
            )
            ticker = self.ticker
            width = len(right.scope)
            version = self.version

            def probe(left_rows, index=index, left_slot=left_slot):
                return index_nested_loop_join(
                    left_rows,
                    index,
                    lambda row: (row[left_slot],),
                    width,
                    right_filter,
                    combined_residual,
                    outer,
                    ticker,
                    version,
                )

            return probe
        return None

    # ----------------------------------------------------------- aggregate

    _agg_index: dict[ast.Aggregate, int]

    def _aggregate(
        self, select: ast.Select, scope: Scope, rows: Iterable[Row]
    ) -> tuple[Scope, list[Row]]:
        aggregates: dict[ast.Aggregate, int] = {}
        for item in select.items:
            if item.expr is not None:
                _rewrite_aggregates(item.expr, aggregates)
        if select.having is not None:
            _rewrite_aggregates(select.having, aggregates)
        self._agg_index = aggregates

        group_exprs = [
            self._resolve_group_expr(expr, select, scope) for expr in select.group_by
        ]
        group_evals = [compile_expr(expr, scope) for expr in group_exprs]
        agg_list = sorted(aggregates.items(), key=lambda kv: kv[1])
        arg_evals = []
        for aggregate, _ in agg_list:
            if aggregate.arg is None:
                arg_evals.append(None)
            else:
                arg_evals.append(compile_expr(aggregate.arg, scope))

        groups: dict[tuple, tuple[Row, list[AggregateState]]] = {}
        star = count_star_sentinel()
        for row in rows:
            self.ticker.tick()
            key = tuple(evaluator(row) for evaluator in group_evals)
            entry = groups.get(key)
            if entry is None:
                states = [
                    AggregateState(aggregate.func.upper(), aggregate.distinct)
                    for aggregate, _ in agg_list
                ]
                entry = (row, states)
                groups[key] = entry
            for (aggregate, _), state, arg_eval in zip(
                agg_list, entry[1], arg_evals
            ):
                state.add(star if arg_eval is None else arg_eval(row))

        if not groups and not select.group_by:
            empty_row = (None,) * len(scope)
            states = [
                AggregateState(aggregate.func.upper(), aggregate.distinct)
                for aggregate, _ in agg_list
            ]
            groups[()] = (empty_row, states)

        extended_scope = Scope(
            scope.slots + [("#agg", f"agg{i}") for i in range(len(agg_list))]
        )
        extended_rows = [
            rep + tuple(state.result() for state in states)
            for rep, states in groups.values()
        ]
        return extended_scope, extended_rows

    def _resolve_group_expr(
        self, expr: ast.Expr, select: ast.Select, scope: Scope
    ) -> ast.Expr:
        """GROUP BY may name a select alias or a 1-based output position."""
        if isinstance(expr, ast.Const) and isinstance(expr.value, int):
            position = expr.value - 1
            if not 0 <= position < len(select.items):
                raise PlanError(f"GROUP BY position {expr.value} out of range")
            item = select.items[position]
            if item.expr is None:
                raise PlanError("GROUP BY position cannot reference *")
            return item.expr
        if isinstance(expr, ast.Column) and expr.table is None and not scope.contains(expr):
            for item in select.items:
                if item.alias and item.alias.lower() == expr.name.lower():
                    if item.expr is None:
                        break
                    return item.expr
        return expr

    # ------------------------------------------------------------- sorting

    def _order_output(
        self,
        rows: list[Row],
        columns: list[str],
        order_by: tuple[ast.OrderItem, ...],
    ) -> list[Row]:
        if not order_by:
            return rows
        plan = []
        for order_item in order_by:
            expr = order_item.expr
            if isinstance(expr, ast.Const) and isinstance(expr.value, int):
                plan.append((expr.value - 1, order_item.ascending))
            elif isinstance(expr, ast.Column) and expr.table is None:
                lowered = [name.lower() for name in columns]
                if expr.name.lower() not in lowered:
                    raise PlanError(f"unknown ORDER BY column {expr.name!r}")
                plan.append((lowered.index(expr.name.lower()), order_item.ascending))
            else:
                raise PlanError("set-operation ORDER BY must use output columns")
        result = list(rows)
        for position, ascending in reversed(plan):
            result.sort(key=lambda row: sort_key(row[position]), reverse=not ascending)
        return result


def _sort_projected(
    rows: list[Row], order_plan: list[tuple[str, Any, bool]]
) -> list[Row]:
    result = list(rows)
    for kind, key, ascending in reversed(order_plan):
        assert kind == "output"
        result.sort(key=lambda row: sort_key(row[key]), reverse=not ascending)
    return result


def _apply_limit(rows: list[Row], limit: int | None, offset: int | None) -> list[Row]:
    start = offset or 0
    if limit is None:
        return rows[start:] if start else rows
    return rows[start:start + limit]


def _flatten_from(item: ast.FromItem) -> list[tuple[ast.FromItem, str, ast.Expr | None]]:
    """Flatten a left-deep join tree into [(unit, join_kind, on), ...]."""
    if isinstance(item, ast.Join):
        units = _flatten_from(item.left)
        units.append((item.right, item.kind, item.on))
        return units
    return [(item, "FIRST", None)]


def _resolves_in(expr: ast.Expr, scope: Scope) -> bool:
    columns = expr_columns(expr)
    return all(scope.contains(column) for column in columns)


def _as_equi_pair(
    expr: ast.Expr, left_scope: Scope, right_scope: Scope
) -> tuple[ast.Column, ast.Column] | None:
    """Recognize ``left.col = right.col`` (either orientation)."""
    if not (isinstance(expr, ast.BinOp) and expr.op == "="):
        return None
    lhs, rhs = expr.left, expr.right
    if not (isinstance(lhs, ast.Column) and isinstance(rhs, ast.Column)):
        return None
    if left_scope.contains(lhs) and right_scope.contains(rhs) and not (
        right_scope.contains(lhs) or left_scope.contains(rhs)
    ):
        return (lhs, rhs)
    if left_scope.contains(rhs) and right_scope.contains(lhs) and not (
        right_scope.contains(rhs) or left_scope.contains(lhs)
    ):
        return (rhs, lhs)
    return None


def _find_const_index_lookup(
    table: Table, scope: Scope, conjuncts: list[ast.Expr]
) -> tuple[HashIndex, tuple, list[ast.Expr]] | None:
    """Find ``col = const`` conjuncts matching a hash index on ``table``."""
    const_eq: dict[str, Any] = {}
    sources: dict[str, ast.Expr] = {}
    for conjunct in conjuncts:
        if not (isinstance(conjunct, ast.BinOp) and conjunct.op == "="):
            continue
        column, const = None, None
        if isinstance(conjunct.left, ast.Column) and isinstance(
            conjunct.right, ast.Const
        ):
            column, const = conjunct.left, conjunct.right
        elif isinstance(conjunct.right, ast.Column) and isinstance(
            conjunct.left, ast.Const
        ):
            column, const = conjunct.right, conjunct.left
        if column is None or not scope.contains(column):
            continue
        if const.value is None:
            continue  # col = NULL is unknown, never a valid index probe
        name = column.name.lower()
        if name not in const_eq:
            const_eq[name] = const.value
            sources[name] = conjunct
    if not const_eq:
        return None
    for index in table.indexes:
        if not isinstance(index, HashIndex):
            continue
        names = [c.lower() for c in index.column_names]
        if all(name in const_eq for name in names):
            key = tuple(const_eq[name] for name in names)
            used = {sources[name] for name in names}
            leftovers = [c for c in conjuncts if c not in used]
            return index, key, leftovers
    return None


def _rewrite_aggregates(
    expr: ast.Expr, registry: dict[ast.Aggregate, int]
) -> tuple[ast.Expr, bool]:
    """Register aggregates found in ``expr``; returns (expr, found_any)."""
    found = False
    for aggregate in _collect_aggregates(expr):
        found = True
        if aggregate not in registry:
            registry[aggregate] = len(registry)
    return expr, found


def _collect_aggregates(expr: ast.Expr | None) -> list[ast.Aggregate]:
    if expr is None:
        return []
    if isinstance(expr, ast.Aggregate):
        return [expr]
    if isinstance(expr, ast.BinOp):
        return _collect_aggregates(expr.left) + _collect_aggregates(expr.right)
    if isinstance(expr, ast.UnaryOp):
        return _collect_aggregates(expr.operand)
    if isinstance(expr, ast.IsNull):
        return _collect_aggregates(expr.operand)
    if isinstance(expr, ast.InList):
        found = _collect_aggregates(expr.operand)
        for item in expr.items:
            found.extend(_collect_aggregates(item))
        return found
    if isinstance(expr, ast.Like):
        return _collect_aggregates(expr.operand) + _collect_aggregates(expr.pattern)
    if isinstance(expr, ast.FuncCall):
        found = []
        for arg in expr.args:
            found.extend(_collect_aggregates(arg))
        return found
    if isinstance(expr, ast.Case):
        found = []
        for cond, result in expr.whens:
            found.extend(_collect_aggregates(cond))
            found.extend(_collect_aggregates(result))
        found.extend(_collect_aggregates(expr.default))
        return found
    return []


def _rewrite_with_index(
    expr: ast.Expr, registry: dict[ast.Aggregate, int]
) -> ast.Expr:
    """Replace Aggregate nodes with references to the synthetic #agg columns."""
    if isinstance(expr, ast.Aggregate):
        return ast.Column("#agg", f"agg{registry[expr]}")
    if isinstance(expr, ast.BinOp):
        return ast.BinOp(
            expr.op,
            _rewrite_with_index(expr.left, registry),
            _rewrite_with_index(expr.right, registry),
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _rewrite_with_index(expr.operand, registry))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(_rewrite_with_index(expr.operand, registry), expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(
            _rewrite_with_index(expr.operand, registry),
            tuple(_rewrite_with_index(item, registry) for item in expr.items),
            expr.negated,
        )
    if isinstance(expr, ast.Like):
        return ast.Like(
            _rewrite_with_index(expr.operand, registry),
            _rewrite_with_index(expr.pattern, registry),
            expr.negated,
        )
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(
            expr.name,
            tuple(_rewrite_with_index(arg, registry) for arg in expr.args),
        )
    if isinstance(expr, ast.Case):
        return ast.Case(
            tuple(
                (
                    _rewrite_with_index(cond, registry),
                    _rewrite_with_index(result, registry),
                )
                for cond, result in expr.whens
            ),
            _rewrite_with_index(expr.default, registry)
            if expr.default is not None
            else None,
        )
    return expr
