"""Rule-based planner: SQL ASTs to operator pipelines.

Planning follows the classic recipe the paper relies on its relational
back-end to perform: conjunct classification (local / equi-join / residual),
index selection for equality predicates, index-nested-loop joins for
CTE-to-entry probes (the dominant pattern in the generated DB2RDF SQL), hash
joins for the rest, and a final filter/aggregate/sort/limit pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from . import ast
from .batch import (
    chunk_list,
    chunked,
    compile_filter_kernel,
    compile_projection_kernel,
    filter_batches,
    flatten,
    hash_join_batches,
    index_join_batches,
    index_scan_batches,
    seq_scan_batches,
)
from .catalog import Database, QueryResult
from .errors import PlanError
from .executor import (
    AggregateState,
    Ticker,
    count_star_sentinel,
    filter_rows,
    hash_join,
    index_nested_loop_join,
    index_scan,
    nested_loop_join,
    seq_scan,
)
from .expressions import Scope, compile_expr, contains_aggregate, expr_columns
from .index import HashIndex, find_index
from .table import Table
from .types import ColumnType, sort_key

Row = tuple
RowsFactory = Callable[[], Iterator[Row]]


@dataclass
class PlannedUnit:
    """One planned FROM unit: its scope, a re-iterable row source, and the
    base table when the unit is a direct table reference (enables index use)."""

    scope: Scope
    factory: RowsFactory
    base: Table | None
    #: per-slot column affinities aligned with ``scope`` (None entries =
    #: unknown provenance); lets filter kernels pick exact equality forms
    types: list[ColumnType | None] | None = None


def run_statement(
    db: Database,
    statement: ast.Statement,
    deadline: float | None = None,
    trace: Any = None,
    budget: Any = None,
    version: int | None = None,
) -> QueryResult:
    """Execute any statement against ``db``.

    ``trace`` is an optional parent span (duck-typed against
    ``repro.core.observe.Span``: ``child`` / ``set`` / ``inc`` / ``meter``
    / ``count``). When supplied, every operator the planner builds reports
    rows-in/rows-out and inclusive time under it; when ``None`` (the
    default) the operator pipelines are exactly the uninstrumented ones.
    ``budget`` (duck-typed, ``repro.core.resilience.Budget``) threads
    per-query guardrails into every operator's :class:`Ticker`.
    """
    if isinstance(statement, (ast.Select, ast.SetOp, ast.With)):
        return Planner(
            db, deadline, trace=trace, budget=budget, version=version
        ).execute_query(statement)
    if isinstance(statement, ast.CreateTable):
        db.create_table(
            statement.name,
            [(c.name, c.type) for c in statement.columns],
            if_not_exists=statement.if_not_exists,
        )
        return QueryResult([], [])
    if isinstance(statement, ast.CreateIndex):
        db.create_index(
            statement.name,
            statement.table,
            statement.columns,
            if_not_exists=statement.if_not_exists,
        )
        return QueryResult([], [])
    if isinstance(statement, ast.Insert):
        return _run_insert(db, statement)
    if isinstance(statement, ast.Delete):
        return _run_delete(db, statement, deadline)
    if isinstance(statement, ast.Update):
        return _run_update(db, statement)
    if isinstance(statement, ast.DropTable):
        if statement.if_exists and not db.has_table(statement.name):
            return QueryResult([], [])
        db.drop_table(statement.name)
        return QueryResult([], [])
    raise PlanError(f"cannot execute statement {statement!r}")


def _run_insert(db: Database, statement: ast.Insert) -> QueryResult:
    table = db.table(statement.table)
    empty_scope = Scope([])
    count = 0
    for row_exprs in statement.rows:
        values = [compile_expr(expr, empty_scope)(()) for expr in row_exprs]
        if statement.columns is not None:
            full = [None] * len(table.schema)
            for column_name, value in zip(statement.columns, values):
                full[table.schema.position(column_name)] = value
            values = full
        table.insert(values)
        count += 1
    return QueryResult(["rowcount"], [(count,)])


def _run_delete(
    db: Database, statement: ast.Delete, deadline: float | None
) -> QueryResult:
    table = db.table(statement.table)
    scope = Scope([(table.name, c) for c in table.schema.column_names])
    condition = (
        compile_expr(statement.where, scope) if statement.where is not None else None
    )
    doomed = [
        row_id
        for row_id, row in table.scan_with_ids()
        if condition is None or condition(row) is True
    ]
    for row_id in doomed:
        table.delete_row(row_id)
    return QueryResult(["rowcount"], [(len(doomed),)])


def _run_update(db: Database, statement: ast.Update) -> QueryResult:
    table = db.table(statement.table)
    scope = Scope([(table.name, c) for c in table.schema.column_names])
    condition = (
        compile_expr(statement.where, scope) if statement.where is not None else None
    )
    setters = [
        (table.schema.position(column), compile_expr(value, scope))
        for column, value in statement.assignments
    ]
    touched = 0
    updates: list[tuple[int, list]] = []
    for row_id, row in table.scan_with_ids():
        if condition is None or condition(row) is True:
            new_row = list(row)
            for position, setter in setters:
                new_row[position] = setter(row)
            updates.append((row_id, new_row))
    for row_id, new_row in updates:
        table.update_row(row_id, new_row)
        touched += 1
    return QueryResult(["rowcount"], [(touched,)])


class Planner:
    """Plans and executes one query (shared CTE environment per query)."""

    def __init__(
        self,
        db: Database,
        deadline: float | None = None,
        cte_env: dict[str, QueryResult] | None = None,
        trace: Any = None,
        budget: Any = None,
        version: int | None = None,
    ) -> None:
        self.db = db
        self.ticker = Ticker(deadline, budget)
        self.deadline = deadline
        self.budget = budget
        self.cte_env: dict[str, QueryResult] = dict(cte_env or {})
        #: parent span for operators planned next (None = tracing off)
        self.trace = trace
        #: MVCC snapshot version every table scan pins (None = latest)
        self.version = version
        #: rows per chunk for the vectorized pipeline (0 = tuple-at-a-time);
        #: when set, every FROM source streams chunks and operators use the
        #: batched equivalents from :mod:`batch`
        self.batch = db.batch_size or 0

    # ------------------------------------------------------------- queries

    def execute_query(self, query: ast.Query) -> QueryResult:
        if isinstance(query, ast.With):
            inner = Planner(
                self.db,
                self.deadline,
                self.cte_env,
                trace=self.trace,
                budget=self.budget,
                version=self.version,
            )
            for name, cte_query in query.ctes:
                if inner.trace is not None:
                    with self.trace.child(f"cte {name}") as cte_span:
                        inner.trace = cte_span
                        result = inner.execute_query(cte_query)
                        cte_span.set("rows_out", len(result.rows))
                    inner.trace = self.trace
                else:
                    result = inner.execute_query(cte_query)
                inner.cte_env[name.lower()] = result
            return inner.execute_query(query.body)
        if isinstance(query, ast.SetOp):
            return self._execute_setop(query)
        if isinstance(query, ast.Select):
            if self.trace is None:
                return self._execute_select(query)
            saved = self.trace
            span = saved.child("select")
            self.trace = span
            try:
                with span:
                    result = self._execute_select(query)
                    span.set("rows_out", len(result.rows))
                return result
            finally:
                self.trace = saved
        raise PlanError(f"not a query: {query!r}")

    def _execute_setop(self, query: ast.SetOp) -> QueryResult:
        if self.trace is None:
            return self._run_setop(query)
        saved = self.trace
        span = saved.child(f"setop {query.op.upper().replace(' ', '-')}")
        self.trace = span
        try:
            with span:
                result = self._run_setop(query)
                span.set("rows_out", len(result.rows))
            return result
        finally:
            self.trace = saved

    def _run_setop(self, query: ast.SetOp) -> QueryResult:
        left = self.execute_query(query.left)
        right = self.execute_query(query.right)
        if self.trace is not None:
            self.trace.inc("rows_in_left", len(left.rows))
            self.trace.inc("rows_in_right", len(right.rows))
        if left.rows and right.rows and len(left.rows[0]) != len(right.rows[0]):
            raise PlanError("set operation arity mismatch")
        op = query.op.upper()
        if op == "UNION ALL":
            rows = left.rows + right.rows
        elif op == "UNION":
            rows = list(dict.fromkeys(left.rows + right.rows))
        elif op == "INTERSECT":
            right_set = set(right.rows)
            rows = list(dict.fromkeys(r for r in left.rows if r in right_set))
        elif op == "EXCEPT":
            right_set = set(right.rows)
            rows = list(dict.fromkeys(r for r in left.rows if r not in right_set))
        else:
            raise PlanError(f"unsupported set operation {query.op!r}")
        columns = left.columns or right.columns
        rows = self._order_output(rows, columns, query.order_by)
        rows = _apply_limit(rows, query.limit, query.offset)
        result = QueryResult(columns, rows)
        # Affinity meet: a slot keeps its claim only when both branches
        # agree (every output row came from one of them).
        left_types = getattr(left, "column_types", None)
        right_types = getattr(right, "column_types", None)
        if (
            left_types is not None
            and right_types is not None
            and len(left_types) == len(right_types)
        ):
            meet = [
                a if a is b else None
                for a, b in zip(left_types, right_types)
            ]
            if any(m is not None for m in meet):
                result.column_types = meet
        return result

    # -------------------------------------------------------------- select

    def _execute_select(self, select: ast.Select) -> QueryResult:
        scope, scope_types, rows = self._plan_from_where(select)
        if self.batch:
            # The pipeline streamed chunks; downstream consumers (aggregate
            # loop, materialization) take rows. chain.from_iterable is a
            # C-level flatten, so this keeps the batched wins.
            rows = flatten(rows)

        is_aggregate = (
            bool(select.group_by)
            or select.having is not None
            or any(
                item.expr is not None and contains_aggregate(item.expr)
                for item in select.items
            )
        )
        if is_aggregate:
            base_scope = scope
            if self.trace is None:
                scope, rows = self._aggregate(select, scope, rows)
            else:
                span = self.trace.child("aggregate")
                with span:
                    scope, rows = self._aggregate(
                        select, scope, span.count(rows, "rows_in")
                    )
                    span.set("rows_out", len(rows))
            scope_types = self._extend_agg_types(scope_types, base_scope)
            if select.having is not None:
                condition = compile_expr(
                    _rewrite_with_index(select.having, self._agg_index), scope
                )
                rows = [row for row in rows if condition(row) is True]
        items = self._expand_items(select.items, scope)
        column_names = [name for name, _ in items]
        item_exprs = [expr for _, expr in items]
        if is_aggregate:
            item_exprs = [
                _rewrite_with_index(expr, self._agg_index) for expr in item_exprs
            ]
        evaluators = [compile_expr(expr, scope) for expr in item_exprs]
        # Batch mode: project whole row lists through a compiled kernel
        # (itemgetter / generated comprehension) when the items allow it.
        kernel = (
            compile_projection_kernel(item_exprs, scope) if self.batch else None
        )

        def project(rows_list: list[Row]) -> list[Row]:
            if kernel is not None:
                return kernel(rows_list)
            return [
                tuple(evaluator(row) for evaluator in evaluators)
                for row in rows_list
            ]

        needs_scope_sort = False
        order_plan: list[tuple[str, Any, bool]] = []  # (kind, key, ascending)
        for order_item in select.order_by:
            resolved = self._resolve_order_item(order_item, column_names, scope)
            order_plan.append(resolved)
            if resolved[0] == "scope":
                needs_scope_sort = True

        materialized = list(rows)
        if needs_scope_sort:
            materialized = self._sort_scope_rows(
                materialized, order_plan, evaluators, scope
            )
            projected = project(materialized)
            if select.distinct:
                projected = self._distinct(projected)
        else:
            projected = project(materialized)
            if select.distinct:
                projected = self._distinct(projected)
            if order_plan:
                projected = _sort_projected(projected, order_plan)
        projected = _apply_limit(projected, select.limit, select.offset)
        if self.db.dictionary is not None and (
            is_aggregate
            or any(not isinstance(expr, ast.Column) for expr in item_exprs)
        ):
            # Pure-column projections are canonical by induction (base TEXT
            # columns are interned; CTE/subquery results were canonicalized
            # when produced); only computed items — or aggregates over
            # computed arguments — can mint plain strings.
            _canonicalize_rows(projected, self.db.dictionary.lookup)
        result = QueryResult(column_names, projected)
        # Affinity inference for downstream kernels: a CTE scanning this
        # result knows which slots hold only interned TEXT ids.
        result.column_types = _output_affinities(item_exprs, scope, scope_types)
        return result

    def _extend_agg_types(
        self,
        scope_types: list[ColumnType | None] | None,
        base_scope: Scope,
    ) -> list[ColumnType | None] | None:
        """Affinities for the aggregate-extended scope: the representative
        row keeps the input slots' affinities; MIN/MAX of a column carry
        its affinity through (they return a stored value or NULL)."""
        extra: list[ColumnType | None] = []
        for aggregate, _ in sorted(self._agg_index.items(), key=lambda kv: kv[1]):
            affinity = None
            if aggregate.func.upper() in ("MIN", "MAX") and isinstance(
                aggregate.arg, ast.Column
            ):
                affinity = _infer_affinity(aggregate.arg, base_scope, scope_types)
            extra.append(affinity)
        if scope_types is None and not any(a is not None for a in extra):
            return None
        base = (
            scope_types
            if scope_types is not None
            else [None] * len(base_scope)
        )
        return list(base) + extra

    def _distinct(self, projected: list[Row]) -> list[Row]:
        deduped = list(dict.fromkeys(projected))
        if self.trace is not None:
            self.trace.child(
                "distinct", rows_in=len(projected), rows_out=len(deduped)
            )
        return deduped

    def _resolve_order_item(
        self, order_item: ast.OrderItem, column_names: list[str], scope: Scope
    ) -> tuple[str, Any, bool]:
        expr = order_item.expr
        if isinstance(expr, ast.Const) and isinstance(expr.value, int):
            position = expr.value - 1
            if not 0 <= position < len(column_names):
                raise PlanError(f"ORDER BY position {expr.value} out of range")
            return ("output", position, order_item.ascending)
        if isinstance(expr, ast.Column) and expr.table is None:
            lowered = [name.lower() for name in column_names]
            if lowered.count(expr.name.lower()) == 1:
                return ("output", lowered.index(expr.name.lower()), order_item.ascending)
        evaluator = compile_expr(expr, scope)
        return ("scope", evaluator, order_item.ascending)

    def _sort_scope_rows(
        self,
        rows: list[Row],
        order_plan: list[tuple[str, Any, bool]],
        evaluators: list,
        scope: Scope,
    ) -> list[Row]:
        # Descending keys are handled by repeated stable sorts from the last
        # key to the first.
        result = list(rows)
        for kind, key, ascending in reversed(order_plan):
            if kind == "scope":
                extractor = key
            else:
                evaluator = evaluators[key]
                extractor = evaluator
            result.sort(key=lambda row: sort_key(extractor(row)), reverse=not ascending)
        return result

    def _expand_items(
        self, items: tuple[ast.SelectItem, ...], scope: Scope
    ) -> list[tuple[str, ast.Expr]]:
        expanded: list[tuple[str, ast.Expr]] = []
        for position, item in enumerate(items):
            if item.expr is None:
                for binding, name in scope.slots:
                    if binding == "#agg":
                        continue
                    expanded.append((name, ast.Column(binding, name)))
                continue
            if item.alias:
                name = item.alias
            elif isinstance(item.expr, ast.Column):
                name = item.expr.name
            else:
                name = f"col{position + 1}"
            expanded.append((name, item.expr))
        return expanded

    # ---------------------------------------------------------- FROM/WHERE

    def _plan_from_where(
        self, select: ast.Select
    ) -> tuple[Scope, list[ColumnType | None] | None, Iterable[Row]]:
        """Plan FROM/WHERE; returns (scope, per-slot affinities, rows)."""
        if select.from_ is None:
            scope = Scope([])
            rows: Iterable[Row] = [()]
            if select.where is not None:
                condition = compile_expr(select.where, scope)
                rows = [row for row in rows if condition(row) is True]
            if self.batch:
                chunk = list(rows)
                return scope, [], iter([chunk] if chunk else [])
            return scope, [], rows

        units = _flatten_from(select.from_)
        remaining = ast.split_conjuncts(select.where)

        first_item, _, _ = units[0]
        planned = self._plan_unit(first_item)
        scope = planned.scope
        types = planned.types
        rows: Iterable[Row] = None  # type: ignore[assignment]
        rows, remaining, used_base_index = self._apply_local(
            planned, remaining
        )

        for item, kind, on in units[1:]:
            right = self._plan_unit(item)
            outer = kind == "LEFT"
            merged = scope.merged_with(right.scope)
            if outer:
                candidates = ast.split_conjuncts(on)
            else:
                candidates = ast.split_conjuncts(on)
                pulled = []
                for conjunct in remaining:
                    if _resolves_in(conjunct, merged) and not _resolves_in(
                        conjunct, scope
                    ):
                        pulled.append(conjunct)
                for conjunct in pulled:
                    remaining.remove(conjunct)
                candidates.extend(pulled)
            rows = self._join(scope, types, rows, right, candidates, outer)
            types = _merge_types(types, len(scope), right.types, len(right.scope))
            scope = merged
            if not outer:
                # conjuncts that became resolvable only now (rare) were pulled
                # above; nothing else to do here
                pass

        # Apply any still-unapplied conjuncts (e.g. IS NULL over LEFT joins).
        leftovers = []
        for conjunct in remaining:
            if not _resolves_in(conjunct, scope):
                raise PlanError(f"cannot resolve WHERE condition {conjunct!r}")
            leftovers.append(conjunct)
        if leftovers:
            conjoined = ast.conjoin(leftovers)
            condition = compile_expr(conjoined, scope)
            rows = self._filtered(
                rows, condition, expr=conjoined, scope=scope, column_types=types
            )
        return scope, types, rows

    def _metered(self, factory: RowsFactory, name: str, **attrs) -> RowsFactory:
        """Wrap a row-source factory in an operator span when tracing.

        The span is created on first use — a factory the planner ends up
        bypassing (e.g. a seq scan displaced by an index probe) leaves no
        phantom operator — and accumulates rows_out / inclusive time across
        every invocation (a nested-loop right side re-runs per left batch)."""
        if self.trace is None:
            return factory
        parent = self.trace
        state: dict[str, Any] = {}
        batched = self.batch > 0

        def wrapped() -> Iterator[Row]:
            span = state.get("span")
            if span is None:
                span = parent.child(name, **attrs)
                state["span"] = span
            if batched:
                return _meter_chunks(span, factory(), batched)
            return span.meter(factory())

        return wrapped

    def _plan_unit(self, item: ast.FromItem) -> PlannedUnit:
        batch = self.batch
        if isinstance(item, ast.TableRef):
            key = item.name.lower()
            if key in self.cte_env:
                result = self.cte_env[key]
                binding = item.binding
                scope = Scope([(binding, name) for name in result.columns])
                rows_list = result.rows
                factory = self._metered(
                    (lambda: chunk_list(rows_list, batch))
                    if batch
                    else (lambda: iter(rows_list)),
                    f"cte-scan {item.name}",
                )
                return PlannedUnit(
                    scope, factory, None, getattr(result, "column_types", None)
                )
            table = self.db.table(item.name)
            binding = item.binding
            scope = Scope([(binding, name) for name in table.schema.column_names])
            ticker = self.ticker
            version = self.version
            factory = self._metered(
                (lambda: seq_scan_batches(table, ticker, version, batch))
                if batch
                else (lambda: seq_scan(table, ticker, version)),
                f"seq-scan {table.name}",
                table_rows=len(table),
            )
            return PlannedUnit(
                scope, factory, table, list(table.schema.column_types)
            )
        if isinstance(item, ast.SubqueryRef):
            result = self.execute_query(item.query)
            scope = Scope([(item.alias, name) for name in result.columns])
            rows_list = result.rows
            result_types = getattr(result, "column_types", None)
            if batch:
                return PlannedUnit(
                    scope, lambda: chunk_list(rows_list, batch), None, result_types
                )
            return PlannedUnit(scope, lambda: iter(rows_list), None, result_types)
        if isinstance(item, ast.Join):
            # A parenthesized join subtree: plan it as a nested pipeline.
            sub_select = ast.Select(items=(ast.SelectItem.star(),), from_=item)
            sub_scope, sub_types, sub_rows = self._plan_from_where(sub_select)
            if batch:
                rows_list = [row for chunk in sub_rows for row in chunk]
                return PlannedUnit(
                    sub_scope, lambda: chunk_list(rows_list, batch), None, sub_types
                )
            rows_list = list(sub_rows)
            return PlannedUnit(
                sub_scope, lambda: iter(rows_list), None, sub_types
            )
        raise PlanError(f"cannot plan FROM item {item!r}")

    def _apply_local(
        self, planned: PlannedUnit, remaining: list[ast.Expr]
    ) -> tuple[Iterable[Row], list[ast.Expr], bool]:
        """Apply WHERE conjuncts local to a just-planned first unit, using an
        index for constant equality when available."""
        local = [c for c in remaining if _resolves_in(c, planned.scope)]
        rest = [c for c in remaining if c not in local]
        used_index = False
        rows: Iterable[Row]
        if planned.base is not None and local:
            index_match = _find_const_index_lookup(planned.base, planned.scope, local)
            if index_match is not None:
                index, key, leftovers = index_match
                if self.batch:
                    rows = index_scan_batches(
                        index, key, self.ticker, self.version, self.batch
                    )
                else:
                    rows = index_scan(index, key, self.ticker, self.version)
                if self.trace is not None:
                    span = self.trace.child(
                        f"index-scan {planned.base.name}", index=index.name
                    )
                    rows = (
                        _meter_chunks(span, rows, self.batch)
                        if self.batch
                        else span.meter(rows)
                    )
                local = leftovers
                used_index = True
            else:
                rows = planned.factory()
        else:
            rows = planned.factory()
        if local:
            conjoined = ast.conjoin(local)
            condition = compile_expr(conjoined, planned.scope)
            rows = self._filtered(
                rows,
                condition,
                expr=conjoined,
                scope=planned.scope,
                column_types=planned.types,
            )
        return rows, rest, used_index

    def _filtered(
        self,
        rows: Iterable[Row],
        condition: Any,
        expr: ast.Expr | None = None,
        scope: Scope | None = None,
        column_types: list[ColumnType] | None = None,
    ) -> Iterable[Row]:
        """A filter operator, metered (rows-in/rows-out/time) when tracing.

        In batch mode ``rows`` is a chunk iterator; when the predicate AST
        (``expr`` + ``scope``) is supplied, a whole-chunk kernel is compiled
        for the supported subset, otherwise the scalar ``condition`` runs
        per row inside each chunk."""
        if not self.batch:
            if self.trace is None:
                return filter_rows(rows, condition, self.ticker)
            span = self.trace.child("filter")
            return span.meter(
                filter_rows(span.count(rows, "rows_in"), condition, self.ticker)
            )
        kernel = None
        if expr is not None and scope is not None:
            kernel = compile_filter_kernel(
                expr, scope, self.db.dictionary, column_types
            )
        if self.trace is None:
            return filter_batches(rows, kernel, condition, self.ticker)
        span = self.trace.child("filter")
        return _meter_chunks(
            span,
            filter_batches(
                _count_chunks(span, rows, "rows_in", self.batch),
                kernel,
                condition,
                self.ticker,
            ),
            self.batch,
        )

    def _join(
        self,
        left_scope: Scope,
        left_types: list[ColumnType | None] | None,
        left_rows: Iterable[Row],
        right: PlannedUnit,
        candidates: list[ast.Expr],
        outer: bool,
    ) -> Iterator[Row]:
        merged = left_scope.merged_with(right.scope)
        merged_types = _merge_types(
            left_types, len(left_scope), right.types, len(right.scope)
        )
        right_only: list[ast.Expr] = []
        equi_pairs: list[tuple[ast.Column, ast.Column]] = []
        residual: list[ast.Expr] = []
        for conjunct in candidates:
            pair = _as_equi_pair(conjunct, left_scope, right.scope)
            if pair is not None:
                equi_pairs.append(pair)
            elif _resolves_in(conjunct, right.scope):
                right_only.append(conjunct)
            elif _resolves_in(conjunct, merged):
                residual.append(conjunct)
            else:
                raise PlanError(f"cannot resolve join condition {conjunct!r}")

        # Inner-join residuals are equivalent to a post-join WHERE; running
        # them as a dedicated filter makes them kernel-eligible (the hot
        # COALESCE compat conditions in generated SQL land here) instead of
        # a per-row closure inside the join. Outer joins must keep the
        # residual inside: its failure produces the NULL-padded row.
        post_residual: list[ast.Expr] = []
        if residual and not outer:
            post_residual = residual
            residual = []

        def _finish(joined: Iterable[Row]) -> Iterable[Row]:
            if not post_residual:
                return joined
            conjoined = ast.conjoin(post_residual)
            return self._filtered(
                joined,
                compile_expr(conjoined, merged),
                expr=conjoined,
                scope=merged,
                column_types=merged_types,
            )

        residual_eval = (
            compile_expr(ast.conjoin(residual), merged) if residual else None
        )

        # Try an index-nested-loop join: right base table indexed on one of
        # the equi-join columns (the DPH/RPH "entry" probe pattern), or on a
        # constant-equality column from right_only.
        if right.base is not None:
            probe = self._try_index_probe(
                left_scope,
                right,
                equi_pairs,
                right_only,
                residual_eval,
                outer,
                defer=None if outer else post_residual,
            )
            if probe is not None:
                if self.trace is None:
                    return _finish(probe(left_rows))
                span = self.trace.child(
                    f"index-join {right.base.name}", outer=outer
                )
                if self.batch:
                    return _finish(
                        _meter_chunks(
                            span,
                            probe(
                                _count_chunks(
                                    span, left_rows, "rows_in_left", self.batch
                                )
                            ),
                            self.batch,
                        )
                    )
                return _finish(
                    span.meter(probe(span.count(left_rows, "rows_in_left")))
                )

        if equi_pairs:
            left_slots = [left_scope.resolve(left_col) for left_col, _ in equi_pairs]
            right_slots = [right.scope.resolve(right_col) for _, right_col in equi_pairs]
            right_rows: Iterable[Row] = right.factory()
            if right_only:
                right_conjoined = ast.conjoin(right_only)
                right_condition = compile_expr(right_conjoined, right.scope)
                right_rows = self._filtered(
                    right_rows,
                    right_condition,
                    expr=right_conjoined,
                    scope=right.scope,
                    column_types=right.types,
                )
            span = None if self.trace is None else self.trace.child(
                "hash-join", outer=outer
            )
            if self.batch:
                if span is not None:
                    left_rows = _count_chunks(
                        span, left_rows, "rows_in_left", self.batch
                    )
                    right_rows = _count_chunks(
                        span, right_rows, "rows_in_right", self.batch
                    )
                joined = hash_join_batches(
                    left_rows,
                    right_rows,
                    left_slots,
                    right_slots,
                    len(right.scope),
                    residual_eval,
                    outer,
                    self.ticker,
                )
                return _finish(
                    joined if span is None else _meter_chunks(
                        span, joined, self.batch
                    )
                )
            if span is not None:
                left_rows = span.count(left_rows, "rows_in_left")
                right_rows = span.count(right_rows, "rows_in_right")
            joined = hash_join(
                left_rows,
                right_rows,
                lambda row: tuple(row[s] for s in left_slots),
                lambda row: tuple(row[s] for s in right_slots),
                len(right.scope),
                residual_eval,
                outer,
                self.ticker,
            )
            return _finish(joined if span is None else span.meter(joined))

        # No equi keys: nested loop with the full condition. In batch mode
        # the scalar operator is reused (this is the rare non-equi path):
        # both sides are flattened to rows and the output is re-chunked.
        condition_parts = residual[:]
        if self.batch:
            left_rows = flatten(left_rows)
            chunk_factory = right.factory

            def _flat_right() -> Iterator[Row]:
                return flatten(chunk_factory())

            right_factory = _flat_right
        else:
            right_factory = right.factory
        if right_only:
            right_condition = compile_expr(ast.conjoin(right_only), right.scope)
            ticker = self.ticker
            base_factory = right_factory

            def _filtered_right() -> Iterator[Row]:
                return filter_rows(base_factory(), right_condition, ticker)

            right_factory = _filtered_right
        condition = (
            compile_expr(ast.conjoin(condition_parts), merged)
            if condition_parts
            else None
        )
        span = None if self.trace is None else self.trace.child(
            "nested-loop-join", outer=outer
        )
        if span is not None:
            left_rows = span.count(left_rows, "rows_in_left")
            inner_factory = right_factory

            def _counted_right() -> Iterator[Row]:
                return span.count(inner_factory(), "rows_in_right")

            right_factory = _counted_right
        joined = nested_loop_join(
            left_rows,
            right_factory,
            len(right.scope),
            condition,
            outer,
            self.ticker,
        )
        if span is not None:
            joined = span.meter(joined)
        return _finish(chunked(joined, self.batch) if self.batch else joined)

    def _try_index_probe(
        self,
        left_scope: Scope,
        right: PlannedUnit,
        equi_pairs: list[tuple[ast.Column, ast.Column]],
        right_only: list[ast.Expr],
        residual_eval,
        outer: bool,
        defer: list[ast.Expr] | None = None,
    ):
        """``defer`` (inner joins only): extra equality conjuncts beyond the
        probed index key are appended there for the caller's post-join
        kernel filter instead of running as a per-row closure inside the
        probe."""
        assert right.base is not None
        for pair_position, (left_col, right_col) in enumerate(equi_pairs):
            index = find_index(right.base, [right_col.name])
            if index is None:
                continue
            left_slot = left_scope.resolve(left_col)
            other_pairs = [
                p for i, p in enumerate(equi_pairs) if i != pair_position
            ]
            merged = left_scope.merged_with(right.scope)
            extra_residuals = [
                ast.BinOp("=", lhs, rhs) for lhs, rhs in other_pairs
            ]
            if defer is not None:
                # Inner join: the probed key is the only work the index can
                # save; every other conjunct — extra equi pairs and
                # right-side constant filters — emits through to the
                # post-join kernel filter, which runs whole-chunk instead
                # of one closure call per candidate row.
                defer.extend(extra_residuals)
                defer.extend(right_only)
                extra_residuals = []
                right_only = []
            combined_residual = residual_eval
            if extra_residuals:
                extra_eval = compile_expr(ast.conjoin(extra_residuals), merged)
                if residual_eval is None:
                    combined_residual = extra_eval
                else:
                    prior = residual_eval

                    def combined(row, prior=prior, extra=extra_eval):
                        return (
                            True
                            if prior(row) is True and extra(row) is True
                            else False
                        )

                    combined_residual = combined
            right_filter = (
                compile_expr(ast.conjoin(right_only), right.scope)
                if right_only
                else None
            )
            ticker = self.ticker
            width = len(right.scope)
            version = self.version
            if self.batch:

                def probe(left_chunks, index=index, left_slot=left_slot):
                    return index_join_batches(
                        left_chunks,
                        index,
                        left_slot,
                        width,
                        right_filter,
                        combined_residual,
                        outer,
                        ticker,
                        version,
                    )

                return probe

            def probe(left_rows, index=index, left_slot=left_slot):
                return index_nested_loop_join(
                    left_rows,
                    index,
                    lambda row: (row[left_slot],),
                    width,
                    right_filter,
                    combined_residual,
                    outer,
                    ticker,
                    version,
                )

            return probe
        return None

    # ----------------------------------------------------------- aggregate

    _agg_index: dict[ast.Aggregate, int]

    def _aggregate(
        self, select: ast.Select, scope: Scope, rows: Iterable[Row]
    ) -> tuple[Scope, list[Row]]:
        aggregates: dict[ast.Aggregate, int] = {}
        for item in select.items:
            if item.expr is not None:
                _rewrite_aggregates(item.expr, aggregates)
        if select.having is not None:
            _rewrite_aggregates(select.having, aggregates)
        self._agg_index = aggregates

        group_exprs = [
            self._resolve_group_expr(expr, select, scope) for expr in select.group_by
        ]
        group_evals = [compile_expr(expr, scope) for expr in group_exprs]
        agg_list = sorted(aggregates.items(), key=lambda kv: kv[1])
        arg_evals = []
        for aggregate, _ in agg_list:
            if aggregate.arg is None:
                arg_evals.append(None)
            else:
                arg_evals.append(compile_expr(aggregate.arg, scope))

        groups: dict[tuple, tuple[Row, list[AggregateState]]] = {}
        star = count_star_sentinel()
        for row in rows:
            self.ticker.tick()
            key = tuple(evaluator(row) for evaluator in group_evals)
            entry = groups.get(key)
            if entry is None:
                states = [
                    AggregateState(aggregate.func.upper(), aggregate.distinct)
                    for aggregate, _ in agg_list
                ]
                entry = (row, states)
                groups[key] = entry
            for (aggregate, _), state, arg_eval in zip(
                agg_list, entry[1], arg_evals
            ):
                state.add(star if arg_eval is None else arg_eval(row))

        if not groups and not select.group_by:
            empty_row = (None,) * len(scope)
            states = [
                AggregateState(aggregate.func.upper(), aggregate.distinct)
                for aggregate, _ in agg_list
            ]
            groups[()] = (empty_row, states)

        extended_scope = Scope(
            scope.slots + [("#agg", f"agg{i}") for i in range(len(agg_list))]
        )
        extended_rows = [
            rep + tuple(state.result() for state in states)
            for rep, states in groups.values()
        ]
        return extended_scope, extended_rows

    def _resolve_group_expr(
        self, expr: ast.Expr, select: ast.Select, scope: Scope
    ) -> ast.Expr:
        """GROUP BY may name a select alias or a 1-based output position."""
        if isinstance(expr, ast.Const) and isinstance(expr.value, int):
            position = expr.value - 1
            if not 0 <= position < len(select.items):
                raise PlanError(f"GROUP BY position {expr.value} out of range")
            item = select.items[position]
            if item.expr is None:
                raise PlanError("GROUP BY position cannot reference *")
            return item.expr
        if isinstance(expr, ast.Column) and expr.table is None and not scope.contains(expr):
            for item in select.items:
                if item.alias and item.alias.lower() == expr.name.lower():
                    if item.expr is None:
                        break
                    return item.expr
        return expr

    # ------------------------------------------------------------- sorting

    def _order_output(
        self,
        rows: list[Row],
        columns: list[str],
        order_by: tuple[ast.OrderItem, ...],
    ) -> list[Row]:
        if not order_by:
            return rows
        plan = []
        for order_item in order_by:
            expr = order_item.expr
            if isinstance(expr, ast.Const) and isinstance(expr.value, int):
                plan.append((expr.value - 1, order_item.ascending))
            elif isinstance(expr, ast.Column) and expr.table is None:
                lowered = [name.lower() for name in columns]
                if expr.name.lower() not in lowered:
                    raise PlanError(f"unknown ORDER BY column {expr.name!r}")
                plan.append((lowered.index(expr.name.lower()), order_item.ascending))
            else:
                raise PlanError("set-operation ORDER BY must use output columns")
        result = list(rows)
        for position, ascending in reversed(plan):
            result.sort(key=lambda row: sort_key(row[position]), reverse=not ascending)
        return result


def _merge_types(
    left_types: list[ColumnType | None] | None,
    left_width: int,
    right_types: list[ColumnType | None] | None,
    right_width: int,
) -> list[ColumnType | None] | None:
    """Concatenate per-slot affinities across a join (None = unknown)."""
    if left_types is None and right_types is None:
        return None
    left = left_types if left_types is not None else [None] * left_width
    right = right_types if right_types is not None else [None] * right_width
    return list(left) + list(right)


def _infer_affinity(
    expr: ast.Expr,
    scope: Scope,
    types: list[ColumnType | None] | None,
) -> ColumnType | None:
    """The affinity of a projected expression, or None when unknown.

    Only claims an affinity when the expression provably passes stored
    values through unchanged: a column reference, or a COALESCE whose
    branches all share one affinity. Anything computed (functions, string
    literals, arithmetic) stays unknown — its values may be plain strings
    that equal an interned value lexically without sharing its id."""
    if types is None:
        return None
    if isinstance(expr, ast.Column):
        try:
            slot = scope.resolve(expr)
        except PlanError:
            return None
        return types[slot] if slot < len(types) else None
    if (
        isinstance(expr, ast.FuncCall)
        and expr.name.upper() == "COALESCE"
        and expr.args
    ):
        affinities = [_infer_affinity(arg, scope, types) for arg in expr.args]
        first = affinities[0]
        if first is not None and all(a is first for a in affinities):
            return first
        return None
    return None


def _output_affinities(
    item_exprs: list[ast.Expr],
    scope: Scope,
    types: list[ColumnType | None] | None,
) -> list[ColumnType | None] | None:
    if types is None:
        return None
    out = [_infer_affinity(expr, scope, types) for expr in item_exprs]
    return out if any(a is not None for a in out) else None


def _canonicalize_rows(rows: list[Row], lookup: Any) -> None:
    """Give every interned string one representation in result rows.

    Projections can emit plain strings (literals, function results) next to
    dictionary-encoded column values. Downstream consumers that compare raw
    values — set operations, DISTINCT over a CTE scan, hash joins on
    derived columns — need equal strings to be *identical* values, so any
    plain string the dictionary knows is replaced by its id (in place;
    lookup never allocates, and a string without an id has no encoded twin
    anywhere, so leaving it plain is exact)."""
    for position, row in enumerate(rows):
        for value in row:
            if type(value) is str and lookup(value) is not None:
                rows[position] = tuple(
                    encoded
                    if type(v) is str and (encoded := lookup(v)) is not None
                    else v
                    for v in row
                )
                break


def _meter_chunks(span: Any, chunks: Iterable, size: int = 256) -> Iterable:
    """``span.meter`` for chunk streams (counts logical rows).

    Spans are duck-typed; one without ``meter_batches`` gets the scalar
    meter over a flattened stream, re-chunked for the pipeline."""
    metered = getattr(span, "meter_batches", None)
    if metered is not None:
        return metered(chunks)
    return chunked(span.meter(flatten(chunks)), size)


def _count_chunks(span: Any, chunks: Iterable, key: str, size: int = 256) -> Iterable:
    """``span.count`` for chunk streams (counts logical rows)."""
    counted = getattr(span, "count_batches", None)
    if counted is not None:
        return counted(chunks, key)
    return chunked(span.count(flatten(chunks), key), size)


def _sort_projected(
    rows: list[Row], order_plan: list[tuple[str, Any, bool]]
) -> list[Row]:
    result = list(rows)
    for kind, key, ascending in reversed(order_plan):
        assert kind == "output"
        result.sort(key=lambda row: sort_key(row[key]), reverse=not ascending)
    return result


def _apply_limit(rows: list[Row], limit: int | None, offset: int | None) -> list[Row]:
    start = offset or 0
    if limit is None:
        return rows[start:] if start else rows
    return rows[start:start + limit]


def _flatten_from(item: ast.FromItem) -> list[tuple[ast.FromItem, str, ast.Expr | None]]:
    """Flatten a left-deep join tree into [(unit, join_kind, on), ...]."""
    if isinstance(item, ast.Join):
        units = _flatten_from(item.left)
        units.append((item.right, item.kind, item.on))
        return units
    return [(item, "FIRST", None)]


def _resolves_in(expr: ast.Expr, scope: Scope) -> bool:
    columns = expr_columns(expr)
    return all(scope.contains(column) for column in columns)


def _as_equi_pair(
    expr: ast.Expr, left_scope: Scope, right_scope: Scope
) -> tuple[ast.Column, ast.Column] | None:
    """Recognize ``left.col = right.col`` (either orientation)."""
    if not (isinstance(expr, ast.BinOp) and expr.op == "="):
        return None
    lhs, rhs = expr.left, expr.right
    if not (isinstance(lhs, ast.Column) and isinstance(rhs, ast.Column)):
        return None
    if left_scope.contains(lhs) and right_scope.contains(rhs) and not (
        right_scope.contains(lhs) or left_scope.contains(rhs)
    ):
        return (lhs, rhs)
    if left_scope.contains(rhs) and right_scope.contains(lhs) and not (
        right_scope.contains(rhs) or left_scope.contains(lhs)
    ):
        return (rhs, lhs)
    return None


def _find_const_index_lookup(
    table: Table, scope: Scope, conjuncts: list[ast.Expr]
) -> tuple[HashIndex, tuple, list[ast.Expr]] | None:
    """Find ``col = const`` conjuncts matching a hash index on ``table``."""
    const_eq: dict[str, Any] = {}
    sources: dict[str, ast.Expr] = {}
    for conjunct in conjuncts:
        if not (isinstance(conjunct, ast.BinOp) and conjunct.op == "="):
            continue
        column, const = None, None
        if isinstance(conjunct.left, ast.Column) and isinstance(
            conjunct.right, ast.Const
        ):
            column, const = conjunct.left, conjunct.right
        elif isinstance(conjunct.right, ast.Column) and isinstance(
            conjunct.left, ast.Const
        ):
            column, const = conjunct.right, conjunct.left
        if column is None or not scope.contains(column):
            continue
        if const.value is None:
            continue  # col = NULL is unknown, never a valid index probe
        name = column.name.lower()
        if name not in const_eq:
            const_eq[name] = const.value
            sources[name] = conjunct
    if not const_eq:
        return None
    for index in table.indexes:
        if not isinstance(index, HashIndex):
            continue
        names = [c.lower() for c in index.column_names]
        if all(name in const_eq for name in names):
            key = tuple(
                _encode_probe_value(table, name, const_eq[name])
                for name in names
            )
            used = {sources[name] for name in names}
            leftovers = [c for c in conjuncts if c not in used]
            return index, key, leftovers
    return None


def _encode_probe_value(table: Table, column_name: str, value: Any) -> Any:
    """Translate an index-probe constant into the stored representation.

    With string interning on, TEXT columns hold dictionary ids, so the
    probe key must be the constant's id. A constant the dictionary has
    never seen — or a non-text constant probing a TEXT column — cannot
    match any stored value; an unmatchable sentinel keeps the probe (and
    its empty result) instead of falling back to a scan."""
    dictionary = table.dictionary
    if dictionary is None:
        return value
    position = table.schema.position(column_name)
    if table.schema.column_types[position] is not ColumnType.TEXT:
        return value
    if isinstance(value, str):
        encoded = dictionary.lookup(value)
        if encoded is not None:
            return encoded
    return _NEVER_MATCHES


#: hashable sentinel that equals nothing stored in any index bucket
_NEVER_MATCHES = object()


def _rewrite_aggregates(
    expr: ast.Expr, registry: dict[ast.Aggregate, int]
) -> tuple[ast.Expr, bool]:
    """Register aggregates found in ``expr``; returns (expr, found_any)."""
    found = False
    for aggregate in _collect_aggregates(expr):
        found = True
        if aggregate not in registry:
            registry[aggregate] = len(registry)
    return expr, found


def _collect_aggregates(expr: ast.Expr | None) -> list[ast.Aggregate]:
    if expr is None:
        return []
    if isinstance(expr, ast.Aggregate):
        return [expr]
    if isinstance(expr, ast.BinOp):
        return _collect_aggregates(expr.left) + _collect_aggregates(expr.right)
    if isinstance(expr, ast.UnaryOp):
        return _collect_aggregates(expr.operand)
    if isinstance(expr, ast.IsNull):
        return _collect_aggregates(expr.operand)
    if isinstance(expr, ast.InList):
        found = _collect_aggregates(expr.operand)
        for item in expr.items:
            found.extend(_collect_aggregates(item))
        return found
    if isinstance(expr, ast.Like):
        return _collect_aggregates(expr.operand) + _collect_aggregates(expr.pattern)
    if isinstance(expr, ast.FuncCall):
        found = []
        for arg in expr.args:
            found.extend(_collect_aggregates(arg))
        return found
    if isinstance(expr, ast.Case):
        found = []
        for cond, result in expr.whens:
            found.extend(_collect_aggregates(cond))
            found.extend(_collect_aggregates(result))
        found.extend(_collect_aggregates(expr.default))
        return found
    return []


def _rewrite_with_index(
    expr: ast.Expr, registry: dict[ast.Aggregate, int]
) -> ast.Expr:
    """Replace Aggregate nodes with references to the synthetic #agg columns."""
    if isinstance(expr, ast.Aggregate):
        return ast.Column("#agg", f"agg{registry[expr]}")
    if isinstance(expr, ast.BinOp):
        return ast.BinOp(
            expr.op,
            _rewrite_with_index(expr.left, registry),
            _rewrite_with_index(expr.right, registry),
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _rewrite_with_index(expr.operand, registry))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(_rewrite_with_index(expr.operand, registry), expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(
            _rewrite_with_index(expr.operand, registry),
            tuple(_rewrite_with_index(item, registry) for item in expr.items),
            expr.negated,
        )
    if isinstance(expr, ast.Like):
        return ast.Like(
            _rewrite_with_index(expr.operand, registry),
            _rewrite_with_index(expr.pattern, registry),
            expr.negated,
        )
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(
            expr.name,
            tuple(_rewrite_with_index(arg, registry) for arg in expr.args),
        )
    if isinstance(expr, ast.Case):
        return ast.Case(
            tuple(
                (
                    _rewrite_with_index(cond, registry),
                    _rewrite_with_index(result, registry),
                )
                for cond, result in expr.whens
            ),
            _rewrite_with_index(expr.default, registry)
            if expr.default is not None
            else None,
        )
    return expr
