"""SQL value semantics: types, NULL-aware comparison, and sort keys.

SQL values in this engine are plain Python values: ``None`` for NULL,
``int``/``float`` for numerics, and ``str`` for text. Comparisons follow
SQLite's storage-class ordering (NULL < numeric < text) so the engine can be
differentially tested against the stdlib ``sqlite3`` backend on identical
queries.
"""

from __future__ import annotations

from enum import Enum
from typing import Any

from .dictionary import EncodedString


class ColumnType(Enum):
    """Declared column affinities (validated on insert, SQLite-style lax)."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"

    def coerce(self, value: Any) -> Any:
        """Coerce a Python value to this affinity; NULL passes through."""
        if value is None:
            return None
        if self is ColumnType.INTEGER:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            if isinstance(value, str):
                try:
                    return int(value)
                except ValueError:
                    return value  # lax, like SQLite affinity
            return value
        if self is ColumnType.REAL:
            if isinstance(value, bool):
                return float(value)
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str):
                try:
                    return float(value)
                except ValueError:
                    return value
            return value
        return value if isinstance(value, str) else str(value)


# Three-valued logic: SQL booleans are True, False, or NULL (unknown).
# We use Python True/False/None directly.


def tv_and(a: bool | None, b: bool | None) -> bool | None:
    """SQL AND: false dominates, then unknown."""
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def tv_or(a: bool | None, b: bool | None) -> bool | None:
    """SQL OR: true dominates, then unknown."""
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def tv_not(a: bool | None) -> bool | None:
    """SQL NOT: unknown stays unknown."""
    return None if a is None else not a


def _class_rank(value: Any) -> int:
    """Storage-class ordering rank: NULL(0) < numeric(1) < text(2)."""
    if value is None:
        return 0
    if isinstance(value, EncodedString):
        return 2  # dictionary-encoded text compares as text, not as its id
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return 1
    if isinstance(value, bool):
        return 1
    return 2


def compare(a: Any, b: Any) -> int | None:
    """Three-way compare with SQL NULL semantics.

    Returns ``None`` when either side is NULL (comparison is *unknown*),
    otherwise -1 / 0 / 1. Values of different storage classes order by
    class rank (numeric < text), matching SQLite.
    """
    if a is None or b is None:
        return None
    ra, rb = _class_rank(a), _class_rank(b)
    if ra != rb:
        return -1 if ra < rb else 1
    if ra == 1:
        fa, fb = float(a), float(b)
        return (fa > fb) - (fa < fb)
    if type(a) is not type(b):
        # Mixed encoded/plain text (e.g. a CTE-projected constant against a
        # stored column): order by lexical form.
        if isinstance(a, EncodedString):
            a = a.lexicon[a]
        if isinstance(b, EncodedString):
            b = b.lexicon[b]
    elif isinstance(a, EncodedString):
        if a == b:
            return 0
        a, b = a.lexicon[a], b.lexicon[b]
    return (a > b) - (a < b)


def sort_key(value: Any) -> tuple[int, Any]:
    """A total-order sort key (NULLs first, then numerics, then text)."""
    rank = _class_rank(value)
    if rank == 0:
        return (0, 0)
    if rank == 1:
        return (1, float(value))
    if isinstance(value, EncodedString):
        return (2, value.lexicon[value])
    return (2, value)


def row_sort_key(values: tuple[Any, ...]) -> tuple[tuple[int, Any], ...]:
    return tuple(sort_key(v) for v in values)
