"""Low-level execution operators: scans, joins, aggregation, and timeouts.

Operators are generator functions over row tuples. The planner composes them
into a pipeline; every operator that can loop unboundedly threads a
:class:`Ticker` so long queries abort cooperatively, which is how the
benchmark harness reproduces the paper's timeout classification.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, Iterator

from .dictionary import EncodedString
from .errors import QueryTimeout
from .expressions import Evaluator
from .index import HashIndex
from .table import Table

Row = tuple


class Ticker:
    """Cooperative guardrails: cheap counters, occasional clock check.

    ``budget`` is duck-typed (``repro.core.resilience.Budget`` or None):
    every tick counts one intermediate row against
    ``budget.max_intermediate_rows``, and deadline expiry defers to
    ``budget.trip("timeout")`` so the store-level typed error is raised.
    With no budget and no deadline a tick is a single None check — the
    guardrails-off hot path stays untouched.
    """

    CHECK_EVERY = 4096

    def __init__(self, deadline: float | None, budget: Any = None) -> None:
        if deadline is None and budget is not None:
            deadline = budget.deadline
        self.deadline = deadline
        self.budget = budget
        #: False when nothing is guarded: tick() returns on one check, the
        #: same cost as the pre-guardrail deadline-only fast path
        self.active = deadline is not None or budget is not None
        self._count = 0

    def tick(self) -> None:
        if not self.active:
            return
        budget = self.budget
        if budget is not None:
            budget.ticks += 1
            cap = budget.max_intermediate_rows
            if cap is not None and budget.ticks > cap:
                budget.trip("intermediate")
        if self.deadline is None:
            return
        self._count += 1
        if self._count >= self.CHECK_EVERY:
            self._count = 0
            if time.monotonic() > self.deadline:
                if budget is not None:
                    budget.trip("timeout")
                raise QueryTimeout("query exceeded its deadline")

    def tick_batch(self, count: int) -> None:
        """Account ``count`` logical rows at once (the batched executor's
        per-chunk equivalent of ``count`` scalar ticks).

        Row budgets count *rows inside the batch*, not batches: a 1-row
        ``max_intermediate_rows`` budget trips on the first chunk of a
        larger scan, exactly as the tuple-at-a-time pipeline would."""
        if not self.active or count <= 0:
            return
        budget = self.budget
        if budget is not None:
            budget.ticks += count
            cap = budget.max_intermediate_rows
            if cap is not None and budget.ticks > cap:
                budget.trip("intermediate")
        if self.deadline is None:
            return
        self._count += count
        if self._count >= self.CHECK_EVERY:
            self._count = 0
            if time.monotonic() > self.deadline:
                if budget is not None:
                    budget.trip("timeout")
                raise QueryTimeout("query exceeded its deadline")


def seq_scan(
    table: Table, ticker: Ticker, version: int | None = None
) -> Iterator[Row]:
    rows = table.scan() if version is None else table.scan_at(version)
    for row in rows:
        ticker.tick()
        yield row


def index_scan(
    index: HashIndex, key: tuple, ticker: Ticker, version: int | None = None
) -> Iterator[Row]:
    for row in index.lookup(key, version):
        ticker.tick()
        yield row


def filter_rows(
    rows: Iterable[Row], condition: Evaluator, ticker: Ticker
) -> Iterator[Row]:
    for row in rows:
        ticker.tick()
        if condition(row) is True:
            yield row


def project_rows(
    rows: Iterable[Row], evaluators: list[Evaluator], ticker: Ticker
) -> Iterator[Row]:
    for row in rows:
        ticker.tick()
        yield tuple(evaluator(row) for evaluator in evaluators)


def hash_join(
    left_rows: Iterable[Row],
    right_rows: Iterable[Row],
    left_key: Callable[[Row], tuple],
    right_key: Callable[[Row], tuple],
    right_width: int,
    residual: Evaluator | None,
    outer: bool,
    ticker: Ticker,
) -> Iterator[Row]:
    """Equi hash join; ``outer=True`` gives LEFT OUTER semantics.

    Keys containing NULL never match (SQL equality is unknown on NULL).
    ``residual`` is evaluated on the concatenated row and must be True for a
    match; for outer joins a left row with no surviving match is emitted
    padded with NULLs.
    """
    buckets: dict[tuple, list[Row]] = {}
    for row in right_rows:
        ticker.tick()
        key = right_key(row)
        if any(value is None for value in key):
            continue
        buckets.setdefault(key, []).append(row)

    null_pad = (None,) * right_width
    for left_row in left_rows:
        ticker.tick()
        key = left_key(left_row)
        matched = False
        if not any(value is None for value in key):
            for right_row in buckets.get(key, ()):
                ticker.tick()
                combined = left_row + right_row
                if residual is None or residual(combined) is True:
                    matched = True
                    yield combined
        if outer and not matched:
            yield left_row + null_pad


def index_nested_loop_join(
    left_rows: Iterable[Row],
    index: HashIndex,
    probe_key: Callable[[Row], tuple],
    right_width: int,
    right_filter: Evaluator | None,
    residual: Evaluator | None,
    outer: bool,
    ticker: Ticker,
    version: int | None = None,
) -> Iterator[Row]:
    """Join by probing a hash index on the right table per left row.

    ``right_filter`` is evaluated on the right row alone (pushed-down
    conditions); ``residual`` on the concatenated row.
    """
    null_pad = (None,) * right_width
    for left_row in left_rows:
        ticker.tick()
        key = probe_key(left_row)
        matched = False
        if not any(value is None for value in key):
            for right_row in index.lookup(key, version):
                ticker.tick()
                if right_filter is not None and right_filter(right_row) is not True:
                    continue
                combined = left_row + right_row
                if residual is None or residual(combined) is True:
                    matched = True
                    yield combined
        if outer and not matched:
            yield left_row + null_pad


def nested_loop_join(
    left_rows: Iterable[Row],
    right_rows_factory: Callable[[], Iterable[Row]],
    right_width: int,
    condition: Evaluator | None,
    outer: bool,
    ticker: Ticker,
) -> Iterator[Row]:
    """Fallback join for non-equi conditions; right side re-iterated per row."""
    materialized_right: list[Row] | None = None
    null_pad = (None,) * right_width
    for left_row in left_rows:
        ticker.tick()
        if materialized_right is None:
            materialized_right = list(right_rows_factory())
        matched = False
        for right_row in materialized_right:
            ticker.tick()
            combined = left_row + right_row
            if condition is None or condition(combined) is True:
                matched = True
                yield combined
        if outer and not matched:
            yield left_row + null_pad


def distinct_rows(rows: Iterable[Row], ticker: Ticker) -> Iterator[Row]:
    seen: set[Row] = set()
    for row in rows:
        ticker.tick()
        if row not in seen:
            seen.add(row)
            yield row


class AggregateState:
    """Accumulator for one aggregate call within one group."""

    __slots__ = ("func", "distinct", "count", "total", "minimum", "maximum", "seen")

    def __init__(self, func: str, distinct: bool) -> None:
        self.func = func
        self.distinct = distinct
        self.count = 0
        self.total: Any = None
        self.minimum: Any = None
        self.maximum: Any = None
        self.seen: set | None = set() if distinct else None

    def add(self, value: Any) -> None:
        if self.func == "COUNT" and value is _COUNT_STAR:
            self.count += 1
            return
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if self.func in ("SUM", "AVG"):
            if isinstance(value, EncodedString):
                value = value.lexicon[value]
            numeric = float(value) if not isinstance(value, (int, float)) else value
            self.total = numeric if self.total is None else self.total + numeric
        elif self.func == "MIN":
            from .types import compare

            if self.minimum is None or compare(value, self.minimum) == -1:
                self.minimum = value
        elif self.func == "MAX":
            from .types import compare

            if self.maximum is None or compare(value, self.maximum) == 1:
                self.maximum = value

    def result(self) -> Any:
        if self.func == "COUNT":
            return self.count
        if self.func == "SUM":
            return self.total
        if self.func == "AVG":
            return None if self.total is None else self.total / self.count
        if self.func == "MIN":
            return self.minimum
        if self.func == "MAX":
            return self.maximum
        raise AssertionError(f"unknown aggregate {self.func}")


class _CountStar:
    """Sentinel passed to COUNT(*) accumulators."""


_COUNT_STAR = _CountStar()


def count_star_sentinel() -> Any:
    return _COUNT_STAR
