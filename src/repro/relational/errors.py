"""Errors raised by the relational engine."""

from __future__ import annotations


class RelationalError(Exception):
    """Base class for all engine errors."""


class CatalogError(RelationalError):
    """Unknown or duplicate table / index / column."""


class SqlSyntaxError(RelationalError):
    """Malformed SQL text."""


class PlanError(RelationalError):
    """A query that parses but cannot be planned (e.g. unknown alias)."""


class ExecutionError(RelationalError):
    """A runtime failure while evaluating a plan."""


class QueryTimeout(ExecutionError):
    """The cooperative deadline for a query expired.

    Mirrors the paper's 10-minute query timeout classification: the harness
    catches this and records the query as *timeout* rather than *error*.
    """
