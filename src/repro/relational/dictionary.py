"""Dictionary encoding for TEXT column values.

Stored strings are interned to dense integer ids so that equality — the
dominant operation in the generated DB2RDF SQL (index probes, hash-join
keys, predicate-column filters) — runs on ints instead of strings, and so
row tuples stay small. An encoded value is an :class:`EncodedString`: an
``int`` subclass whose class carries a reference to the owning dictionary's
lexicon, which makes decoding a plain list index and lets any layer decode
a value without holding the dictionary (late materialization happens once,
at the ``Database.execute`` result boundary).

Design points:

* **Per-database class.** Each :class:`StringDictionary` manufactures its
  own ``EncodedString`` subclass, so ids from different databases cannot be
  confused and ``isinstance(v, EncodedString)`` is a cheap universal test.
* **Writes allocate, reads look up.** Ids are allocated on the insert path
  (under the store's writer lock); query-time constants use
  :meth:`lookup`, which never allocates — a miss proves no stored row can
  match.
* **Text semantics via __str__.** ``str(encoded)`` returns the decoded
  text, so generic string machinery (``LIKE``, ``||``, ``LOWER`` …) that
  funnels through ``str(value)`` stays correct without edits. Numeric and
  comparison paths check ``isinstance`` explicitly.
"""

from __future__ import annotations

from typing import Any


class EncodedString(int):
    """A dictionary-encoded string: an int id that can decode itself."""

    __slots__ = ()
    #: overridden per dictionary with that dictionary's id -> str list
    lexicon: list[str] = []

    def decode(self) -> str:
        return self.lexicon[self]

    def __str__(self) -> str:  # text semantics for generic string paths
        return self.lexicon[self]

    def __repr__(self) -> str:
        return f"EncodedString({int(self)}={self.lexicon[self]!r})"


def decode_value(value: Any) -> Any:
    """The lexical form of an encoded value; anything else passes through."""
    if isinstance(value, EncodedString):
        return value.lexicon[value]
    return value


def decode_row(row: tuple) -> tuple:
    if any(isinstance(value, EncodedString) for value in row):
        return tuple(
            value.lexicon[value] if isinstance(value, EncodedString) else value
            for value in row
        )
    return row


class StringDictionary:
    """An append-only string interner with O(1) encode and decode."""

    __slots__ = ("_ids", "_lexicon", "cls")

    def __init__(self) -> None:
        self._ids: dict[str, EncodedString] = {}
        self._lexicon: list[str] = []
        # A fresh subclass per dictionary: the class attribute ties every id
        # it mints back to this lexicon.
        self.cls = type(
            "EncodedString", (EncodedString,), {"__slots__": (), "lexicon": self._lexicon}
        )

    def __len__(self) -> int:
        return len(self._lexicon)

    def encode(self, text: str) -> EncodedString:
        """Intern ``text``, allocating an id on first sight."""
        encoded = self._ids.get(text)
        if encoded is None:
            encoded = self.cls(len(self._lexicon))
            self._lexicon.append(text)
            self._ids[text] = encoded
        return encoded

    def lookup(self, text: str) -> EncodedString | None:
        """The id of ``text`` if already interned; never allocates."""
        return self._ids.get(text)

    def decode(self, encoded: int) -> str:
        return self._lexicon[encoded]
