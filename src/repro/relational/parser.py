"""A recursive-descent parser for the SQL subset the engine executes.

The SPARQL translator builds ASTs directly, so this parser exists for the
standalone usability of the relational substrate, for tests, and for the
round-trip property (parse → render → parse is identity on the subset).
"""

from __future__ import annotations

import re
from typing import Iterator

from . import ast
from .errors import SqlSyntaxError
from .types import ColumnType

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')
      | (?P<number>\d+\.\d+|\d+|\.\d+)
      | (?P<qident>"(?:[^"]|"")*")
      | (?P<ident>[A-Za-z_][A-Za-z0-9_$#]*)
      | (?P<op><>|<=|>=|!=|\|\||[=<>+\-*/%(),.;])
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
    "LIMIT", "OFFSET", "UNION", "ALL", "INTERSECT", "EXCEPT", "WITH", "AS",
    "JOIN", "LEFT", "OUTER", "INNER", "CROSS", "ON", "AND", "OR", "NOT",
    "NULL", "IS", "IN", "LIKE", "BETWEEN", "CASE", "WHEN", "THEN", "ELSE",
    "END", "CREATE", "TABLE", "INDEX", "IF", "EXISTS", "INSERT", "INTO",
    "VALUES", "DELETE", "ASC", "DESC", "UPDATE", "SET", "DROP",
}

_AGGREGATES = {"COUNT", "SUM", "MIN", "MAX", "AVG"}


class _Token:
    __slots__ = ("kind", "text")

    def __init__(self, kind: str, text: str) -> None:
        self.kind = kind  # STRING, NUMBER, IDENT, KEYWORD, OP, EOF
        self.text = text

    def __repr__(self) -> str:
        return f"{self.kind}:{self.text}"


def _tokenize(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if not match:
            if sql[position:].strip() == "":
                break
            raise SqlSyntaxError(f"cannot tokenize SQL at: {sql[position:position + 30]!r}")
        position = match.end()
        if match.lastgroup == "string":
            text = match.group("string")[1:-1].replace("''", "'")
            tokens.append(_Token("STRING", text))
        elif match.lastgroup == "number":
            tokens.append(_Token("NUMBER", match.group("number")))
        elif match.lastgroup == "qident":
            text = match.group("qident")[1:-1].replace('""', '"')
            tokens.append(_Token("IDENT", text))
        elif match.lastgroup == "ident":
            text = match.group("ident")
            if text.upper() in _KEYWORDS:
                tokens.append(_Token("KEYWORD", text.upper()))
            else:
                tokens.append(_Token("IDENT", text))
        else:
            tokens.append(_Token("OP", match.group("op")))
    tokens.append(_Token("EOF", ""))
    return tokens


class _Parser:
    def __init__(self, sql: str) -> None:
        self.tokens = _tokenize(sql)
        self.position = 0

    # -------------------------------------------------------------- cursor

    @property
    def current(self) -> _Token:
        return self.tokens[self.position]

    def advance(self) -> _Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def at_keyword(self, *keywords: str) -> bool:
        return self.current.kind == "KEYWORD" and self.current.text in keywords

    def at_op(self, *ops: str) -> bool:
        return self.current.kind == "OP" and self.current.text in ops

    def accept_keyword(self, *keywords: str) -> str | None:
        if self.at_keyword(*keywords):
            return self.advance().text
        return None

    def accept_op(self, *ops: str) -> str | None:
        if self.at_op(*ops):
            return self.advance().text
        return None

    def expect_keyword(self, keyword: str) -> None:
        if not self.accept_keyword(keyword):
            raise SqlSyntaxError(f"expected {keyword}, found {self.current}")

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            raise SqlSyntaxError(f"expected {op!r}, found {self.current}")

    def expect_ident(self) -> str:
        if self.current.kind == "IDENT":
            return self.advance().text
        raise SqlSyntaxError(f"expected identifier, found {self.current}")

    # ---------------------------------------------------------- statements

    def parse_statements(self) -> Iterator[ast.Statement]:
        while self.current.kind != "EOF":
            yield self.parse_statement()
            while self.accept_op(";"):
                pass

    def parse_statement(self) -> ast.Statement:
        if self.at_keyword("CREATE"):
            return self._parse_create()
        if self.at_keyword("DROP"):
            self.advance()
            self.expect_keyword("TABLE")
            if_exists = False
            if self.accept_keyword("IF"):
                self.expect_keyword("EXISTS")
                if_exists = True
            return ast.DropTable(self.expect_ident(), if_exists)
        if self.at_keyword("INSERT"):
            return self._parse_insert()
        if self.at_keyword("DELETE"):
            return self._parse_delete()
        if self.at_keyword("UPDATE"):
            return self._parse_update()
        if self.at_keyword("SELECT", "WITH") or self.at_op("("):
            return self.parse_query()
        raise SqlSyntaxError(f"unexpected token {self.current}")

    def _parse_create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            if_not_exists = self._accept_if_not_exists()
            name = self.expect_ident()
            self.expect_op("(")
            columns: list[ast.ColumnDef] = []
            while True:
                column_name = self.expect_ident()
                type_name = "TEXT"
                if self.current.kind == "IDENT":
                    type_name = self.advance().text.upper()
                try:
                    column_type = ColumnType(type_name)
                except ValueError:
                    column_type = ColumnType.TEXT
                columns.append(ast.ColumnDef(column_name, column_type))
                if not self.accept_op(","):
                    break
            self.expect_op(")")
            return ast.CreateTable(name, tuple(columns), if_not_exists)
        if self.accept_keyword("INDEX"):
            if_not_exists = self._accept_if_not_exists()
            name = self.expect_ident()
            self.expect_keyword("ON")
            table = self.expect_ident()
            self.expect_op("(")
            columns = []
            while True:
                columns.append(self.expect_ident())
                if not self.accept_op(","):
                    break
            self.expect_op(")")
            return ast.CreateIndex(name, table, tuple(columns), if_not_exists)
        raise SqlSyntaxError(f"expected TABLE or INDEX after CREATE, found {self.current}")

    def _accept_if_not_exists(self) -> bool:
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            return True
        return False

    def _parse_insert(self) -> ast.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns: tuple[str, ...] | None = None
        if self.accept_op("("):
            names = [self.expect_ident()]
            while self.accept_op(","):
                names.append(self.expect_ident())
            self.expect_op(")")
            columns = tuple(names)
        self.expect_keyword("VALUES")
        rows: list[tuple[ast.Expr, ...]] = []
        while True:
            self.expect_op("(")
            values = [self.parse_expr()]
            while self.accept_op(","):
                values.append(self.parse_expr())
            self.expect_op(")")
            rows.append(tuple(values))
            if not self.accept_op(","):
                break
        return ast.Insert(table, columns, tuple(rows))

    def _parse_delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.Delete(table, where)

    def _parse_update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments: list[tuple[str, ast.Expr]] = []
        while True:
            column = self.expect_ident()
            self.expect_op("=")
            assignments.append((column, self.parse_expr()))
            if not self.accept_op(","):
                break
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.Update(table, tuple(assignments), where)

    # -------------------------------------------------------------- query

    def parse_query(self) -> ast.Query:
        if self.at_keyword("WITH"):
            self.expect_keyword("WITH")
            ctes: list[tuple[str, ast.Query]] = []
            while True:
                name = self.expect_ident()
                self.expect_keyword("AS")
                self.expect_op("(")
                cte_query = self.parse_query()
                self.expect_op(")")
                ctes.append((name, cte_query))
                if not self.accept_op(","):
                    break
            body = self.parse_query()
            return ast.With(tuple(ctes), body)

        query = self._parse_query_term()
        while self.at_keyword("UNION", "INTERSECT", "EXCEPT"):
            op = self.advance().text
            if op == "UNION" and self.accept_keyword("ALL"):
                op = "UNION ALL"
            right = self._parse_query_term()
            query = ast.SetOp(op, query, right)

        order_by, limit, offset = self._parse_order_limit()
        if order_by or limit is not None or offset is not None:
            if isinstance(query, ast.Select):
                query = ast.Select(
                    items=query.items,
                    from_=query.from_,
                    where=query.where,
                    group_by=query.group_by,
                    having=query.having,
                    distinct=query.distinct,
                    order_by=order_by,
                    limit=limit,
                    offset=offset,
                )
            elif isinstance(query, ast.SetOp):
                query = ast.SetOp(
                    query.op, query.left, query.right, order_by, limit, offset
                )
        return query

    def _parse_query_term(self) -> ast.Query:
        if self.accept_op("("):
            query = self.parse_query()
            self.expect_op(")")
            return query
        return self._parse_select_core()

    def _parse_select_core(self) -> ast.Select:
        self.expect_keyword("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT"))
        self.accept_keyword("ALL")
        items = [self._parse_select_item()]
        while self.accept_op(","):
            items.append(self._parse_select_item())

        from_: ast.FromItem | None = None
        if self.accept_keyword("FROM"):
            from_ = self._parse_from()
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        group_by: tuple[ast.Expr, ...] = ()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            exprs = [self.parse_expr()]
            while self.accept_op(","):
                exprs.append(self.parse_expr())
            group_by = tuple(exprs)
        having = self.parse_expr() if self.accept_keyword("HAVING") else None
        return ast.Select(
            items=tuple(items),
            from_=from_,
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        if self.accept_op("*"):
            return ast.SelectItem.star()
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.kind == "IDENT":
            alias = self.advance().text
        return ast.SelectItem(expr, alias)

    def _parse_from(self) -> ast.FromItem:
        item = self._parse_from_item()
        while True:
            if self.accept_op(","):
                right = self._parse_from_item()
                item = ast.Join(item, right, "INNER", None)
                continue
            kind: str | None = None
            if self.at_keyword("LEFT"):
                self.advance()
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
                kind = "LEFT"
            elif self.at_keyword("INNER"):
                self.advance()
                self.expect_keyword("JOIN")
                kind = "INNER"
            elif self.at_keyword("CROSS"):
                self.advance()
                self.expect_keyword("JOIN")
                right = self._parse_from_item()
                item = ast.Join(item, right, "INNER", None)
                continue
            elif self.at_keyword("JOIN"):
                self.advance()
                kind = "INNER"
            if kind is None:
                break
            right = self._parse_from_item()
            on = None
            if self.accept_keyword("ON"):
                on = self.parse_expr()
            item = ast.Join(item, right, kind, on)
        return item

    def _parse_from_item(self) -> ast.FromItem:
        if self.accept_op("("):
            if self.at_keyword("SELECT", "WITH"):
                query = self.parse_query()
                self.expect_op(")")
                self.accept_keyword("AS")
                alias = self.expect_ident()
                return ast.SubqueryRef(query, alias)
            item = self._parse_from()
            self.expect_op(")")
            return item
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.kind == "IDENT":
            alias = self.advance().text
        return ast.TableRef(name, alias)

    def _parse_order_limit(
        self,
    ) -> tuple[tuple[ast.OrderItem, ...], int | None, int | None]:
        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                expr = self.parse_expr()
                ascending = True
                if self.accept_keyword("DESC"):
                    ascending = False
                else:
                    self.accept_keyword("ASC")
                order_by.append(ast.OrderItem(expr, ascending))
                if not self.accept_op(","):
                    break
        limit = offset = None
        if self.accept_keyword("LIMIT"):
            limit = int(self._expect_number())
            if self.accept_keyword("OFFSET"):
                offset = int(self._expect_number())
            elif self.accept_op(","):  # LIMIT offset, count
                offset = limit
                limit = int(self._expect_number())
        return tuple(order_by), limit, offset

    def _expect_number(self) -> str:
        if self.current.kind == "NUMBER":
            return self.advance().text
        raise SqlSyntaxError(f"expected number, found {self.current}")

    # --------------------------------------------------------- expressions

    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        expr = self._parse_and()
        while self.accept_keyword("OR"):
            expr = ast.BinOp("OR", expr, self._parse_and())
        return expr

    def _parse_and(self) -> ast.Expr:
        expr = self._parse_not()
        while self.accept_keyword("AND"):
            expr = ast.BinOp("AND", expr, self._parse_not())
        return expr

    def _parse_not(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        expr = self._parse_additive()
        while True:
            if self.at_op("=", "<>", "!=", "<", "<=", ">", ">="):
                op = self.advance().text
                expr = ast.BinOp(op, expr, self._parse_additive())
                continue
            if self.at_keyword("IS"):
                self.advance()
                negated = bool(self.accept_keyword("NOT"))
                self.expect_keyword("NULL")
                expr = ast.IsNull(expr, negated)
                continue
            negated = False
            if self.at_keyword("NOT"):
                lookahead = self.tokens[self.position + 1]
                if lookahead.kind == "KEYWORD" and lookahead.text in ("IN", "LIKE", "BETWEEN"):
                    self.advance()
                    negated = True
                else:
                    break
            if self.accept_keyword("IN"):
                self.expect_op("(")
                items = [self.parse_expr()]
                while self.accept_op(","):
                    items.append(self.parse_expr())
                self.expect_op(")")
                expr = ast.InList(expr, tuple(items), negated)
                continue
            if self.accept_keyword("LIKE"):
                expr = ast.Like(expr, self._parse_additive(), negated)
                continue
            if self.accept_keyword("BETWEEN"):
                low = self._parse_additive()
                self.expect_keyword("AND")
                high = self._parse_additive()
                between = ast.BinOp(
                    "AND", ast.BinOp(">=", expr, low), ast.BinOp("<=", expr, high)
                )
                expr = ast.UnaryOp("NOT", between) if negated else between
                continue
            break
        return expr

    def _parse_additive(self) -> ast.Expr:
        expr = self._parse_multiplicative()
        while self.at_op("+", "-", "||"):
            op = self.advance().text
            expr = ast.BinOp(op, expr, self._parse_multiplicative())
        return expr

    def _parse_multiplicative(self) -> ast.Expr:
        expr = self._parse_unary()
        while self.at_op("*", "/", "%"):
            op = self.advance().text
            expr = ast.BinOp(op, expr, self._parse_unary())
        return expr

    def _parse_unary(self) -> ast.Expr:
        if self.accept_op("-"):
            return ast.UnaryOp("-", self._parse_unary())
        self.accept_op("+")
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "STRING":
            self.advance()
            return ast.Const(token.text)
        if token.kind == "NUMBER":
            self.advance()
            if "." in token.text:
                return ast.Const(float(token.text))
            return ast.Const(int(token.text))
        if self.at_keyword("NULL"):
            self.advance()
            return ast.Const(None)
        if self.at_keyword("CASE"):
            return self._parse_case()
        if self.accept_op("("):
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        if token.kind == "IDENT":
            name = self.advance().text
            if self.at_op("("):
                return self._parse_call(name)
            if self.accept_op("."):
                column = self.expect_ident()
                return ast.Column(name, column)
            return ast.Column(None, name)
        raise SqlSyntaxError(f"unexpected token in expression: {token}")

    def _parse_case(self) -> ast.Expr:
        self.expect_keyword("CASE")
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expr()
            self.expect_keyword("THEN")
            result = self.parse_expr()
            whens.append((condition, result))
        default = None
        if self.accept_keyword("ELSE"):
            default = self.parse_expr()
        self.expect_keyword("END")
        if not whens:
            raise SqlSyntaxError("CASE requires at least one WHEN")
        return ast.Case(tuple(whens), default)

    def _parse_call(self, name: str) -> ast.Expr:
        self.expect_op("(")
        upper = name.upper()
        if upper in _AGGREGATES:
            if self.accept_op("*"):
                self.expect_op(")")
                return ast.Aggregate("COUNT" if upper == "COUNT" else upper, None)
            distinct = bool(self.accept_keyword("DISTINCT"))
            arg = self.parse_expr()
            self.expect_op(")")
            return ast.Aggregate(upper, arg, distinct)
        args: list[ast.Expr] = []
        if not self.at_op(")"):
            args.append(self.parse_expr())
            while self.accept_op(","):
                args.append(self.parse_expr())
        self.expect_op(")")
        return ast.FuncCall(upper, tuple(args))


def parse_sql(sql: str) -> list[ast.Statement]:
    """Parse a SQL script (one or more ``;``-separated statements)."""
    return list(_Parser(sql).parse_statements())


def parse_query(sql: str) -> ast.Query:
    """Parse a single query."""
    statements = parse_sql(sql)
    if len(statements) != 1 or not isinstance(
        statements[0], (ast.Select, ast.SetOp, ast.With)
    ):
        raise SqlSyntaxError("expected exactly one query")
    return statements[0]


def parse_expression(sql: str) -> ast.Expr:
    """Parse a standalone scalar expression (used in tests)."""
    parser = _Parser(sql)
    expr = parser.parse_expr()
    if parser.current.kind != "EOF":
        raise SqlSyntaxError(f"trailing tokens after expression: {parser.current}")
    return expr
