"""repro: a from-scratch reproduction of "Building an Efficient RDF Store
Over a Relational Database" (Bornea et al., SIGMOD 2013 — the DB2RDF
system).

Public surface::

    from repro import Graph, RdfStore, Triple, URI, Literal
    from repro.sparql import query_graph          # reference evaluator
    from repro.backends import SqliteBackend      # alternate backend
    from repro.workloads import lubm              # benchmark generators
"""

from .backends import Backend, MiniRelBackend, SqliteBackend
from .core import (
    Budget,
    BudgetExceededError,
    ChaosBackend,
    CircuitBreaker,
    CircuitOpenError,
    DatasetStatistics,
    Fault,
    FaultPlan,
    GuardrailError,
    QueryTimeoutError,
    RdfStore,
    ResilientBackend,
    RetryPolicy,
    SimulatedCrash,
    StoreReport,
    TransientFaultError,
    UnsupportedQueryError,
)
from .rdf import BNode, Graph, Literal, Namespace, Triple, URI
from .sparql import EngineConfig, SelectResult, parse_sparql, query_graph
from .update import UpdateResult, UpdateSyntaxError, parse_update

__version__ = "1.0.0"

__all__ = [
    "BNode",
    "Backend",
    "Budget",
    "BudgetExceededError",
    "ChaosBackend",
    "CircuitBreaker",
    "CircuitOpenError",
    "DatasetStatistics",
    "EngineConfig",
    "Fault",
    "FaultPlan",
    "Graph",
    "GuardrailError",
    "Literal",
    "MiniRelBackend",
    "Namespace",
    "QueryTimeoutError",
    "RdfStore",
    "ResilientBackend",
    "RetryPolicy",
    "SelectResult",
    "SimulatedCrash",
    "SqliteBackend",
    "StoreReport",
    "TransientFaultError",
    "Triple",
    "URI",
    "UnsupportedQueryError",
    "UpdateResult",
    "UpdateSyntaxError",
    "parse_sparql",
    "parse_update",
    "query_graph",
]
