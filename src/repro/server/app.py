"""The SPARQL 1.1 Protocol endpoint: an asyncio HTTP server over a store.

One event loop accepts connections and parses requests; query evaluation
runs on a thread pool, each request inside its own
:meth:`~repro.core.store.RdfStore.snapshot` — so a long SELECT never sees a
concurrent commit half-applied, and updates (serialized by the store's
writer lock) never wait for readers. Routes follow the protocol spec:

- ``GET /sparql?query=…`` and ``POST /sparql`` — query operations, result
  format chosen from the ``Accept`` header (JSON / CSV / TSV);
- ``POST /update`` — update operations (an update sent to the query
  endpoint is a 405, and vice versa);
- ``GET /health`` — liveness plus store/cache counters.

Failures map to typed JSON bodies carrying the same classification as the
CLI's exit codes (syntax → 400/2, timeout → 408/3, budget → 413/4,
journal → 500/5), so scripted clients of either surface share one error
vocabulary. When ``max_concurrent`` requests are already in flight — or a
:class:`~repro.core.resilience.CircuitOpenError` escapes a wrapped
backend — the server sheds load with a 503 + ``Retry-After`` instead of
queueing without bound.
"""

from __future__ import annotations

import asyncio
import json
import re
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any

from ..cli import EXIT_BUDGET, EXIT_SYNTAX, EXIT_TIMEOUT, EXIT_WAL
from ..core.resilience import BudgetExceededError, CircuitOpenError
from ..relational.errors import QueryTimeout
from ..sparql.parser import SparqlSyntaxError
from ..sparql.results import (
    CONTENT_TYPES,
    negotiate_format,
    serialize_ask,
    serialize_select,
)
from ..update.errors import WalError
from .http import (
    HttpError,
    HttpRequest,
    HttpResponse,
    read_request,
    render_response,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.store import RdfStore

#: recognizes an ASK operation (skipping comments and the prologue) so the
#: endpoint can answer with the boolean document instead of bindings
_ASK_RE = re.compile(
    r"^\s*(?:(?:#[^\n]*\n|\s)*(?:PREFIX\s+[^>]*>|BASE\s+<[^>]*>))*"
    r"(?:#[^\n]*\n|\s)*ASK\b",
    re.IGNORECASE,
)

_UPDATE_CONTENT = "application/sparql-update"
_QUERY_CONTENT = "application/sparql-query"
_FORM_CONTENT = "application/x-www-form-urlencoded"


def _error_body(kind: str, message: str, exit_code: int | None = None) -> str:
    error: dict[str, Any] = {"type": kind, "message": message}
    if exit_code is not None:
        error["exit_code"] = exit_code
    return json.dumps({"error": error})


def _map_exception(exc: Exception) -> HttpResponse:
    """Typed failure → (status, body) with CLI exit-code parity."""
    if isinstance(exc, BudgetExceededError):
        return HttpResponse.text(413, _error_body("budget", str(exc), EXIT_BUDGET))
    if isinstance(exc, QueryTimeout):
        return HttpResponse.text(408, _error_body("timeout", str(exc), EXIT_TIMEOUT))
    if isinstance(exc, WalError):
        return HttpResponse.text(500, _error_body("wal", str(exc), EXIT_WAL))
    if isinstance(exc, SparqlSyntaxError):
        return HttpResponse.text(400, _error_body("syntax", str(exc), EXIT_SYNTAX))
    if isinstance(exc, CircuitOpenError):
        response = HttpResponse.text(503, _error_body("circuit-open", str(exc)))
        response.headers["retry-after"] = "1"
        return response
    return HttpResponse.text(500, _error_body("internal", str(exc)))


def _first(params: dict[str, list[str]], name: str) -> str | None:
    values = params.get(name)
    return values[0] if values else None


class SparqlServer:
    """A SPARQL 1.1 Protocol server bound to one :class:`RdfStore`.

    Drive it either from an existing event loop (``await start()`` then
    ``await serve_forever()``) or from a dedicated thread via :meth:`run`,
    which owns a private loop until :meth:`shutdown` (thread-safe) stops
    it. ``port=0`` binds an ephemeral port, published as ``self.port``
    once the listener is up.
    """

    def __init__(
        self,
        store: "RdfStore",
        host: str = "127.0.0.1",
        port: int = 0,
        max_concurrent: int = 8,
        workers: int | None = None,
        default_timeout: float | None = None,
        default_max_rows: int | None = None,
        drain_timeout: float = 10.0,
    ) -> None:
        self.store = store
        self.host = host
        self.port = port
        self.max_concurrent = max_concurrent
        self.default_timeout = default_timeout
        self.default_max_rows = default_max_rows
        self.drain_timeout = drain_timeout
        self._draining = False
        self._executor = ThreadPoolExecutor(
            max_workers=workers or max(2, max_concurrent),
            thread_name_prefix="sparql-worker",
        )
        self._active = 0  # event-loop-confined; no lock needed
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopping: asyncio.Event | None = None

    # ---------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Bind the listener (resolving ``port=0`` to the real port)."""
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` is called."""
        assert self._stopping is not None, "call start() first"
        await self._stopping.wait()
        await self.close()

    def run(
        self,
        ready: threading.Event | None = None,
        install_signals: bool = False,
    ) -> None:
        """Blocking entry point: own loop, serve until :meth:`shutdown`.

        ``ready`` (if given) is set once the port is bound — the test
        fixture's cue that requests will connect. With ``install_signals``
        SIGTERM and SIGINT trigger the same graceful drain as
        :meth:`shutdown`: stop accepting, finish in-flight requests up to
        ``drain_timeout`` seconds, flush the journal, return normally."""
        loop = asyncio.new_event_loop()
        try:
            loop.run_until_complete(self.start())
            if install_signals:
                self._install_signal_handlers(loop)
            if ready is not None:
                ready.set()
            loop.run_until_complete(self.serve_forever())
        finally:
            loop.close()

    def _install_signal_handlers(self, loop: asyncio.AbstractEventLoop) -> None:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.shutdown)
            except (NotImplementedError, ValueError, RuntimeError):
                # Non-main thread or platform without loop signal support:
                # fall back to the classic handler where possible.
                try:
                    signal.signal(signum, lambda *_: self.shutdown())
                except ValueError:  # pragma: no cover - non-main thread
                    pass

    def shutdown(self) -> None:
        """Request shutdown from any thread (idempotent)."""
        loop, stopping = self._loop, self._stopping
        if loop is None or stopping is None:
            return
        loop.call_soon_threadsafe(stopping.set)

    async def close(self) -> None:
        """Graceful teardown: stop accepting, drain, flush the journal."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = asyncio.get_running_loop().time() + self.drain_timeout
        while self._active > 0 and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.02)
        self._executor.shutdown(wait=False)
        try:
            self.store.flush_wal()
        except OSError:  # pragma: no cover - flush is best-effort at exit
            pass

    # --------------------------------------------------------- connection

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    body = _error_body("http", str(exc))
                    response = HttpResponse.text(exc.status, body)
                    writer.write(render_response(response, keep_alive=False))
                    await writer.drain()
                    return
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                if request is None:
                    return
                response = await self._dispatch(request)
                # A draining server answers the in-flight request but ends
                # the connection so keep-alive clients cannot pin the drain.
                keep_alive = request.keep_alive and not self._draining
                writer.write(render_response(response, keep_alive))
                await writer.drain()
                if not keep_alive:
                    return
        except ConnectionError:  # peer vanished mid-write
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    # ----------------------------------------------------------- dispatch

    async def _dispatch(self, request: HttpRequest) -> HttpResponse:
        if request.path == "/health":
            return self._health(request)
        if request.path == "/sparql":
            return await self._handle_query(request)
        if request.path == "/update":
            return await self._handle_update(request)
        return HttpResponse.text(
            404, _error_body("not-found", f"no route for {request.path}")
        )

    def _health(self, request: HttpRequest) -> HttpResponse:
        if request.method != "GET":
            return HttpResponse.text(
                405, _error_body("method", "health endpoint is GET-only")
            )
        cache = self.store.cache_info()
        payload = {
            "status": "draining" if self._draining else "ok",
            "backend": getattr(self.store.backend, "name", "unknown"),
            "epoch": self.store.stats.epoch,
            "in_flight": self._active,
            "draining": self._draining,
            "plan_cache": {"hits": cache.hits, "misses": cache.misses},
            "wal": self.store.wal_summary(),
        }
        return HttpResponse.text(200, json.dumps(payload))

    # ------------------------------------------------------------ queries

    def _extract_query(self, request: HttpRequest) -> str:
        """Per the protocol: GET ?query= or POST (direct / urlencoded)."""
        content_type = (request.header("content-type") or "").split(";")[0].strip()
        if request.method == "GET":
            text = _first(request.params, "query")
            if text is None:
                raise HttpError(400, "missing required 'query' parameter")
            if _first(request.params, "update") is not None:
                raise HttpError(405, "updates must go to the /update endpoint")
            return text
        if request.method != "POST":
            raise HttpError(405, "query endpoint accepts GET and POST")
        if content_type == _UPDATE_CONTENT:
            raise HttpError(405, "updates must go to the /update endpoint")
        if content_type == _QUERY_CONTENT:
            return request.body.decode("utf-8", "replace")
        if content_type == _FORM_CONTENT or not content_type:
            form = request.form()
            if _first(form, "update") is not None:
                raise HttpError(405, "updates must go to the /update endpoint")
            text = _first(form, "query") or _first(request.params, "query")
            if text is None:
                raise HttpError(400, "missing required 'query' parameter")
            return text
        raise HttpError(400, f"unsupported query content type {content_type!r}")

    def _request_limits(
        self, request: HttpRequest
    ) -> tuple[float | None, int | None]:
        timeout = self.default_timeout
        max_rows = self.default_max_rows
        raw_timeout = _first(request.params, "timeout")
        if raw_timeout is not None:
            try:
                timeout = float(raw_timeout)
            except ValueError as exc:
                raise HttpError(400, "malformed 'timeout' parameter") from exc
        raw_rows = _first(request.params, "max-rows")
        if raw_rows is not None:
            try:
                max_rows = int(raw_rows)
            except ValueError as exc:
                raise HttpError(400, "malformed 'max-rows' parameter") from exc
        return timeout, max_rows

    async def _handle_query(self, request: HttpRequest) -> HttpResponse:
        try:
            sparql = self._extract_query(request)
            timeout, max_rows = self._request_limits(request)
        except HttpError as exc:
            kind = "method" if exc.status == 405 else "syntax"
            code = EXIT_SYNTAX if exc.status == 400 else None
            return HttpResponse.text(exc.status, _error_body(kind, str(exc), code))
        fmt = negotiate_format(request.header("accept"))
        if fmt is None:
            return HttpResponse.text(
                406,
                _error_body(
                    "not-acceptable",
                    "supported result types: " + ", ".join(CONTENT_TYPES.values()),
                ),
            )
        if self._active >= self.max_concurrent:
            response = HttpResponse.text(
                503,
                _error_body(
                    "overloaded", f"{self.max_concurrent} requests already in flight"
                ),
            )
            response.headers["retry-after"] = "1"
            return response
        self._active += 1
        try:
            loop = asyncio.get_running_loop()
            body = await loop.run_in_executor(
                self._executor, self._run_query, sparql, fmt, timeout, max_rows
            )
        except Exception as exc:  # typed mapping; unexpected → 500
            return _map_exception(exc)
        finally:
            self._active -= 1
        return HttpResponse.text(200, body, CONTENT_TYPES[fmt])

    def _run_query(
        self, sparql: str, fmt: str, timeout: float | None, max_rows: int | None
    ) -> str:
        """Worker-thread body: snapshot, evaluate, serialize."""
        with self.store.snapshot() as snap:
            result = snap.query(sparql, timeout=timeout, max_rows=max_rows)
        if _ASK_RE.match(sparql):
            return serialize_ask(len(result) > 0, fmt)
        return serialize_select(result, fmt)

    # ------------------------------------------------------------ updates

    def _extract_update(self, request: HttpRequest) -> str:
        if request.method != "POST":
            raise HttpError(405, "update endpoint is POST-only")
        content_type = (request.header("content-type") or "").split(";")[0].strip()
        if content_type == _UPDATE_CONTENT:
            return request.body.decode("utf-8", "replace")
        if content_type == _FORM_CONTENT or not content_type:
            form = request.form()
            if _first(form, "query") is not None:
                raise HttpError(405, "queries must go to the /sparql endpoint")
            text = _first(form, "update")
            if text is None:
                raise HttpError(400, "missing required 'update' parameter")
            return text
        if content_type == _QUERY_CONTENT:
            raise HttpError(405, "queries must go to the /sparql endpoint")
        raise HttpError(400, f"unsupported update content type {content_type!r}")

    async def _handle_update(self, request: HttpRequest) -> HttpResponse:
        try:
            sparql = self._extract_update(request)
        except HttpError as exc:
            kind = "method" if exc.status == 405 else "syntax"
            code = EXIT_SYNTAX if exc.status == 400 else None
            return HttpResponse.text(exc.status, _error_body(kind, str(exc), code))
        if self._active >= self.max_concurrent:
            response = HttpResponse.text(
                503,
                _error_body(
                    "overloaded", f"{self.max_concurrent} requests already in flight"
                ),
            )
            response.headers["retry-after"] = "1"
            return response
        self._active += 1
        try:
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(
                self._executor, self.store.update, sparql
            )
        except Exception as exc:
            return _map_exception(exc)
        finally:
            self._active -= 1
        payload = {
            "inserted": result.inserted,
            "deleted": result.deleted,
            "operations": result.operations,
        }
        return HttpResponse.text(200, json.dumps(payload))
