"""Minimal HTTP/1.1 wire handling for the SPARQL Protocol endpoint.

Just enough of RFC 9112 for the protocol's needs — request line, headers,
``Content-Length`` bodies, keep-alive — parsed straight off an asyncio
stream. No chunked transfer coding (a 411 asks the client to send a
length), no multipart. Header and body sizes are bounded so a hostile
client cannot balloon memory.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from urllib.parse import parse_qs, unquote, urlsplit

#: request line + headers must fit in this many bytes
MAX_HEADER_BYTES = 64 * 1024
#: request bodies (query/update text) are capped at this many bytes
MAX_BODY_BYTES = 10 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    406: "Not Acceptable",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A malformed or unsupported request; maps to a status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request: the line, lowercased headers, decoded target."""

    method: str
    target: str
    path: str
    params: dict[str, list[str]]
    headers: dict[str, str]
    body: bytes = b""

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)

    def form(self) -> dict[str, list[str]]:
        """The urlencoded body as a parameter multidict."""
        return parse_qs(self.body.decode("utf-8", "replace"), keep_blank_values=True)

    @property
    def keep_alive(self) -> bool:
        connection = (self.header("connection") or "").lower()
        return "close" not in connection


@dataclass
class HttpResponse:
    """One response; :func:`render_response` turns it into wire bytes."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def text(
        cls, status: int, text: str, content_type: str = "application/json"
    ) -> "HttpResponse":
        return cls(status, text.encode("utf-8"), content_type)


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`HttpError` for malformed input (the caller answers with
    the carried status and closes) and ``asyncio.IncompleteReadError`` when
    the peer hangs up mid-request.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise HttpError(400, "truncated request") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(400, "request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(400, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(411, "chunked bodies are not supported; send Content-Length")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError(400, "malformed Content-Length") from exc
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        if length:
            body = await reader.readexactly(length)
    split = urlsplit(target)
    return HttpRequest(
        method=method.upper(),
        target=target,
        path=unquote(split.path),
        params=parse_qs(split.query, keep_blank_values=True),
        headers=headers,
        body=body,
    )


def render_response(response: HttpResponse, keep_alive: bool) -> bytes:
    """Serialize a response, setting Content-Length/-Type and Connection."""
    reason = _REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}"]
    headers = dict(response.headers)
    headers.setdefault("content-type", response.content_type)
    headers.setdefault("content-length", str(len(response.body)))
    headers.setdefault("connection", "keep-alive" if keep_alive else "close")
    for name, value in headers.items():
        lines.append(f"{name.title()}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + response.body
