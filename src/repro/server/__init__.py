"""SPARQL 1.1 Protocol serving (asyncio HTTP endpoint over a store)."""

from .app import SparqlServer
from .http import HttpError, HttpRequest, HttpResponse

__all__ = ["SparqlServer", "HttpError", "HttpRequest", "HttpResponse"]
