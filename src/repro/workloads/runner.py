"""The evaluation harness (paper §4, Figure 15).

Runs a query workload against a set of stores the way the paper does:
warm-cache (a discarded warm-up run, then N measured runs of a randomly
mixed query order), a per-query timeout, and classification of every query
as *complete* (right answer count), *error* (wrong count or crash),
*timeout*, or *unsupported* (outside the store's SPARQL subset). Expected
answer counts come from an oracle store (the native in-memory store, which
is itself differentially tested against the naive reference evaluator).
"""

from __future__ import annotations

import random
import statistics
import time
from dataclasses import dataclass, field
from typing import Mapping, Protocol

from ..core.errors import UnsupportedQueryError
from ..core.observe import summarize_operators
from ..core.querycache import CacheInfo
from ..relational.errors import QueryTimeout
from ..sparql.parser import SparqlSyntaxError
from ..sparql.results import SelectResult

COMPLETE = "complete"
TIMEOUT = "timeout"
ERROR = "error"
UNSUPPORTED = "unsupported"


class QueryStore(Protocol):
    """Anything the harness can drive."""

    def query(self, sparql: str, timeout: float | None = None) -> SelectResult:
        ...


@dataclass
class QueryOutcome:
    """One query's classification on one system."""

    query: str
    status: str
    seconds: float
    rows: int | None = None
    expected_rows: int | None = None
    detail: str = ""
    #: per-operator breakdown ({operator, depth, seconds, rows_in, rows_out})
    #: from a PROFILE run, when the harness ran with ``profile=True`` and
    #: the store supports profiling
    operators: list[dict] | None = None

    def to_dict(self) -> dict:
        """JSON-ready form for machine-readable benchmark output."""
        payload: dict = {
            "query": self.query,
            "status": self.status,
            "seconds": self.seconds,
        }
        if self.rows is not None:
            payload["rows"] = self.rows
        if self.expected_rows is not None:
            payload["expected_rows"] = self.expected_rows
        if self.detail:
            payload["detail"] = self.detail
        if self.operators is not None:
            payload["operators"] = self.operators
        return payload


@dataclass
class SystemSummary:
    """One row of Figure 15."""

    system: str
    complete: int = 0
    timeout: int = 0
    error: int = 0
    unsupported: int = 0
    mean_seconds: float = 0.0
    geometric_mean_seconds: float = 0.0
    outcomes: dict[str, QueryOutcome] = field(default_factory=dict)
    #: plan-cache counters, when the store exposes ``cache_info()`` (the
    #: repeated-run workload is exactly where plan reuse pays)
    cache: CacheInfo | None = None

    @property
    def supported(self) -> int:
        return self.complete + self.timeout + self.error

    def to_dict(self) -> dict:
        """JSON-ready form (cache counters flattened, outcomes by name)."""
        payload: dict = {
            "system": self.system,
            "complete": self.complete,
            "timeout": self.timeout,
            "error": self.error,
            "unsupported": self.unsupported,
            "mean_seconds": self.mean_seconds,
            "geometric_mean_seconds": self.geometric_mean_seconds,
            "queries": {
                name: outcome.to_dict() for name, outcome in self.outcomes.items()
            },
        }
        if self.cache is not None:
            payload["cache"] = {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "invalidations": self.cache.invalidations,
                "hit_rate": self.cache.hit_rate,
            }
        return payload


def expected_counts(
    oracle: QueryStore, queries: Mapping[str, str], timeout: float | None = None
) -> dict[str, int]:
    """Answer-set sizes from the oracle store."""
    counts: dict[str, int] = {}
    for name, text in queries.items():
        counts[name] = len(oracle.query(text, timeout=timeout))
    return counts


def time_query(
    store: QueryStore, sparql: str, timeout: float | None
) -> tuple[float, SelectResult]:
    """Run one query and return (wall seconds, result)."""
    start = time.perf_counter()
    result = store.query(sparql, timeout=timeout)
    return time.perf_counter() - start, result


def run_system(
    system_name: str,
    store: QueryStore,
    queries: Mapping[str, str],
    expected: Mapping[str, int],
    timeout: float = 10.0,
    runs: int = 3,
    warmup: bool = True,
    seed: int = 7,
    profile: bool = False,
) -> SystemSummary:
    """Measure one system over a randomly mixed workload, paper-style.

    ``profile=True`` adds one *unmeasured* PROFILE run per completed query
    after the timing runs and attaches its per-operator breakdown to the
    outcome (stores that don't support profiling are skipped silently).
    """
    rng = random.Random(seed)
    names = list(queries)
    summary = SystemSummary(system_name)
    timings: dict[str, list[float]] = {name: [] for name in names}
    statuses: dict[str, QueryOutcome] = {}

    total_runs = runs + (1 if warmup else 0)
    for run_index in range(total_runs):
        mixed = names[:]
        rng.shuffle(mixed)
        measured = not warmup or run_index > 0
        for name in mixed:
            if name in statuses and statuses[name].status != COMPLETE:
                continue  # don't re-run queries that already failed
            try:
                seconds, result = time_query(store, queries[name], timeout)
            except QueryTimeout:
                statuses[name] = QueryOutcome(name, TIMEOUT, timeout)
                continue
            except (UnsupportedQueryError, SparqlSyntaxError) as exc:
                statuses[name] = QueryOutcome(name, UNSUPPORTED, 0.0, detail=str(exc))
                continue
            except Exception as exc:  # crash inside the engine: an error
                statuses[name] = QueryOutcome(
                    name, ERROR, 0.0, detail=f"{type(exc).__name__}: {exc}"
                )
                continue
            if len(result) != expected[name]:
                statuses[name] = QueryOutcome(
                    name,
                    ERROR,
                    seconds,
                    rows=len(result),
                    expected_rows=expected[name],
                    detail="wrong result count",
                )
                continue
            if measured:
                timings[name].append(seconds)
            statuses.setdefault(
                name,
                QueryOutcome(name, COMPLETE, 0.0, rows=len(result),
                             expected_rows=expected[name]),
            )

    complete_times: list[float] = []
    for name in names:
        outcome = statuses.get(name)
        if outcome is None:
            outcome = QueryOutcome(name, COMPLETE, 0.0)
        if outcome.status == COMPLETE and timings[name]:
            outcome.seconds = sum(timings[name]) / len(timings[name])
        summary.outcomes[name] = outcome
        if outcome.status == COMPLETE:
            summary.complete += 1
            complete_times.append(outcome.seconds)
        elif outcome.status == TIMEOUT:
            summary.timeout += 1
            complete_times.append(timeout)  # paper: timeouts count full
        elif outcome.status == ERROR:
            summary.error += 1
        else:
            summary.unsupported += 1

    if complete_times:
        summary.mean_seconds = sum(complete_times) / len(complete_times)
        positive = [t for t in complete_times if t > 0]
        if positive:
            summary.geometric_mean_seconds = statistics.geometric_mean(positive)
    if profile:
        for name, outcome in summary.outcomes.items():
            if outcome.status != COMPLETE:
                continue
            try:
                result = store.query(queries[name], timeout=timeout, profile=True)
            except TypeError:  # store has no profile support
                break
            except Exception:  # profiling must never fail the harness
                continue
            root = getattr(result, "profile", None)
            if root is not None:
                outcome.operators = summarize_operators(root)
    cache_info = getattr(store, "cache_info", None)
    if callable(cache_info):
        summary.cache = cache_info()
    return summary


def run_benchmark(
    stores: Mapping[str, QueryStore],
    queries: Mapping[str, str],
    oracle: QueryStore,
    timeout: float = 10.0,
    runs: int = 3,
    oracle_timeout: float | None = None,
    profile: bool = False,
) -> dict[str, SystemSummary]:
    """Figure 15 for one dataset: every system over the full query mix."""
    expected = expected_counts(oracle, queries, timeout=oracle_timeout)
    return {
        name: run_system(
            name, store, queries, expected,
            timeout=timeout, runs=runs, profile=profile,
        )
        for name, store in stores.items()
    }


def summaries_to_dict(
    dataset: str, summaries: Mapping[str, SystemSummary]
) -> dict:
    """One dataset's results as a JSON-ready payload (benchmark output)."""
    return {
        "dataset": dataset,
        "systems": {name: summary.to_dict() for name, summary in summaries.items()},
    }


def format_summary_table(
    dataset: str, summaries: Mapping[str, SystemSummary]
) -> str:
    """Render one dataset block of Figure 15 as text."""
    with_cache = any(summary.cache is not None for summary in summaries.values())
    cache_header = f" {'Cache':>9}" if with_cache else ""
    lines = [
        f"{dataset}",
        f"{'System':<20} {'Complete':>9} {'Timeout':>8} {'Error':>6} "
        f"{'Unsupp.':>8} {'Mean(s)':>9}" + cache_header,
    ]
    for name, summary in summaries.items():
        if with_cache:
            if summary.cache is not None and summary.cache.lookups:
                cache_cell = f" {summary.cache.hit_rate * 100:>8.0f}%"
            else:
                cache_cell = f" {'-':>9}"
        else:
            cache_cell = ""
        lines.append(
            f"{name:<20} {summary.complete:>9} {summary.timeout:>8} "
            f"{summary.error:>6} {summary.unsupported:>8} "
            f"{summary.mean_seconds:>9.3f}" + cache_cell
        )
    return "\n".join(lines)


def format_operator_table(outcome: QueryOutcome) -> str:
    """Render one profiled query's per-operator breakdown as text."""
    lines = [
        f"{outcome.query}",
        f"  {'operator':<36}{'rows_in':>9}{'rows_out':>9}{'ms':>10}",
    ]
    for op in outcome.operators or []:
        name = "  " * op.get("depth", 0) + op["operator"]
        rows_in = op.get("rows_in", "")
        rows_out = op.get("rows_out", "")
        lines.append(
            f"  {name:<36}{rows_in!s:>9}{rows_out!s:>9}"
            f"{op['seconds'] * 1000:>10.3f}"
        )
    return "\n".join(lines)


def format_per_query_table(
    summaries: Mapping[str, SystemSummary], query_names: list[str]
) -> str:
    """Render Figure 16/17/18-style per-query timing rows (seconds)."""
    systems = list(summaries)
    header = f"{'Query':<8}" + "".join(f"{s:>16}" for s in systems)
    lines = [header]
    for name in query_names:
        cells = []
        for system in systems:
            outcome = summaries[system].outcomes.get(name)
            if outcome is None:
                cells.append(f"{'-':>16}")
            elif outcome.status == COMPLETE:
                cells.append(f"{outcome.seconds * 1000:>14.1f}ms")
            else:
                cells.append(f"{outcome.status:>16}")
        lines.append(f"{name:<8}" + "".join(cells))
    return "\n".join(lines)
