"""A LUBM-style university benchmark generator plus the 12 expanded queries.

Follows the published LUBM schema (Guo, Pan & Heflin): universities contain
departments; departments contain faculty (full/associate/assistant
professors, lecturers), students (graduate/undergraduate), courses,
research groups, and publications. Cardinalities are scaled-down but keep
LUBM's shape (average out-degree ≈ 6, type-heavy object skew).

The paper evaluates without OWL inference by *expanding* queries: a pattern
over ``Student`` becomes a UNION over ``GraduateStudent`` and
``UndergraduateStudent`` — exactly what :func:`queries` emits (12 of the 14
originals survive expansion; LQ11/LQ12 need ontology axioms and are
dropped, matching the paper).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..rdf.graph import Graph
from ..rdf.namespaces import Namespace
from ..rdf.terms import Literal, Triple, URI

UB = Namespace("http://swat.cse.lehigh.edu/onto/univ-bench.owl#")
RDF_TYPE = URI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")


@dataclass
class LubmProfile:
    """Entity counts per department (scaled-down LUBM defaults)."""

    departments_per_university: int = 3
    full_professors: int = 3
    associate_professors: int = 4
    assistant_professors: int = 5
    lecturers: int = 3
    undergraduate_students: int = 40
    graduate_students: int = 12
    courses: int = 10
    graduate_courses: int = 5
    research_groups: int = 4
    publications_per_faculty: int = 3


@dataclass
class LubmData:
    graph: Graph
    universities: int
    profile: LubmProfile = field(default_factory=LubmProfile)


def generate(
    universities: int = 2,
    seed: int = 42,
    profile: LubmProfile | None = None,
) -> LubmData:
    """Generate a deterministic LUBM-style university graph."""
    rng = random.Random(seed)
    profile = profile or LubmProfile()
    graph = Graph()

    def add(s, p, o):
        graph.add(Triple(s, p, o))

    def entity(kind: str, *path: int) -> URI:
        suffix = "/".join(str(p) for p in path)
        return URI(f"http://www.univ{path[0]}.edu/{kind}{suffix}")

    all_departments: list[URI] = []
    for u in range(universities):
        university = URI(f"http://www.univ{u}.edu")
        add(university, RDF_TYPE, UB.University)
        add(university, UB.name, Literal(f"University{u}"))
        for d in range(profile.departments_per_university):
            department = URI(f"http://www.univ{u}.edu/dept{d}")
            all_departments.append(department)
            add(department, RDF_TYPE, UB.Department)
            add(department, UB.name, Literal(f"Department{d}"))
            add(department, UB.subOrganizationOf, university)

            groups = []
            for g in range(profile.research_groups):
                group = URI(f"http://www.univ{u}.edu/dept{d}/group{g}")
                groups.append(group)
                add(group, RDF_TYPE, UB.ResearchGroup)
                add(group, UB.subOrganizationOf, department)

            courses = []
            for c in range(profile.courses):
                course = URI(f"http://www.univ{u}.edu/dept{d}/course{c}")
                courses.append(course)
                add(course, RDF_TYPE, UB.Course)
                add(course, UB.name, Literal(f"Course{c}"))
            graduate_courses = []
            for c in range(profile.graduate_courses):
                course = URI(f"http://www.univ{u}.edu/dept{d}/gradcourse{c}")
                graduate_courses.append(course)
                add(course, RDF_TYPE, UB.GraduateCourse)
                add(course, UB.name, Literal(f"GraduateCourse{c}"))

            faculty: list[tuple[URI, URI]] = []
            roles = (
                [(UB.FullProfessor, profile.full_professors)]
                + [(UB.AssociateProfessor, profile.associate_professors)]
                + [(UB.AssistantProfessor, profile.assistant_professors)]
                + [(UB.Lecturer, profile.lecturers)]
            )
            person_id = 0
            for role_type, count in roles:
                for _ in range(count):
                    member = URI(
                        f"http://www.univ{u}.edu/dept{d}/faculty{person_id}"
                    )
                    person_id += 1
                    faculty.append((member, role_type))
                    add(member, RDF_TYPE, role_type)
                    add(member, UB.name, Literal(f"Faculty{person_id}"))
                    add(member, UB.worksFor, department)
                    add(
                        member,
                        UB.emailAddress,
                        Literal(f"faculty{person_id}@univ{u}.edu"),
                    )
                    add(member, UB.telephone, Literal(f"555-{person_id:04d}"))
                    degree_univ = URI(f"http://www.univ{rng.randrange(universities)}.edu")
                    add(member, UB.undergraduateDegreeFrom, degree_univ)
                    add(member, UB.doctoralDegreeFrom, degree_univ)
                    taught = rng.sample(courses, min(2, len(courses)))
                    for course in taught:
                        add(member, UB.teacherOf, course)
                    if graduate_courses:
                        add(member, UB.teacherOf, rng.choice(graduate_courses))
                    for k in range(profile.publications_per_faculty):
                        publication = URI(
                            f"http://www.univ{u}.edu/dept{d}/pub{person_id}_{k}"
                        )
                        add(publication, RDF_TYPE, UB.Publication)
                        add(
                            publication,
                            UB.name,
                            Literal(f"Publication{person_id}_{k}"),
                        )
                        add(publication, UB.publicationAuthor, member)

            head, head_type = faculty[0]
            add(head, UB.headOf, department)

            graduate_students = []
            for s in range(profile.graduate_students):
                student = URI(f"http://www.univ{u}.edu/dept{d}/grad{s}")
                graduate_students.append(student)
                add(student, RDF_TYPE, UB.GraduateStudent)
                add(student, UB.name, Literal(f"GradStudent{s}"))
                add(student, UB.memberOf, department)
                add(
                    student,
                    UB.undergraduateDegreeFrom,
                    URI(f"http://www.univ{rng.randrange(universities)}.edu"),
                )
                add(
                    student,
                    UB.emailAddress,
                    Literal(f"grad{s}@dept{d}.univ{u}.edu"),
                )
                advisor, _ = rng.choice(faculty)
                add(student, UB.advisor, advisor)
                for course in rng.sample(
                    graduate_courses, min(2, len(graduate_courses))
                ):
                    add(student, UB.takesCourse, course)
                if rng.random() < 0.25:
                    add(student, UB.teachingAssistantOf, rng.choice(courses))

            for s in range(profile.undergraduate_students):
                student = URI(f"http://www.univ{u}.edu/dept{d}/undergrad{s}")
                add(student, RDF_TYPE, UB.UndergraduateStudent)
                add(student, UB.name, Literal(f"UndergradStudent{s}"))
                add(student, UB.memberOf, department)
                add(
                    student,
                    UB.emailAddress,
                    Literal(f"ug{s}@dept{d}.univ{u}.edu"),
                )
                if rng.random() < 0.2:
                    advisor, _ = rng.choice(faculty)
                    add(student, UB.advisor, advisor)
                for course in rng.sample(courses, min(3, len(courses))):
                    add(student, UB.takesCourse, course)

    return LubmData(graph, universities)


# ---------------------------------------------------------------------------
# Queries (inference expanded by hand, as in the paper's §4.1)
# ---------------------------------------------------------------------------

_PREFIX = f"PREFIX ub: <{UB.base}> PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>"

_STUDENT = "{{ {x} rdf:type ub:GraduateStudent }} UNION {{ {x} rdf:type ub:UndergraduateStudent }}"
_PROFESSOR = (
    "{{ {x} rdf:type ub:FullProfessor }} UNION {{ {x} rdf:type ub:AssociateProfessor }}"
    " UNION {{ {x} rdf:type ub:AssistantProfessor }}"
)
_FACULTY = _PROFESSOR + " UNION {{ {x} rdf:type ub:Lecturer }}"


def queries(universities: int = 2) -> dict[str, str]:
    """The 12 expanded LUBM queries (LQ1–LQ10, LQ13, LQ14)."""
    u0 = "http://www.univ0.edu"
    dept0 = f"{u0}/dept0"
    course0 = f"{dept0}/course0"

    qs = {
        # LQ1: graduate students taking a specific course
        "LQ1": f"""{_PREFIX} SELECT ?x WHERE {{
            ?x rdf:type ub:GraduateStudent .
            ?x ub:takesCourse <{dept0}/gradcourse0> }}""",
        # LQ2: grad students with same-university department membership and
        # undergraduate degree (the classic triangle)
        "LQ2": f"""{_PREFIX} SELECT ?x ?y ?z WHERE {{
            ?x rdf:type ub:GraduateStudent .
            ?y rdf:type ub:University .
            ?z rdf:type ub:Department .
            ?x ub:memberOf ?z .
            ?z ub:subOrganizationOf ?y .
            ?x ub:undergraduateDegreeFrom ?y }}""",
        # LQ3: publications of a particular professor
        "LQ3": f"""{_PREFIX} SELECT ?x WHERE {{
            ?x rdf:type ub:Publication .
            ?x ub:publicationAuthor <{dept0}/faculty0> }}""",
        # LQ4: professors working for a department, with profile data
        "LQ4": f"""{_PREFIX} SELECT ?x ?y1 ?y2 ?y3 WHERE {{
            {_PROFESSOR.format(x="?x")} .
            ?x ub:worksFor <{dept0}> .
            ?x ub:name ?y1 .
            ?x ub:emailAddress ?y2 .
            ?x ub:telephone ?y3 }}""",
        # LQ5: persons that are members of a department
        "LQ5": f"""{_PREFIX} SELECT ?x WHERE {{
            {{ ?x ub:memberOf <{dept0}> }} UNION {{ ?x ub:worksFor <{dept0}> }} }}""",
        # LQ6: all students
        "LQ6": f"""{_PREFIX} SELECT ?x WHERE {{ {_STUDENT.format(x="?x")} }}""",
        # LQ7: students taking courses taught by a particular professor
        "LQ7": f"""{_PREFIX} SELECT ?x ?y WHERE {{
            {_STUDENT.format(x="?x")} .
            ?y rdf:type ub:Course .
            <{dept0}/faculty0> ub:teacherOf ?y .
            ?x ub:takesCourse ?y }}""",
        # LQ8: students member of any department of a university, with email
        "LQ8": f"""{_PREFIX} SELECT ?x ?y ?z WHERE {{
            {_STUDENT.format(x="?x")} .
            ?y rdf:type ub:Department .
            ?x ub:memberOf ?y .
            ?y ub:subOrganizationOf <{u0}> .
            ?x ub:emailAddress ?z }}""",
        # LQ9: student/faculty/course triangle
        "LQ9": f"""{_PREFIX} SELECT ?x ?y ?z WHERE {{
            {_STUDENT.format(x="?x")} .
            {_FACULTY.format(x="?y")} .
            ?x ub:advisor ?y .
            ?y ub:teacherOf ?z .
            ?x ub:takesCourse ?z }}""",
        # LQ10: students taking a specific graduate course
        "LQ10": f"""{_PREFIX} SELECT ?x WHERE {{
            {_STUDENT.format(x="?x")} .
            ?x ub:takesCourse <{dept0}/gradcourse0> }}""",
        # LQ13: alumni of a particular university
        "LQ13": f"""{_PREFIX} SELECT ?x WHERE {{
            {{ ?x ub:undergraduateDegreeFrom <{u0}> }}
            UNION {{ ?x ub:mastersDegreeFrom <{u0}> }}
            UNION {{ ?x ub:doctoralDegreeFrom <{u0}> }} }}""",
        # LQ14: all undergraduate students (the scan-heavy closer)
        "LQ14": f"""{_PREFIX} SELECT ?x WHERE {{
            ?x rdf:type ub:UndergraduateStudent }}""",
    }
    return {name: " ".join(text.split()) for name, text in qs.items()}
