"""The plan-quality battery: a deterministic dataset plus query shapes that
punish bad join orders.

The dataset is a small social/academic graph with deliberately *skewed*
cardinalities — a handful of huge predicates (``type``, ``knows``), a few
tiny ones (``leads``, ``basedIn``), heavy-hitter constants (half the
population lives in city0) and rare ones (one person lives in the last
city) — so that join orders differ by orders of magnitude in intermediate
work and a cost-blind planner has real regret to measure.

The queries cover the shapes SP2Bench identifies as order-sensitive: long
chains (≥ 5 triples), bushy stars, selective-constant anchors, and
OPTIONAL mixes. Both the test battery (``tests/sparql/battery``) and the
planner benchmark (``benchmarks/bench_planner.py``) consume this module,
so the CI regret gate and the correctness harness see the same workload.

Everything is seeded: same inputs, same graph, same queries, same plans.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..rdf.graph import Graph
from ..rdf.namespaces import Namespace
from ..rdf.terms import Literal, Triple, URI

PB = Namespace("http://example.org/planbattery/")
RDF_TYPE = URI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")


@dataclass
class BatteryData:
    graph: Graph
    persons: int
    cities: int
    companies: int
    papers: int


def generate(persons: int = 220, seed: int = 13) -> BatteryData:
    """Generate the battery graph (~20 triples per person at the default
    size, a few thousand total — small enough for per-test loads, skewed
    enough that join orders matter)."""
    rng = random.Random(seed)
    graph = Graph()
    cities = max(6, persons // 40)
    companies = max(5, persons // 30)
    papers = persons * 2

    def add(s, p, o):
        graph.add(Triple(s, p, o))

    person_uris = [URI(f"{PB.base}person{i}") for i in range(persons)]
    city_uris = [URI(f"{PB.base}city{i}") for i in range(cities)]
    company_uris = [URI(f"{PB.base}company{i}") for i in range(companies)]
    paper_uris = [URI(f"{PB.base}paper{i}") for i in range(papers)]

    for j, city in enumerate(city_uris):
        add(city, RDF_TYPE, PB.City)
        add(city, PB.cityName, Literal(f"City {j}"))
    for k, company in enumerate(company_uris):
        add(company, RDF_TYPE, PB.Company)
        # Heavily skewed: most companies sit in city0.
        city = city_uris[0] if rng.random() < 0.6 else rng.choice(city_uris)
        add(company, PB.basedIn, city)

    for i, person in enumerate(person_uris):
        add(person, RDF_TYPE, PB.Person)
        add(person, PB.name, Literal(f"Person {i}"))
        # livesIn: city0 hoards half the population; the last city gets
        # exactly one inhabitant (the rare selective constant).
        if i == persons - 1:
            add(person, PB.livesIn, city_uris[-1])
        elif rng.random() < 0.5:
            add(person, PB.livesIn, city_uris[0])
        else:
            add(person, PB.livesIn, rng.choice(city_uris[1:-1]))
        add(person, PB.worksAt, rng.choice(company_uris))
        if i % 37 == 0:
            add(person, PB.leads, rng.choice(company_uris))
        # knows: a dense, chain-friendly web (~4 edges per person).
        for _ in range(4):
            other = rng.choice(person_uris)
            if other is not person:
                add(person, PB.knows, other)
        if rng.random() < 0.35:
            add(person, PB.age, Literal(str(rng.randint(18, 90))))

    for n, paper in enumerate(paper_uris):
        add(paper, RDF_TYPE, PB.Paper)
        add(paper, PB.title, Literal(f"Paper {n}"))
        add(paper, PB.about, URI(f"{PB.base}topic{n % 7}"))
        for author in rng.sample(person_uris, rng.randint(1, 2)):
            add(paper, PB.authored_by, author)
        if rng.random() < 0.4:
            add(paper, PB.cites, rng.choice(paper_uris))

    return BatteryData(
        graph,
        persons=persons,
        cities=cities,
        companies=companies,
        papers=papers,
    )


def queries(persons: int = 220) -> dict[str, str]:
    """Named battery queries, ≥ 20 shapes; values are plain SPARQL text.

    Names are tagged by family: ``chain*`` (length ≥ 5), ``star*``
    (bushy stars), ``sel*`` (selective constants), ``opt*`` (OPTIONAL
    mixes), ``mix*`` (hybrids).
    """
    b = PB.base
    rare_city = f"{b}city{max(6, persons // 40) - 1}"
    qs = {
        # ---------------------------------------------------- chains (≥ 5)
        "chain5_knows": f"""SELECT ?a ?e WHERE {{
            ?a <{b}knows> ?b . ?b <{b}knows> ?c . ?c <{b}knows> ?d .
            ?d <{b}knows> ?e . ?e <{b}livesIn> <{b}city0> }}""",
        "chain5_rare_anchor": f"""SELECT ?a ?d WHERE {{
            ?a <{b}livesIn> <{rare_city}> . ?a <{b}knows> ?b .
            ?b <{b}knows> ?c . ?c <{b}knows> ?d . ?d <{b}worksAt> ?co }}""",
        "chain6_papers": f"""SELECT ?p1 ?author WHERE {{
            ?p1 <{b}cites> ?p2 . ?p2 <{b}cites> ?p3 .
            ?p3 <{b}authored_by> ?author . ?author <{b}knows> ?friend .
            ?friend <{b}livesIn> <{b}city0> }}""",
        "chain5_company": f"""SELECT ?a ?city WHERE {{
            ?a <{b}knows> ?c . ?c <{b}knows> ?d . ?d <{b}leads> ?co .
            ?co <{b}basedIn> ?city . ?city <{b}cityName> ?nm }}""",
        "chain5_authors": f"""SELECT ?paper ?city WHERE {{
            ?paper <{b}authored_by> ?a . ?a <{b}knows> ?f .
            ?f <{b}livesIn> ?city . ?city <{b}cityName> ?nm .
            ?f <{b}worksAt> ?co }}""",
        # ------------------------------------------------------ bushy stars
        "star_person": f"""SELECT ?p ?n ?city ?co WHERE {{
            ?p <{b}name> ?n . ?p <{b}livesIn> ?city .
            ?p <{b}worksAt> ?co . ?p <{RDF_TYPE.value}> <{b}Person> }}""",
        "star_leader": f"""SELECT ?p ?n ?co WHERE {{
            ?p <{b}leads> ?co . ?p <{b}name> ?n .
            ?p <{b}livesIn> ?city . ?p <{b}worksAt> ?employer }}""",
        "star_paper": f"""SELECT ?paper ?t ?topic ?a WHERE {{
            ?paper <{b}title> ?t . ?paper <{b}about> ?topic .
            ?paper <{b}authored_by> ?a . ?paper <{RDF_TYPE.value}> <{b}Paper> }}""",
        "star_bushy_two_centers": f"""SELECT ?p ?paper WHERE {{
            ?p <{b}name> ?n . ?p <{b}livesIn> ?city .
            ?paper <{b}authored_by> ?p . ?paper <{b}about> ?topic .
            ?paper <{b}title> ?t }}""",
        "star_aged": f"""SELECT ?p ?age ?co WHERE {{
            ?p <{b}age> ?age . ?p <{b}worksAt> ?co .
            ?p <{b}livesIn> ?city . ?p <{b}name> ?n }}""",
        # ----------------------------------------------- selective constants
        "sel_rare_city": f"""SELECT ?p ?n WHERE {{
            ?p <{b}livesIn> <{rare_city}> . ?p <{b}name> ?n }}""",
        "sel_rare_vs_huge": f"""SELECT ?p ?f WHERE {{
            ?p <{b}livesIn> <{rare_city}> . ?p <{b}knows> ?f .
            ?f <{b}livesIn> <{b}city0> }}""",
        "sel_person0_star": f"""SELECT ?n ?city ?co WHERE {{
            <{b}person0> <{b}name> ?n . <{b}person0> <{b}livesIn> ?city .
            <{b}person0> <{b}worksAt> ?co }}""",
        "sel_topic_funnel": f"""SELECT ?paper ?a WHERE {{
            ?paper <{b}about> <{b}topic3> . ?paper <{b}authored_by> ?a .
            ?a <{b}livesIn> <{b}city0> }}""",
        "sel_leader_city": f"""SELECT ?p ?co WHERE {{
            ?p <{b}leads> ?co . ?co <{b}basedIn> <{b}city0> .
            ?p <{b}livesIn> ?city }}""",
        # --------------------------------------------------- OPTIONAL mixes
        "opt_age": f"""SELECT ?p ?n ?age WHERE {{
            ?p <{b}name> ?n . ?p <{b}livesIn> <{rare_city}> .
            OPTIONAL {{ ?p <{b}age> ?age }} }}""",
        "opt_leads": f"""SELECT ?p ?co ?led WHERE {{
            ?p <{b}worksAt> ?co . ?p <{b}livesIn> <{rare_city}> .
            OPTIONAL {{ ?p <{b}leads> ?led }} }}""",
        "opt_chain": f"""SELECT ?a ?b ?age WHERE {{
            ?a <{b}livesIn> <{rare_city}> . ?a <{b}knows> ?b .
            ?b <{b}worksAt> ?co . OPTIONAL {{ ?b <{b}age> ?age }} }}""",
        "opt_star_cites": f"""SELECT ?paper ?t ?cited WHERE {{
            ?paper <{b}title> ?t . ?paper <{b}about> <{b}topic1> .
            OPTIONAL {{ ?paper <{b}cites> ?cited }} }}""",
        "opt_double": f"""SELECT ?p ?age ?led WHERE {{
            ?p <{b}livesIn> <{rare_city}> .
            OPTIONAL {{ ?p <{b}age> ?age }}
            OPTIONAL {{ ?p <{b}leads> ?led }} }}""",
        # ------------------------------------------------------ mixed shapes
        "mix_star_chain": f"""SELECT ?p ?f ?co WHERE {{
            ?p <{b}name> ?n . ?p <{b}livesIn> <{rare_city}> .
            ?p <{b}knows> ?f . ?f <{b}worksAt> ?co .
            ?co <{b}basedIn> ?city }}""",
        "mix_paper_social": f"""SELECT ?paper ?f WHERE {{
            ?paper <{b}about> <{b}topic5> . ?paper <{b}authored_by> ?a .
            ?a <{b}knows> ?f . ?f <{b}leads> ?co }}""",
        "mix_filter_chain": f"""SELECT ?p ?f ?age WHERE {{
            ?p <{b}leads> ?co . ?p <{b}knows> ?f . ?f <{b}age> ?age
            FILTER (?age > 40) }}""",
    }
    fixed = {}
    for name, text in qs.items():
        fixed[name] = " ".join(text.split())
    return fixed
