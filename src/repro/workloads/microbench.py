"""The schema micro-benchmark of paper §2.1 (Tables 1 and 2, Figure 3).

Six entity groups with the paper's predicate sets and frequencies:

====================================  =====
predicate set                          freq
====================================  =====
SV1..SV4  + MV1..MV4                   .01
SV1 SV2 SV3 + MV1 MV2 MV3              .24
SV1 SV3 SV4 + MV1 MV3 MV4              .25
SV2 SV3 SV4 + MV2 MV3 MV4              .25
SV1 SV2 SV4 + MV1 MV2 MV4              .24
SV5 SV6 SV7 SV8                        .01
====================================  =====

``SVi`` are single-valued, ``MVi`` multi-valued (three objects each). The
single-valued star {SV1..SV4} and the multi-valued star {MV1..MV4} are each
selective only when the *whole* star is queried; SV5..SV8 are individually
selective. Queries Q1–Q10 follow Table 2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..rdf.graph import Graph
from ..rdf.terms import Triple, URI

BASE = "http://example.org/micro/"
MV_VALUES_PER_PREDICATE = 3

#: (single-valued predicates, multi-valued predicates, frequency)
GROUPS: list[tuple[list[str], list[str], float]] = [
    (["SV1", "SV2", "SV3", "SV4"], ["MV1", "MV2", "MV3", "MV4"], 0.01),
    (["SV1", "SV2", "SV3"], ["MV1", "MV2", "MV3"], 0.24),
    (["SV1", "SV3", "SV4"], ["MV1", "MV3", "MV4"], 0.25),
    (["SV2", "SV3", "SV4"], ["MV2", "MV3", "MV4"], 0.25),
    (["SV1", "SV2", "SV4"], ["MV1", "MV2", "MV4"], 0.24),
    (["SV5", "SV6", "SV7", "SV8"], [], 0.01),
]

#: Table 2: query name -> star predicate set
QUERY_PREDICATES: dict[str, list[str]] = {
    "Q1": ["SV1", "SV2", "SV3", "SV4"],
    "Q2": ["MV1", "MV2", "MV3", "MV4"],
    "Q3": ["SV1", "MV1", "MV2", "MV3", "MV4"],
    "Q4": ["SV1", "SV2", "MV1", "MV2", "MV3", "MV4"],
    "Q5": ["SV1", "SV2", "SV3", "MV1", "MV2", "MV3", "MV4"],
    "Q6": ["SV1", "SV2", "SV3", "SV4", "MV1", "MV2", "MV3", "MV4"],
    "Q7": ["SV5"],
    "Q8": ["SV5", "SV6"],
    "Q9": ["SV5", "SV6", "SV7"],
    "Q10": ["SV5", "SV6", "SV7", "SV8"],
}


def uri(local: str) -> URI:
    return URI(BASE + local)


@dataclass
class MicroBenchData:
    graph: Graph
    subjects_per_group: list[int]

    @property
    def triples(self) -> int:
        return len(self.graph)


def triples_per_subject(group: int) -> int:
    singles, multis, _ = GROUPS[group]
    return len(singles) + len(multis) * MV_VALUES_PER_PREDICATE


def generate(target_triples: int = 100_000, seed: int = 42) -> MicroBenchData:
    """Generate the micro-bench dataset scaled to roughly ``target_triples``."""
    rng = random.Random(seed)
    weights = [frequency for _, _, frequency in GROUPS]
    average_row = sum(
        weight * triples_per_subject(index) for index, weight in enumerate(weights)
    )
    total_subjects = max(1, int(target_triples / average_row))

    graph = Graph()
    subjects_per_group = []
    subject_id = 0
    for group_index, (singles, multis, frequency) in enumerate(GROUPS):
        count = max(1, round(total_subjects * frequency))
        subjects_per_group.append(count)
        for _ in range(count):
            subject = uri(f"e{subject_id}")
            subject_id += 1
            for predicate in singles:
                # Non-selective individual values: drawn from a small pool.
                value = uri(f"{predicate.lower()}_val{rng.randrange(50)}")
                graph.add(Triple(subject, uri(predicate), value))
            for predicate in multis:
                for k in range(MV_VALUES_PER_PREDICATE):
                    value = uri(
                        f"{predicate.lower()}_val{rng.randrange(50)}_{k}"
                    )
                    graph.add(Triple(subject, uri(predicate), value))
    return MicroBenchData(graph, subjects_per_group)


def star_query(predicates: list[str]) -> str:
    """The Figure 2(a) SPARQL star query for a predicate set."""
    body = " ".join(
        f"?s <{BASE}{predicate}> ?o{index} ."
        for index, predicate in enumerate(predicates)
    )
    return f"SELECT ?s WHERE {{ {body} }}"


def queries() -> dict[str, str]:
    """Q1–Q10 of Table 2."""
    return {name: star_query(preds) for name, preds in QUERY_PREDICATES.items()}
