"""An SP2Bench-style DBLP workload: generator plus the 17 queries SQ1–SQ17.

Follows the SP2Bench schema (Schmidt et al.): journals, articles,
proceedings, inproceedings, persons (authors/editors), with DC / DCTERMS /
SWRC / FOAF vocabulary. The queries keep each original's *shape* — SQ2's
wide optional star, SQ4's quadratic same-journal author pairs, SQ5's
name-equality join, SQ6/SQ7's negation via OPTIONAL + !bound, SQ8's union
star — restricted to the SPARQL 1.0 subset the stores support.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..rdf.graph import Graph
from ..rdf.namespaces import Namespace
from ..rdf.terms import Literal, Triple, URI, XSD_INTEGER

RDF_TYPE = URI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
DC = Namespace("http://purl.org/dc/elements/1.1/")
DCTERMS = Namespace("http://purl.org/dc/terms/")
BENCH = Namespace("http://localhost/vocabulary/bench/")
SWRC = Namespace("http://swrc.ontoware.org/ontology#")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")

FIRST_YEAR = 1990


@dataclass
class Sp2bData:
    graph: Graph
    years: int
    persons: int


def _year_literal(year: int) -> Literal:
    return Literal(str(year), datatype=XSD_INTEGER)


def generate(target_triples: int = 50_000, seed: int = 42) -> Sp2bData:
    """Generate a DBLP-shaped graph of roughly ``target_triples``."""
    rng = random.Random(seed)
    graph = Graph()

    def add(s, p, o):
        graph.add(Triple(s, p, o))

    # ~14 triples per article/inproceedings incl. authorship; scale counts.
    documents = max(10, target_triples // 16)
    persons = max(10, documents // 2)
    years = max(3, min(20, documents // 40))

    person_uris = []
    for i in range(persons):
        person = URI(f"http://localhost/persons/p{i}")
        person_uris.append(person)
        add(person, RDF_TYPE, FOAF.Person)
        add(person, FOAF.name, Literal(f"Person {i}"))

    journals_by_year: dict[int, URI] = {}
    proceedings_by_year: dict[int, URI] = {}
    for offset in range(years):
        year = FIRST_YEAR + offset
        journal = URI(f"http://localhost/journals/Journal{offset}")
        journals_by_year[year] = journal
        add(journal, RDF_TYPE, BENCH.Journal)
        add(journal, DC.title, Literal(f"Journal {offset} ({year})"))
        add(journal, DCTERMS.issued, _year_literal(year))
        proceeding = URI(f"http://localhost/proceedings/Proc{offset}")
        proceedings_by_year[year] = proceeding
        add(proceeding, RDF_TYPE, BENCH.Proceedings)
        add(proceeding, DC.title, Literal(f"Proceedings {offset} ({year})"))
        add(proceeding, DCTERMS.issued, _year_literal(year))
        editor = rng.choice(person_uris)
        add(proceeding, SWRC.editor, editor)

    for i in range(documents):
        year = FIRST_YEAR + rng.randrange(years)
        is_article = rng.random() < 0.6
        if is_article:
            doc = URI(f"http://localhost/articles/a{i}")
            add(doc, RDF_TYPE, BENCH.Article)
            add(doc, SWRC.journal, journals_by_year[year])
            add(doc, SWRC.pages, Literal(str(rng.randrange(1, 400))))
        else:
            doc = URI(f"http://localhost/inproc/i{i}")
            add(doc, RDF_TYPE, BENCH.Inproceedings)
            add(doc, BENCH.booktitle, Literal(f"Booktitle {year}"))
            add(doc, DCTERMS.partOf, proceedings_by_year[year])
        add(doc, DC.title, Literal(f"Title of document {i}"))
        add(doc, DCTERMS.issued, _year_literal(year))
        author_count = 1 + min(3, int(rng.expovariate(1.0)))
        for author in rng.sample(person_uris, min(author_count, len(person_uris))):
            add(doc, DC.creator, author)
        if rng.random() < 0.5:
            add(doc, BENCH.abstract, Literal(f"Abstract text for {i}"))
        if rng.random() < 0.3:
            add(doc, RDFS.seeAlso, URI(f"http://ftp.example.org/doc{i}.html"))
        if rng.random() < 0.4:
            other = rng.randrange(documents)
            add(doc, DCTERMS.references, URI(f"http://localhost/articles/a{other}"))

    return Sp2bData(graph, years, persons)


_PREFIX = (
    f"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
    f"PREFIX dc: <{DC.base}> PREFIX dcterms: <{DCTERMS.base}> "
    f"PREFIX bench: <{BENCH.base}> PREFIX swrc: <{SWRC.base}> "
    f"PREFIX foaf: <{FOAF.base}> PREFIX rdfs: <{RDFS.base}> "
    f"PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>"
)


def queries() -> dict[str, str]:
    """SQ1–SQ17 (SP2Bench shapes on the supported subset)."""
    qs = {
        # SQ1: the year of a specific journal
        "SQ1": f"""{_PREFIX} SELECT ?yr WHERE {{
            ?journal rdf:type bench:Journal .
            ?journal dc:title "Journal 0 (1990)" .
            ?journal dcterms:issued ?yr }}""",
        # SQ2: wide star over inproceedings with an OPTIONAL abstract,
        # ordered by year
        "SQ2": f"""{_PREFIX} SELECT ?inproc ?booktitle ?title ?proc ?yr ?abstract WHERE {{
            ?inproc rdf:type bench:Inproceedings .
            ?inproc bench:booktitle ?booktitle .
            ?inproc dc:title ?title .
            ?inproc dcterms:partOf ?proc .
            ?inproc dcterms:issued ?yr .
            OPTIONAL {{ ?inproc bench:abstract ?abstract }}
        }} ORDER BY ?yr""",
        # SQ3a/b/c: articles with a given property (selectivity sweep)
        "SQ3a": f"""{_PREFIX} SELECT ?article WHERE {{
            ?article rdf:type bench:Article .
            ?article swrc:pages ?value }}""",
        "SQ3b": f"""{_PREFIX} SELECT ?article WHERE {{
            ?article rdf:type bench:Article .
            ?article bench:abstract ?value }}""",
        "SQ3c": f"""{_PREFIX} SELECT ?article WHERE {{
            ?article rdf:type bench:Article .
            ?article rdfs:seeAlso ?value }}""",
        # SQ4: same-journal author pairs (the quadratic blow-up)
        "SQ4": f"""{_PREFIX} SELECT DISTINCT ?name1 ?name2 WHERE {{
            ?article1 rdf:type bench:Article .
            ?article2 rdf:type bench:Article .
            ?article1 dc:creator ?author1 .
            ?author1 foaf:name ?name1 .
            ?article2 dc:creator ?author2 .
            ?author2 foaf:name ?name2 .
            ?article1 swrc:journal ?journal .
            ?article2 swrc:journal ?journal
            FILTER (?name1 < ?name2) }}""",
        # SQ5a: authors of articles and inproceedings (implicit person join)
        "SQ5a": f"""{_PREFIX} SELECT DISTINCT ?person ?name WHERE {{
            ?article rdf:type bench:Article .
            ?article dc:creator ?person .
            ?inproc rdf:type bench:Inproceedings .
            ?inproc dc:creator ?person .
            ?person foaf:name ?name }}""",
        # SQ5b: the same join expressed through name-equality FILTER
        "SQ5b": f"""{_PREFIX} SELECT DISTINCT ?person ?name WHERE {{
            ?article rdf:type bench:Article .
            ?article dc:creator ?person2 .
            ?person2 foaf:name ?name2 .
            ?inproc rdf:type bench:Inproceedings .
            ?inproc dc:creator ?person .
            ?person foaf:name ?name
            FILTER (?name = ?name2) }}""",
        # SQ6: documents with no reference to them (negation via !bound)
        "SQ6": f"""{_PREFIX} SELECT ?yr ?name ?document WHERE {{
            ?document dcterms:issued ?yr .
            ?document dc:creator ?author .
            ?author foaf:name ?name .
            OPTIONAL {{ ?other dcterms:references ?document }}
            FILTER (!bound(?other)) }}""",
        # SQ7: documents cited but without pages recorded
        "SQ7": f"""{_PREFIX} SELECT DISTINCT ?title WHERE {{
            ?doc dc:title ?title .
            ?doc2 dcterms:references ?doc .
            OPTIONAL {{ ?doc swrc:pages ?pages }}
            FILTER (!bound(?pages)) }}""",
        # SQ8: persons publishing in either form in a given year (union star)
        "SQ8": f"""{_PREFIX} SELECT DISTINCT ?name WHERE {{
            {{ ?article rdf:type bench:Article .
               ?article dc:creator ?person .
               ?article dcterms:issued "1990"^^xsd:integer }}
            UNION
            {{ ?inproc rdf:type bench:Inproceedings .
               ?inproc dc:creator ?person .
               ?inproc dcterms:issued "1990"^^xsd:integer }}
            ?person foaf:name ?name }}""",
        # SQ9: all predicates on persons, both directions (variable preds)
        "SQ9": f"""{_PREFIX} SELECT DISTINCT ?predicate WHERE {{
            {{ ?person rdf:type foaf:Person . ?subject ?predicate ?person }}
            UNION
            {{ ?person rdf:type foaf:Person . ?person ?predicate ?object }} }}""",
        # SQ10: everything pointing at a specific person
        "SQ10": f"""{_PREFIX} SELECT ?subject ?predicate WHERE {{
            ?subject ?predicate <http://localhost/persons/p0> }}""",
        # SQ11: seeAlso page with ORDER/LIMIT/OFFSET
        "SQ11": f"""{_PREFIX} SELECT ?ee WHERE {{
            ?publication rdfs:seeAlso ?ee
        }} ORDER BY ?ee LIMIT 10 OFFSET 5""",
        # SQ12a (ASK form of SQ5), SQ12b (ASK form of SQ8), SQ12c (ASK miss)
        "SQ12a": f"""{_PREFIX} ASK {{
            ?article rdf:type bench:Article .
            ?article dc:creator ?person .
            ?inproc rdf:type bench:Inproceedings .
            ?inproc dc:creator ?person }}""",
        "SQ12b": f"""{_PREFIX} ASK {{
            {{ ?article rdf:type bench:Article .
               ?article dc:creator ?person .
               ?article dcterms:issued "1990"^^xsd:integer }}
            UNION
            {{ ?inproc rdf:type bench:Inproceedings .
               ?inproc dc:creator ?person .
               ?inproc dcterms:issued "1990"^^xsd:integer }} }}""",
        "SQ12c": f"""{_PREFIX} ASK {{
            ?unknown rdf:type bench:NoSuchClass }}""",
    }
    return {name: " ".join(text.split()) for name, text in qs.items()}
