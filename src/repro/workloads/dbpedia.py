"""A synthetic DBpedia-style workload (paper §4.1, DQ1–DQ20).

The real DBpedia 3.7 has 333M triples, ~54k predicates, power-law in/out
degrees (avg out-degree 14, avg in-degree 5). This generator reproduces
those *structural* properties at laptop scale: a Zipf-distributed predicate
vocabulary (so a few predicates are ubiquitous and a long tail is rare —
the regime where graph coloring cannot cover everything and hash fallback
plus spills kick in), type assertions, and template queries in the style of
the DBpedia SPARQL benchmark (entity lookups, type + property selections,
unions over alternative predicates, optional enrichments).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..rdf.graph import Graph
from ..rdf.namespaces import Namespace
from ..rdf.terms import Literal, Triple, URI, XSD_INTEGER

RDF_TYPE = URI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
DBO = Namespace("http://dbpedia.org/ontology/")
DBR = Namespace("http://dbpedia.org/resource/")
RDFS_LABEL = URI("http://www.w3.org/2000/01/rdf-schema#label")
FOAF_NAME = URI("http://xmlns.com/foaf/0.1/name")

#: core infobox-ish predicates, most frequent first
CORE_PREDICATES = [
    "birthPlace", "birthDate", "deathPlace", "occupation", "country",
    "location", "industry", "foundedBy", "keyPerson", "product",
    "genre", "author", "starring", "director", "producer",
    "populationTotal", "areaTotal", "capital", "language", "currency",
]

TYPES = [
    "Person", "Company", "City", "Country", "Film", "Book",
    "Software", "University", "Band", "Athlete",
]


@dataclass
class DbpediaData:
    graph: Graph
    entities: int
    predicates: int


def generate(
    target_triples: int = 60_000,
    tail_predicates: int = 400,
    seed: int = 42,
) -> DbpediaData:
    """Generate a deterministic power-law DBpedia-style graph."""
    rng = random.Random(seed)
    graph = Graph()

    predicates = [DBO(name) for name in CORE_PREDICATES] + [
        DBO(f"property{i}") for i in range(tail_predicates)
    ]
    # Zipf-ish weights over the whole vocabulary.
    weights = [1.0 / (rank + 1) for rank in range(len(predicates))]

    entities = max(10, target_triples // 8)
    entity_uris = [DBR(f"Entity_{i}") for i in range(entities)]
    values = [DBR(f"Value_{i}") for i in range(max(50, entities // 5))]

    def add(s, p, o):
        graph.add(Triple(s, p, o))

    produced = 0
    for index, entity in enumerate(entity_uris):
        entity_type = DBO(TYPES[index % len(TYPES)])
        add(entity, RDF_TYPE, entity_type)
        add(entity, RDFS_LABEL, Literal(f"Entity {index}"))
        produced += 2
        # Power-law out-degree: most entities small, a few huge.
        out_degree = 3 + min(int(rng.paretovariate(1.2)), 60)
        chosen = rng.choices(predicates, weights=weights, k=out_degree)
        for predicate in dict.fromkeys(chosen):
            if rng.random() < 0.15:
                add(
                    entity,
                    predicate,
                    Literal(str(rng.randrange(1800, 2020)), datatype=XSD_INTEGER),
                )
            else:
                # Preferential attachment on objects gives power-law
                # in-degree: low indexes picked far more often.
                target = values[
                    min(int(rng.paretovariate(1.1)) - 1, len(values) - 1)
                ]
                add(entity, predicate, target)
            produced += 1
        if produced >= target_triples:
            break

    return DbpediaData(graph, entities, len(predicates))


_PREFIX = (
    f"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
    f"PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> "
    f"PREFIX dbo: <{DBO.base}> PREFIX dbr: <{DBR.base}> "
    f"PREFIX foaf: <http://xmlns.com/foaf/0.1/>"
)


def queries() -> dict[str, str]:
    """DQ1–DQ20: DBpedia-SPARQL-benchmark style templates."""
    qs = {
        # entity description (the most common DBpedia log query)
        "DQ1": f"{_PREFIX} SELECT ?p ?o WHERE {{ dbr:Entity_0 ?p ?o }}",
        "DQ2": f"{_PREFIX} SELECT ?s ?p WHERE {{ ?s ?p dbr:Value_0 }} LIMIT 100",
        # label lookups
        "DQ3": f'{_PREFIX} SELECT ?s WHERE {{ ?s rdfs:label "Entity 7" }}',
        "DQ4": f"{_PREFIX} SELECT ?label WHERE {{ dbr:Entity_42 rdfs:label ?label }}",
        # type + property selections
        "DQ5": f"""{_PREFIX} SELECT ?s ?place WHERE {{
            ?s rdf:type dbo:Person . ?s dbo:birthPlace ?place }}""",
        "DQ6": f"""{_PREFIX} SELECT ?s WHERE {{
            ?s rdf:type dbo:Company . ?s dbo:industry ?i .
            ?s dbo:keyPerson ?k }}""",
        "DQ7": f"""{_PREFIX} SELECT ?s ?date WHERE {{
            ?s rdf:type dbo:Person . ?s dbo:birthDate ?date
            FILTER (?date > 1950) }}""",
        # star on a specific entity
        "DQ8": f"""{_PREFIX} SELECT ?bp ?bd WHERE {{
            dbr:Entity_10 dbo:birthPlace ?bp .
            dbr:Entity_10 dbo:birthDate ?bd }}""",
        # union over alternative predicates
        "DQ9": f"""{_PREFIX} SELECT ?s ?who WHERE {{
            {{ ?s dbo:foundedBy ?who }} UNION {{ ?s dbo:keyPerson ?who }} }}""",
        "DQ10": f"""{_PREFIX} SELECT ?s ?where WHERE {{
            {{ ?s dbo:birthPlace ?where }} UNION {{ ?s dbo:deathPlace ?where }}
            ?s rdf:type dbo:Person }}""",
        # optional enrichment
        "DQ11": f"""{_PREFIX} SELECT ?s ?label ?occ WHERE {{
            ?s rdf:type dbo:Person . ?s rdfs:label ?label .
            OPTIONAL {{ ?s dbo:occupation ?occ }} }}""",
        "DQ12": f"""{_PREFIX} SELECT ?s ?cap ?lang WHERE {{
            ?s rdf:type dbo:Country .
            OPTIONAL {{ ?s dbo:capital ?cap }}
            OPTIONAL {{ ?s dbo:language ?lang }} }}""",
        # chains
        "DQ13": f"""{_PREFIX} SELECT ?film ?studio WHERE {{
            ?film rdf:type dbo:Film . ?film dbo:director ?d .
            ?d dbo:location ?studio }}""",
        "DQ14": f"""{_PREFIX} SELECT ?a ?b WHERE {{
            ?a dbo:keyPerson ?p . ?b dbo:foundedBy ?p }}""",
        # incoming edges of a hub value
        "DQ15": f"""{_PREFIX} SELECT ?s WHERE {{
            ?s dbo:birthPlace dbr:Value_1 }}""",
        "DQ16": f"""{_PREFIX} SELECT DISTINCT ?type WHERE {{
            ?s dbo:country dbr:Value_2 . ?s rdf:type ?type }}""",
        # label + regex (log-derived text search)
        "DQ17": f"""{_PREFIX} SELECT ?s ?label WHERE {{
            ?s rdfs:label ?label FILTER regex(?label, "Entity 1[0-3]$") }}""",
        # mixed star with union and optional
        "DQ18": f"""{_PREFIX} SELECT ?s ?v ?g WHERE {{
            {{ ?s dbo:genre ?v }} UNION {{ ?s dbo:product ?v }}
            OPTIONAL {{ ?s rdfs:label ?g }} }}""",
        "DQ19": f"""{_PREFIX} SELECT ?s WHERE {{
            ?s rdf:type dbo:Software . ?s dbo:author ?a }} LIMIT 50""",
        "DQ20": f"""{_PREFIX} SELECT ?s ?o WHERE {{
            ?s dbo:property0 ?o }} LIMIT 100""",
    }
    return {name: " ".join(text.split()) for name, text in qs.items()}
