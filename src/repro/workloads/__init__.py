"""Benchmark workloads: generators, query sets, and the Figure-15 harness."""

from . import dbpedia, lubm, microbench, prbench, sp2bench
from .runner import (
    COMPLETE,
    ERROR,
    QueryOutcome,
    SystemSummary,
    TIMEOUT,
    UNSUPPORTED,
    expected_counts,
    format_per_query_table,
    format_summary_table,
    run_benchmark,
    run_system,
    time_query,
)

__all__ = [
    "COMPLETE",
    "ERROR",
    "QueryOutcome",
    "SystemSummary",
    "TIMEOUT",
    "UNSUPPORTED",
    "dbpedia",
    "expected_counts",
    "format_per_query_table",
    "format_summary_table",
    "lubm",
    "microbench",
    "prbench",
    "run_benchmark",
    "run_system",
    "sp2bench",
    "time_query",
]
