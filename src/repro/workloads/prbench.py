"""A PRBench-style tool-integration workload (paper §4.1, PQ1–PQ29).

The paper's private benchmark holds 60M triples about software artifacts
(bug reports, requirements, test cases, change sets) produced by different
tools and integrated through RDF. This synthetic equivalent models that
scenario: several "tools" each emit artifacts with tool-specific vocabulary
plus shared Dublin-Core-ish metadata, artifacts cross-reference each other
(implements / validates / blocks / relatesTo), and the query mix mirrors
the paper's description — many lookup/star queries, medium traversals
(PQ14–PQ17, PQ24, PQ29), heavy analytic joins (PQ10, PQ26–PQ28), and one
very wide UNION of conjunctive branches (the paper mentions a 100-branch
union; PQ5 scales with the tool count).

The original is a quad store (1M+ named graphs); we flatten graphs into a
``pr:graph`` provenance triple per artifact, which preserves the workload's
join structure (substitution documented in DESIGN.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..rdf.graph import Graph
from ..rdf.namespaces import Namespace
from ..rdf.terms import Literal, Triple, URI, XSD_INTEGER

RDF_TYPE = URI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
PR = Namespace("http://example.org/pr/")
DC = Namespace("http://purl.org/dc/elements/1.1/")

ARTIFACT_KINDS = ["BugReport", "Requirement", "TestCase", "ChangeSet", "Build"]
STATES = ["open", "inprogress", "resolved", "verified", "closed"]
SEVERITIES = ["blocker", "critical", "major", "minor", "trivial"]
TOOLS = ["bugger", "reqman", "testify", "churn", "builder"]


@dataclass
class PrbenchData:
    graph: Graph
    artifacts: int


def generate(target_triples: int = 60_000, seed: int = 42) -> PrbenchData:
    """Generate a deterministic tool-integration graph of roughly
    ``target_triples``."""
    rng = random.Random(seed)
    graph = Graph()

    def add(s, p, o):
        graph.add(Triple(s, p, o))

    artifacts = max(20, target_triples // 11)
    users = [PR(f"user{i}") for i in range(max(5, artifacts // 50))]
    artifact_uris: list[URI] = []

    for i in range(artifacts):
        kind = ARTIFACT_KINDS[i % len(ARTIFACT_KINDS)]
        tool = TOOLS[i % len(TOOLS)]
        artifact = PR(f"{tool}/art{i}")
        artifact_uris.append(artifact)
        add(artifact, RDF_TYPE, PR(kind))
        add(artifact, PR.graph, PR(f"graphs/g{i}"))
        add(artifact, PR.tool, PR(tool))
        add(artifact, DC.identifier, Literal(f"{tool.upper()}-{i}"))
        add(artifact, DC.title, Literal(f"{kind} number {i}"))
        add(artifact, DC.creator, rng.choice(users))
        add(artifact, PR.created, Literal(str(2000 + i % 20), datatype=XSD_INTEGER))
        add(artifact, PR.state, Literal(rng.choice(STATES)))
        if kind == "BugReport":
            add(artifact, PR.severity, Literal(rng.choice(SEVERITIES)))
            if rng.random() < 0.4 and artifact_uris[:-1]:
                add(artifact, PR.blockedBy, rng.choice(artifact_uris[:-1]))
        if kind == "TestCase" and artifact_uris[:-1]:
            add(artifact, PR.validates, rng.choice(artifact_uris[:-1]))
        if kind == "ChangeSet" and artifact_uris[:-1]:
            add(artifact, PR.implements, rng.choice(artifact_uris[:-1]))
            add(artifact, PR.touches, Literal(f"src/module{i % 40}.py"))
        if rng.random() < 0.5 and artifact_uris[:-1]:
            add(artifact, PR.relatesTo, rng.choice(artifact_uris[:-1]))

    return PrbenchData(graph, artifacts)


_PREFIX = (
    f"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
    f"PREFIX pr: <{PR.base}> PREFIX dc: <{DC.base}> "
    f"PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>"
)


def _wide_union(branches: int) -> str:
    """The paper's 'union of 100 conjunctive queries': artifacts from any
    tool in any state, one conjunctive branch per (tool, state) pair."""
    parts = []
    count = 0
    while count < branches:
        tool = TOOLS[count % len(TOOLS)]
        state = STATES[(count // len(TOOLS)) % len(STATES)]
        parts.append(
            f'{{ ?a pr:tool pr:{tool} . ?a pr:state "{state}" . '
            f"?a dc:creator ?who }}"
        )
        count += 1
    return " UNION ".join(parts)


def queries(wide_union_branches: int = 25) -> dict[str, str]:
    """PQ1–PQ29."""
    qs = {
        # -- lookups and small stars ------------------------------------
        "PQ1": f"""{_PREFIX} SELECT ?t WHERE {{
            ?a dc:identifier "BUGGER-0" . ?a dc:title ?t }}""",
        "PQ2": f"""{_PREFIX} SELECT ?a WHERE {{ ?a rdf:type pr:BugReport .
            ?a pr:severity "blocker" }}""",
        "PQ3": f"""{_PREFIX} SELECT ?a ?t ?s WHERE {{
            ?a rdf:type pr:Requirement . ?a dc:title ?t . ?a pr:state ?s }}""",
        "PQ4": f"""{_PREFIX} SELECT ?id ?who WHERE {{
            ?a pr:tool pr:bugger . ?a dc:identifier ?id . ?a dc:creator ?who }}""",
        "PQ5": f"""{_PREFIX} SELECT ?a ?who WHERE {{ {_wide_union(wide_union_branches)} }}""",
        "PQ6": f"""{_PREFIX} SELECT ?a WHERE {{ ?a pr:state "open" }} LIMIT 50""",
        "PQ7": f"""{_PREFIX} SELECT ?g WHERE {{ <{PR.base}bugger/art0> pr:graph ?g }}""",
        "PQ8": f"""{_PREFIX} SELECT ?p ?o WHERE {{ <{PR.base}bugger/art0> ?p ?o }}""",
        "PQ9": f"""{_PREFIX} SELECT ?a WHERE {{
            ?a dc:creator <{PR.base}user0> . ?a pr:state "resolved" }}""",
        # -- heavy analytic joins (the paper's long-running set) ---------
        "PQ10": f"""{_PREFIX} SELECT ?bug ?test ?change WHERE {{
            ?bug rdf:type pr:BugReport .
            ?test rdf:type pr:TestCase .
            ?change rdf:type pr:ChangeSet .
            ?test pr:validates ?bug .
            ?change pr:implements ?bug }}""",
        "PQ11": f"""{_PREFIX} SELECT ?a ?b WHERE {{
            ?a pr:relatesTo ?b . ?b pr:relatesTo ?c }}""",
        "PQ12": f"""{_PREFIX} SELECT ?bug ?blocker WHERE {{
            ?bug pr:blockedBy ?blocker . ?blocker pr:state "open" }}""",
        "PQ13": f"""{_PREFIX} SELECT ?req ?change ?file WHERE {{
            ?change pr:implements ?req . ?change pr:touches ?file }}""",
        # -- medium traversals (the Figure 18 set) ------------------------
        "PQ14": f"""{_PREFIX} SELECT ?a ?t WHERE {{
            ?a rdf:type pr:BugReport . ?a pr:state "open" .
            ?a pr:severity "critical" . ?a dc:title ?t }}""",
        "PQ15": f"""{_PREFIX} SELECT ?req ?test WHERE {{
            ?req rdf:type pr:Requirement .
            ?test pr:validates ?req .
            ?test pr:state "verified" }}""",
        "PQ16": f"""{_PREFIX} SELECT ?who ?a WHERE {{
            ?a dc:creator ?who . ?a rdf:type pr:ChangeSet .
            ?a pr:created ?yr FILTER (?yr >= 2010) }}""",
        "PQ17": f"""{_PREFIX} SELECT ?a ?rel ?t WHERE {{
            ?a pr:relatesTo ?rel . ?rel dc:title ?t .
            OPTIONAL {{ ?rel pr:severity ?sev }} }}""",
        "PQ18": f"""{_PREFIX} SELECT ?a WHERE {{
            {{ ?a pr:state "open" }} UNION {{ ?a pr:state "inprogress" }}
            ?a rdf:type pr:BugReport }}""",
        "PQ19": f"""{_PREFIX} SELECT ?tool ?a WHERE {{
            ?a pr:tool ?tool . ?a pr:state "closed" }}""",
        "PQ20": f"""{_PREFIX} SELECT ?a ?id WHERE {{
            ?a dc:identifier ?id . ?a pr:created "2005"^^xsd:integer }}""",
        "PQ21": f"""{_PREFIX} SELECT ?a ?b WHERE {{
            ?a pr:blockedBy ?b . ?b pr:blockedBy ?c }}""",
        "PQ22": f"""{_PREFIX} SELECT DISTINCT ?who WHERE {{
            ?a dc:creator ?who . ?a rdf:type pr:BugReport .
            ?a pr:severity "blocker" }}""",
        "PQ23": f"""{_PREFIX} SELECT ?a ?g ?id WHERE {{
            ?a pr:graph ?g . ?a dc:identifier ?id .
            ?a pr:tool pr:testify }}""",
        "PQ24": f"""{_PREFIX} SELECT ?bug ?title ?who ?sev WHERE {{
            ?bug rdf:type pr:BugReport .
            ?bug dc:title ?title .
            ?bug dc:creator ?who .
            OPTIONAL {{ ?bug pr:severity ?sev }}
            ?bug pr:state "open" }}""",
        "PQ25": f"""{_PREFIX} SELECT ?a WHERE {{
            ?a rdf:type pr:Build }} ORDER BY ?a LIMIT 20""",
        # -- long-running (Figure 17 set, with PQ10 above) ----------------
        "PQ26": f"""{_PREFIX} SELECT ?who ?bug ?test WHERE {{
            ?bug dc:creator ?who .
            ?test dc:creator ?who .
            ?bug rdf:type pr:BugReport .
            ?test rdf:type pr:TestCase .
            ?test pr:validates ?bug }}""",
        "PQ27": f"""{_PREFIX} SELECT ?a ?b ?c WHERE {{
            ?a pr:relatesTo ?b .
            ?b pr:relatesTo ?c .
            ?c pr:relatesTo ?d }}""",
        "PQ28": f"""{_PREFIX} SELECT ?req ?bug ?change WHERE {{
            ?bug pr:relatesTo ?req .
            ?req rdf:type pr:Requirement .
            ?change pr:implements ?req .
            ?bug rdf:type pr:BugReport .
            OPTIONAL {{ ?change pr:touches ?file }} }}""",
        "PQ29": f"""{_PREFIX} SELECT ?a ?state ?sev WHERE {{
            ?a rdf:type pr:BugReport .
            ?a pr:state ?state .
            OPTIONAL {{ ?a pr:severity ?sev }}
            FILTER (?state != "closed") }}""",
    }
    return {name: " ".join(text.split()) for name, text in qs.items()}
