"""The SPARQL Update request model.

A request is a ``;``-separated sequence of operations. Ground operations
(``INSERT DATA`` / ``DELETE DATA``) carry concrete :class:`~repro.rdf.
terms.Triple` values; pattern operations carry the same
:class:`~repro.sparql.ast.GroupPattern` / :class:`~repro.sparql.ast.
TriplePattern` nodes the query compiler consumes, so their WHERE clauses
run through the ordinary read pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..rdf.terms import Triple
from ..sparql.ast import GroupPattern, TriplePattern


@dataclass(frozen=True)
class InsertData:
    """``INSERT DATA { ground triples }``"""

    triples: tuple[Triple, ...]


@dataclass(frozen=True)
class DeleteData:
    """``DELETE DATA { ground triples }``"""

    triples: tuple[Triple, ...]


@dataclass(eq=False)
class DeleteWhere:
    """``DELETE WHERE { pattern }`` — the pattern doubles as the delete
    template, instantiated once per solution."""

    pattern: GroupPattern


@dataclass(eq=False)
class Modify:
    """``DELETE { ... } INSERT { ... } WHERE { ... }`` (either template
    block may be absent). All solutions are computed first, then deletes
    apply before inserts."""

    delete_templates: tuple[TriplePattern, ...]
    insert_templates: tuple[TriplePattern, ...]
    where: GroupPattern


UpdateOperation = Union[InsertData, DeleteData, DeleteWhere, Modify]


@dataclass(eq=False)
class UpdateRequest:
    """One parsed update string: an ordered sequence of operations applied
    atomically in a single transaction."""

    operations: list[UpdateOperation]
