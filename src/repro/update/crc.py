"""CRC32C (Castagnoli) — the per-record checksum of the journal.

Pure-python, table-driven (reflected polynomial 0x1EDC6F41). Journal
records are small (a commit's net delta, typically well under a KiB), so
a byte-at-a-time table walk is more than fast enough and keeps the
toolchain dependency-free. The Castagnoli polynomial is the one real
storage systems frame records with (iSCSI, ext4, LevelDB's log format),
which is exactly the role it plays here.
"""

from __future__ import annotations

_REFLECTED_POLY = 0x82F63B78


def _build_table() -> tuple[int, ...]:
    table = []
    for index in range(256):
        crc = index
        for _ in range(8):
            crc = (crc >> 1) ^ _REFLECTED_POLY if crc & 1 else crc >> 1
        table.append(crc)
    return tuple(table)


_TABLE = _build_table()


def crc32c(data: bytes, value: int = 0) -> int:
    """The CRC32C of ``data``, optionally continuing from ``value``."""
    crc = value ^ 0xFFFFFFFF
    table = _TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF
