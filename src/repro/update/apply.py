"""The update executor: maps parsed operations onto a write target.

A *target* is anything with ``add(triple) -> bool``, ``remove(triple) ->
bool``, and ``select(SelectQuery) -> SelectResult``. The DB2RDF store's
:class:`~repro.update.transaction.Transaction` is one target; the
native-memory baseline is another — both run the exact same executor, so
the differential harness exercises one write semantics across engines.

Pattern operations evaluate their WHERE clause through the target's own
read pipeline (for the DB2RDF store: dataflow → planbuilder → merge →
translate → SQL), then instantiate the templates per solution. Following
the SPARQL Update spec, all solutions are computed before any change is
applied, deletes apply before inserts, and template triples with unbound
variables (or a literal in subject position) are skipped.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Protocol

from ..rdf.terms import Literal, Term, Triple, URI
from ..sparql.ast import GroupPattern, SelectQuery, TriplePattern, Var
from ..sparql.results import SelectResult
from .ast import DeleteData, DeleteWhere, InsertData, Modify, UpdateRequest


class WriteTarget(Protocol):
    """What :func:`apply_update` needs from a store."""

    def add(self, triple: Triple) -> bool: ...

    def remove(self, triple: Triple) -> bool: ...

    def select(self, query: SelectQuery) -> SelectResult: ...


@dataclass
class UpdateResult:
    """What one update request changed."""

    inserted: int = 0
    deleted: int = 0
    operations: int = 0
    #: the finished trace root when the update ran in PROFILE mode
    profile: Any = None

    def summary(self) -> str:
        return (
            f"+{self.inserted} / -{self.deleted} triples "
            f"({self.operations} operation{'s' if self.operations != 1 else ''})"
        )


def _stage(tracer, name: str, **attrs):
    return tracer.span(name, **attrs) if tracer is not None else nullcontext()


def apply_update(
    request: UpdateRequest, target: WriteTarget, tracer=None
) -> UpdateResult:
    """Apply every operation of ``request`` to ``target`` in order.

    Later operations see the effects of earlier ones (the spec's
    sequential semantics). Atomicity is the *caller's* concern: wrap the
    call in a transaction to make the whole request atomic.
    """
    result = UpdateResult()
    for operation in request.operations:
        result.operations += 1
        name = type(operation).__name__
        with _stage(tracer, f"apply.{name}") as span:
            if isinstance(operation, InsertData):
                inserted = _add_all(target, operation.triples)
                deleted = 0
            elif isinstance(operation, DeleteData):
                inserted = 0
                deleted = _remove_all(target, operation.triples)
            elif isinstance(operation, DeleteWhere):
                solutions = _solutions(target, operation.pattern)
                templates = tuple(
                    element
                    for element in operation.pattern.elements
                    if isinstance(element, TriplePattern)
                )
                inserted = 0
                deleted = _remove_all(
                    target, _instantiate(templates, solutions)
                )
            elif isinstance(operation, Modify):
                solutions = _solutions(target, operation.where)
                deleted = _remove_all(
                    target, _instantiate(operation.delete_templates, solutions)
                )
                inserted = _add_all(
                    target, _instantiate(operation.insert_templates, solutions)
                )
            else:  # pragma: no cover - parser only builds the four forms
                raise TypeError(f"unknown update operation {operation!r}")
            result.inserted += inserted
            result.deleted += deleted
            if span is not None and hasattr(span, "set"):
                span.set("inserted", inserted)
                span.set("deleted", deleted)
    return result


# ----------------------------------------------------------------- helpers


def _add_all(target: WriteTarget, triples: Iterable[Triple]) -> int:
    return sum(1 for triple in triples if target.add(triple))


def _remove_all(target: WriteTarget, triples: Iterable[Triple]) -> int:
    return sum(1 for triple in triples if target.remove(triple))


def _solutions(
    target: WriteTarget, where: GroupPattern
) -> list[dict[str, Term]]:
    """Evaluate a WHERE clause as ``SELECT *`` through the target's read
    pipeline, returning one variable→term binding per solution."""
    result = target.select(SelectQuery(variables=None, where=where))
    return [
        {
            variable: term
            for variable, term in zip(result.variables, row)
            if term is not None
        }
        for row in result.rows
    ]


def _instantiate(
    templates: tuple[TriplePattern, ...],
    solutions: list[Mapping[str, Term]],
) -> list[Triple]:
    """Ground every template against every solution, deduplicated in first
    appearance order."""
    out: list[Triple] = []
    seen: set[Triple] = set()
    for binding in solutions:
        for template in templates:
            triple = _bind(template, binding)
            if triple is not None and triple not in seen:
                seen.add(triple)
                out.append(triple)
    return out


def _bind(
    template: TriplePattern, binding: Mapping[str, Term]
) -> Triple | None:
    def resolve(position):
        if isinstance(position, Var):
            return binding.get(position.name)
        return position

    subject = resolve(template.subject)
    predicate = resolve(template.predicate)
    obj = resolve(template.object)
    if subject is None or predicate is None or obj is None:
        return None  # unbound variable: the spec drops the triple
    if isinstance(subject, Literal) or not isinstance(predicate, URI):
        return None  # ill-formed instantiation: dropped likewise
    return Triple(subject, predicate, obj)
