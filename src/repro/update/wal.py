"""An append-only write-ahead journal of committed transactions.

The journal is a commit log, not a redo-before-write log: a transaction's
net delta is appended in one line *at commit time*, after the in-memory
apply succeeded. A store reopened against the same path replays every
committed record to reconstruct its write history; anything that never
reached ``append`` simply never happened, which is exactly the rollback
semantics the transaction layer promises.

Format: one JSON object per line —

    {"txn": 3, "ops": [["+", "<s-key>", "<p-iri>", "<o-key>"], ...]}

Terms are serialized with :func:`~repro.rdf.terms.term_key` (URIs bare,
literals in N3), the same canonical encoding the dictionary tables and
cross-engine comparisons use. A torn *final* line — the footprint of a
crash mid-append — is tolerated and ignored on replay; a corrupt interior
record means real damage and raises :class:`~repro.update.errors.WalError`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, Sequence

from .errors import WalError

#: one journalled operation: ("+"/"-", subject key, predicate IRI, object key)
WalOp = tuple[str, str, str, str]


class WriteAheadLog:
    """A durable, replayable journal at ``path``.

    ``sync=True`` adds an ``fsync`` per append for true crash durability;
    the default flushes only, which survives process death but not power
    loss — the right trade for tests and benchmarks.
    """

    def __init__(self, path: str | os.PathLike, sync: bool = False) -> None:
        self.path = Path(path)
        self.sync = sync
        self._next_txn = 1
        if self.path.exists():
            for txn_id, _ in self.replay():
                self._next_txn = txn_id + 1

    def append(self, ops: Sequence[WalOp]) -> int:
        """Journal one committed transaction; returns its id."""
        txn_id = self._next_txn
        record = json.dumps(
            {"txn": txn_id, "ops": [list(op) for op in ops]},
            separators=(",", ":"),
        )
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(record + "\n")
            handle.flush()
            if self.sync:
                os.fsync(handle.fileno())
        self._next_txn = txn_id + 1
        return txn_id

    def replay(self) -> Iterator[tuple[int, list[WalOp]]]:
        """Yield ``(txn_id, ops)`` for every committed record, in order."""
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for index, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            last = index == len(lines) - 1
            try:
                record = json.loads(stripped)
                txn_id = record["txn"]
                ops = [
                    (str(tag), str(s), str(p), str(o))
                    for tag, s, p, o in record["ops"]
                ]
            except (ValueError, KeyError, TypeError) as exc:
                if last:
                    return  # torn tail: the crash the journal exists for
                raise WalError(
                    f"corrupt journal record at {self.path}:{index + 1}: {exc}"
                ) from exc
            for op in ops:
                if op[0] not in ("+", "-"):
                    raise WalError(
                        f"unknown operation tag {op[0]!r} "
                        f"at {self.path}:{index + 1}"
                    )
            yield txn_id, ops
