"""A checksummed, segmented write-ahead journal with durable checkpoints.

The journal is a commit log, not a redo-before-write log: a transaction's
net delta is appended as one framed record *at commit time*, after the
in-memory apply succeeded. A store reopened against the same path replays
the checkpoint (if any) plus every committed record to reconstruct its
write history; anything that never reached ``append`` simply never
happened, which is exactly the rollback semantics the transaction layer
promises.

Layout — ``path`` is a directory::

    <path>/
      MANIFEST.json            # layout summary, updated via atomic rename
      wal-00000001.seg         # sealed segment (rotated at segment_max_bytes)
      wal-00000002.seg         # active segment (appends go here)
      checkpoint-00000042.ckpt # consolidated prefix of the journal

Each segment record is one line::

    W1 <payload-bytes> <crc32c-hex8> {"txn":3,"ops":[["+","s","p","o"],...]}\\n

The CRC32C covers the JSON payload; the declared length lets recovery
distinguish a torn tail (incomplete final line — the expected footprint of
a crash mid-append, truncated with a warning) from real damage (checksum
mismatch, mangled frame, or a gap in the transaction sequence). What
happens on real damage is the ``recovery`` policy's call:

* ``"strict"`` (default) raises :class:`WalCorruptionError` naming the
  segment, byte offset, and record index;
* ``"tolerate_tail"`` truncates at the first bad record, drops everything
  after it, and records what was dropped (surfaced via
  :attr:`WriteAheadLog.dropped` and the store's ``wal_records_dropped``).

Durability is configurable per journal: ``"none"`` buffers appends in the
process (fastest; survives only a clean close), ``"flush"`` (default)
pushes every record to the OS (survives process death), ``"fsync"``
forces it to stable storage (survives power loss), optionally batched via
``group_fsync_interval``.

A checkpoint consolidates the journal's committed prefix — the net
surviving delta of every record up to transaction N — into one
checksummed file, after which the covered segments are deleted
(compaction) and recovery replays only post-checkpoint segments. The
manifest and checkpoint files are published with write-temp / fsync /
atomic-rename discipline, and recovery treats the *directory scan* as
authoritative (the manifest is an observability cache), so a crash
between any two steps of checkpoint publication recovers exactly the
committed-prefix state.

Transaction ids are assigned contiguously, one record per transaction, so
recovery can detect holes: a surviving record whose txn id skips past the
expected successor means an interior segment was lost, which no policy
tolerates.

``fault_hook``, when set, is called as ``hook(step, payload)`` at every
step boundary of the write path — ``append.start`` / ``append.write`` /
``append.flush`` / ``append.fsync``, ``rotate.seal``,
``checkpoint.write`` / ``checkpoint.sync`` / ``checkpoint.rename``,
``manifest.write`` / ``manifest.rename``, ``compact.unlink`` — and may
raise to simulate a crash or disk fault at exactly that point; this is
the seam the crash/disk-fault matrices drive.

Replay streams one record at a time: memory is bounded by the largest
single record, never the journal size, and ``max_record_bytes`` caps even
that so a corrupt length field cannot balloon the process.
"""

from __future__ import annotations

import json
import logging
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

from .crc import crc32c
from .errors import WalCorruptionError, WalError, WalWriteError

logger = logging.getLogger("repro.update.wal")

#: one journalled operation: ("+"/"-", subject key, predicate IRI, object key)
WalOp = tuple[str, str, str, str]

#: default ceiling on a single journal record (16 MiB) — far above any real
#: commit, low enough that a corrupt record cannot exhaust memory on replay
DEFAULT_MAX_RECORD_BYTES = 16 * 1024 * 1024

#: default segment rotation threshold
DEFAULT_SEGMENT_MAX_BYTES = 4 * 1024 * 1024

MANIFEST_NAME = "MANIFEST.json"
_RECORD_MAGIC = b"W1"
_CHECKPOINT_MAGIC = b"C1"
#: generous headroom over max_record_bytes for the frame header
_FRAME_OVERHEAD = 64

DURABILITY_LEVELS = ("none", "flush", "fsync")
RECOVERY_POLICIES = ("strict", "tolerate_tail")


def _segment_name(seq: int) -> str:
    return f"wal-{seq:08d}.seg"


def _checkpoint_name(txn: int) -> str:
    return f"checkpoint-{txn:08d}.ckpt"


def _frame(magic: bytes, payload: bytes) -> bytes:
    return b"%s %d %08x " % (magic, len(payload), crc32c(payload)) + payload + b"\n"


def _fsync_dir(path: Path) -> None:
    """Make a directory entry change (create/rename/unlink) durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform without dir fsync
        pass
    finally:
        os.close(fd)


# ------------------------------------------------------------------ metadata


@dataclass(frozen=True)
class DroppedRecord:
    """One discarded journal record, kept for observability."""

    segment: str  #: segment file path
    offset: int  #: byte offset where the bad data starts
    index: int  #: 1-based record number within the segment
    reason: str


@dataclass
class SegmentInfo:
    """Verified shape of one on-disk segment."""

    seq: int
    path: Path
    records: int = 0
    size: int = 0
    first_txn: int | None = None
    last_txn: int | None = None


@dataclass
class RecoveryInfo:
    """What the last open/replay saw — the checkpoint-bounding proof."""

    checkpoint_txn: int = 0
    checkpoint_ops: int = 0
    segment_records: int = 0  #: records replayed from segments
    records_skipped: int = 0  #: segment records covered by the checkpoint
    records_dropped: int = 0
    dropped: list[DroppedRecord] = field(default_factory=list)


@dataclass
class CheckpointInfo:
    """Result of one :meth:`WriteAheadLog.checkpoint` call."""

    txn: int  #: last transaction the checkpoint covers
    ops: int  #: consolidated operations it holds
    segments_removed: int
    path: str


@dataclass
class WalStatus:
    """Read-only health summary (see :func:`inspect_wal`)."""

    path: str
    format: str  #: "segmented-v1" | "legacy-v0" | "absent"
    segments: int = 0
    records: int = 0
    last_txn: int = 0
    checkpoint_txn: int = 0
    checkpoint_ops: int = 0
    tail_torn: bool = False
    ok: bool = True
    error: str | None = None


class _ScanProblem(Exception):
    """Internal: a segment scan hit a bad record.

    ``torn`` means an incomplete final line at EOF — the one shape of
    damage that is an expected crash footprint rather than corruption.
    """

    def __init__(self, offset: int, index: int, reason: str, torn: bool) -> None:
        super().__init__(reason)
        self.offset = offset
        self.index = index
        self.reason = reason
        self.torn = torn


@dataclass(frozen=True)
class _Record:
    txn: int
    ops: list[WalOp]
    offset: int
    index: int


# ----------------------------------------------------------------- scanning


def _parse_ops(raw: Any) -> list[WalOp]:
    ops = [(str(tag), str(s), str(p), str(o)) for tag, s, p, o in raw]
    for op in ops:
        if op[0] not in ("+", "-"):
            raise ValueError(f"unknown operation tag {op[0]!r}")
    return ops


def _read_frame(
    handle: Any, magic: bytes, max_record_bytes: int, offset: int, index: int
) -> bytes | None:
    """Read and verify one framed line; returns the payload bytes.

    Returns None at clean EOF; raises :class:`_ScanProblem` on damage.
    """
    cap = max_record_bytes + _FRAME_OVERHEAD
    line = handle.readline(cap + 1)
    if not line:
        return None
    if not line.endswith(b"\n"):
        rest = handle.read(1)
        if len(line) > cap or rest:
            raise _ScanProblem(
                offset, index,
                f"record exceeds max_record_bytes={max_record_bytes}",
                torn=False,
            )
        raise _ScanProblem(offset, index, "incomplete record at end of file",
                           torn=True)
    parts = line.split(b" ", 3)
    if len(parts) != 4 or parts[0] != magic:
        raise _ScanProblem(offset, index, "mangled record frame", torn=False)
    try:
        declared = int(parts[1])
        checksum = int(parts[2], 16)
    except ValueError:
        raise _ScanProblem(offset, index, "mangled record header",
                           torn=False) from None
    if declared > max_record_bytes:
        raise _ScanProblem(
            offset, index,
            f"record of {declared} bytes exceeds "
            f"max_record_bytes={max_record_bytes}",
            torn=False,
        )
    payload = parts[3][:-1]
    if len(payload) != declared:
        raise _ScanProblem(
            offset, index,
            f"record length mismatch (declared {declared}, "
            f"found {len(payload)})",
            torn=False,
        )
    if crc32c(payload) != checksum:
        raise _ScanProblem(
            offset, index,
            f"checksum mismatch (expected {checksum:08x}, "
            f"computed {crc32c(payload):08x})",
            torn=False,
        )
    return payload


class _SegmentScan:
    """Stream the verified records of one segment file.

    After iteration, ``problem`` holds the first damage hit (or None) and
    ``clean_bytes`` the offset where it starts (== file size when clean).
    """

    def __init__(self, path: Path, max_record_bytes: int) -> None:
        self.path = path
        self.max_record_bytes = max_record_bytes
        self.problem: _ScanProblem | None = None
        self.clean_bytes = 0
        self.count = 0

    def records(self) -> Iterator[_Record]:
        with open(self.path, "rb") as handle:
            offset = 0
            index = 0
            while True:
                index += 1
                try:
                    payload = _read_frame(
                        handle, _RECORD_MAGIC, self.max_record_bytes,
                        offset, index,
                    )
                except _ScanProblem as problem:
                    self.problem = problem
                    return
                if payload is None:
                    return
                try:
                    decoded = json.loads(payload)
                    record = _Record(
                        txn=int(decoded["txn"]),
                        ops=_parse_ops(decoded["ops"]),
                        offset=offset,
                        index=index,
                    )
                except (ValueError, KeyError, TypeError) as exc:
                    # The CRC matched, so this is a writer bug or hand
                    # edit, not bit rot — still damage, never a torn tail.
                    self.problem = _ScanProblem(
                        offset, index, f"undecodable record: {exc}", torn=False
                    )
                    return
                offset = handle.tell()
                self.clean_bytes = offset
                self.count += 1
                yield record


# ---------------------------------------------------------------- inspection


def inspect_wal(
    path: str | os.PathLike,
    max_record_bytes: int = DEFAULT_MAX_RECORD_BYTES,
) -> WalStatus:
    """Read-only health check: never repairs, never raises.

    Scans the full journal (legacy single-file or segmented layout),
    verifying every frame and checksum, and reports what it found — the
    engine behind ``repro wal info`` and backup verification.
    """
    target = Path(path)
    if not target.exists():
        return WalStatus(path=str(target), format="absent")
    if target.is_file():
        return _inspect_legacy(target, max_record_bytes)
    status = WalStatus(path=str(target), format="segmented-v1")
    ckpt_txn, ckpt_path, ckpt_ops, corrupt_ckpts = _find_checkpoint(
        target, max_record_bytes
    )
    status.checkpoint_txn = ckpt_txn
    status.checkpoint_ops = ckpt_ops
    if corrupt_ckpts and ckpt_path is None:
        status.ok = False
        status.error = f"corrupt checkpoint file {corrupt_ckpts[0].name}"
    last_txn = ckpt_txn
    for seg_path in _segment_paths(target):
        status.segments += 1
        scan = _SegmentScan(seg_path, max_record_bytes)
        for record in scan.records():
            status.records += 1
            last_txn = max(last_txn, record.txn)
        if scan.problem is not None:
            if scan.problem.torn:
                status.tail_torn = True
            else:
                status.ok = False
                status.error = (
                    f"{seg_path.name}: {scan.problem.reason} "
                    f"(offset {scan.problem.offset}, "
                    f"record {scan.problem.index})"
                )
                break
    status.last_txn = last_txn
    return status


def _inspect_legacy(path: Path, max_record_bytes: int) -> WalStatus:
    status = WalStatus(path=str(path), format="legacy-v0")
    try:
        for txn_id, _ops in _replay_legacy(path, max_record_bytes):
            status.records += 1
            status.last_txn = max(status.last_txn, txn_id)
    except WalError as exc:
        status.ok = False
        status.error = str(exc)
    return status


def _segment_paths(directory: Path) -> list[Path]:
    return sorted(directory.glob("wal-*.seg"))


def _checkpoint_paths(directory: Path) -> list[Path]:
    return sorted(directory.glob("checkpoint-*.ckpt"))


def _read_checkpoint(
    path: Path, max_record_bytes: int
) -> tuple[int, list[WalOp], dict[str, Any]]:
    """Verify and decode a checkpoint file: (txn, ops, meta)."""
    with open(path, "rb") as handle:
        try:
            payload = _read_frame(
                handle, _CHECKPOINT_MAGIC, max(max_record_bytes, 1 << 30), 0, 1
            )
        except _ScanProblem as problem:
            raise WalCorruptionError(
                f"corrupt checkpoint {path}: {problem.reason}",
                segment=str(path), offset=problem.offset, index=problem.index,
            ) from None
    if payload is None:
        raise WalCorruptionError(
            f"corrupt checkpoint {path}: empty file", segment=str(path)
        )
    try:
        decoded = json.loads(payload)
        return (
            int(decoded["txn"]),
            _parse_ops(decoded["ops"]),
            dict(decoded.get("meta", {})),
        )
    except (ValueError, KeyError, TypeError) as exc:
        raise WalCorruptionError(
            f"corrupt checkpoint {path}: {exc}", segment=str(path)
        ) from exc


def _find_checkpoint(
    directory: Path, max_record_bytes: int
) -> tuple[int, Path | None, int, list[Path]]:
    """The newest *valid* checkpoint, newest-first fallback.

    Falling back to an older valid checkpoint is always safe: segments it
    covers are only deleted after a newer checkpoint is fully durable, and
    replay's txn filter skips covered records — the transaction-sequence
    continuity check catches the one unrecoverable case (newest corrupt
    with its predecessors already compacted away).
    """
    corrupt: list[Path] = []
    for path in reversed(_checkpoint_paths(directory)):
        try:
            txn, ops, _meta = _read_checkpoint(path, max_record_bytes)
        except WalCorruptionError:
            corrupt.append(path)
            continue
        return txn, path, len(ops), corrupt
    return 0, None, 0, corrupt


# ------------------------------------------------------------- legacy format


def _replay_legacy(
    path: Path, max_record_bytes: int
) -> Iterator[tuple[int, list[WalOp]]]:
    """Replay a v0 journal: loose JSONL, no checksums, torn tail tolerated."""
    limit = max_record_bytes
    with open(path, "r", encoding="utf-8") as handle:
        index = 0
        while True:
            line = handle.readline(limit + 1)
            if not line:
                return
            index += 1
            if len(line) > limit and not line.endswith("\n"):
                raise WalError(
                    f"journal record at {path}:{index} exceeds "
                    f"max_record_bytes={limit}"
                )
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
                txn_id = int(record["txn"])
                ops = _parse_ops(record["ops"])
            except (ValueError, KeyError, TypeError) as exc:
                if _rest_is_blank(handle):
                    return  # torn tail: the crash the journal exists for
                raise WalCorruptionError(
                    f"corrupt journal record at {path}:{index}: {exc}",
                    segment=str(path), index=index,
                ) from exc
            yield txn_id, ops


def _rest_is_blank(handle: Any) -> bool:
    position = handle.tell()
    try:
        while True:
            chunk = handle.read(8192)
            if not chunk:
                return True
            if chunk.strip():
                return False
    finally:
        handle.seek(position)


# -------------------------------------------------------------------- journal


class WriteAheadLog:
    """A durable, replayable, checksummed journal rooted at ``path``.

    ``path`` is the journal *directory* (created on first use); a
    pre-existing v0 single-file journal at the same path is migrated into
    the segmented layout on open. ``sync=True`` is accepted for backward
    compatibility and means ``durability="fsync"``.

    ``checkpoint_every_bytes`` / ``checkpoint_every_records`` arm
    :meth:`should_checkpoint`, which the transaction layer consults after
    each commit to trigger automatic checkpoint + compaction.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        sync: bool = False,
        max_record_bytes: int = DEFAULT_MAX_RECORD_BYTES,
        fault_hook: Callable[[str, dict[str, Any]], None] | None = None,
        durability: str | None = None,
        recovery: str = "strict",
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
        checkpoint_every_bytes: int | None = None,
        checkpoint_every_records: int | None = None,
        group_fsync_interval: int = 1,
    ) -> None:
        self.path = Path(path)
        if durability is None:
            durability = "fsync" if sync else "flush"
        if durability not in DURABILITY_LEVELS:
            raise ValueError(
                f"unknown durability {durability!r} (use one of "
                f"{'/'.join(DURABILITY_LEVELS)})"
            )
        if recovery not in RECOVERY_POLICIES:
            raise ValueError(
                f"unknown recovery policy {recovery!r} (use one of "
                f"{'/'.join(RECOVERY_POLICIES)})"
            )
        if group_fsync_interval < 1:
            raise ValueError("group_fsync_interval must be >= 1")
        self.durability = durability
        self.sync = durability == "fsync"  # legacy-compatible alias
        self.recovery = recovery
        self.max_record_bytes = max_record_bytes
        self.segment_max_bytes = segment_max_bytes
        self.checkpoint_every_bytes = checkpoint_every_bytes
        self.checkpoint_every_records = checkpoint_every_records
        self.group_fsync_interval = group_fsync_interval
        self.fault_hook = fault_hook

        self._next_txn = 1
        self._segments: list[SegmentInfo] = []
        self._checkpoint_txn = 0
        self._checkpoint_path: Path | None = None
        self._checkpoint_ops = 0
        self._handle: Any = None
        self._unsynced_appends = 0
        #: every record discarded by recovery, in discovery order
        self.dropped: list[DroppedRecord] = []
        self.last_recovery = RecoveryInfo()
        # Recovery is not a fault-injection surface (the matrices damage
        # files directly); the hook sees only steady-state write steps.
        hook, self.fault_hook = self.fault_hook, None
        try:
            self._open_journal()
        finally:
            self.fault_hook = hook

    # ----------------------------------------------------------- properties

    @property
    def last_txn(self) -> int:
        """Id of the most recently committed transaction (0 when empty)."""
        return self._next_txn - 1

    @property
    def checkpoint_txn(self) -> int:
        """Last transaction covered by the active checkpoint (0 = none)."""
        return self._checkpoint_txn

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def record_count(self) -> int:
        """Records currently held in segments (post-checkpoint)."""
        return sum(seg.records for seg in self._segments)

    @property
    def records_dropped(self) -> int:
        return len(self.dropped)

    # ----------------------------------------------------------------- hooks

    def _fire(self, step: str, **payload: Any) -> None:
        if self.fault_hook is not None:
            self.fault_hook(step, payload)

    # ------------------------------------------------------------------ open

    def _open_journal(self) -> None:
        self._maybe_finish_migration()
        if self.path.exists() and self.path.is_file():
            self._migrate_legacy()
        self.path.mkdir(parents=True, exist_ok=True)
        for stale in self.path.glob("*.tmp"):
            stale.unlink()  # unpublished writes from a crashed process
        ckpt_txn, ckpt_path, ckpt_ops, corrupt_ckpts = _find_checkpoint(
            self.path, self.max_record_bytes
        )
        if corrupt_ckpts and ckpt_path is None and _checkpoint_paths(self.path):
            raise WalCorruptionError(
                f"no readable checkpoint in {self.path} "
                f"(all {len(corrupt_ckpts)} candidate(s) corrupt)",
                segment=str(corrupt_ckpts[0]),
            )
        for path in corrupt_ckpts:
            logger.warning(
                "journal %s: ignoring corrupt checkpoint %s "
                "(recovered from an older one)", self.path, path.name,
            )
        self._checkpoint_txn = ckpt_txn
        self._checkpoint_path = ckpt_path
        self._checkpoint_ops = ckpt_ops
        self._scan_segments(repair=True)
        if not (self.path / MANIFEST_NAME).exists():
            self._write_manifest()

    def _scan_segments(self, repair: bool) -> None:
        """Verify every segment, repairing torn tails and applying the
        recovery policy to real damage; rebuilds the in-memory layout."""
        self._segments = []
        info = RecoveryInfo(
            checkpoint_txn=self._checkpoint_txn,
            checkpoint_ops=self._checkpoint_ops,
        )
        expected = self._checkpoint_txn
        paths = _segment_paths(self.path)
        stop = False
        for position, seg_path in enumerate(paths):
            is_last = position == len(paths) - 1
            seq = int(seg_path.name[len("wal-"):-len(".seg")])
            segment = SegmentInfo(seq=seq, path=seg_path)
            scan = _SegmentScan(seg_path, self.max_record_bytes)
            for record in scan.records():
                if record.txn > expected + 1:
                    raise WalCorruptionError(
                        f"journal {self.path} is missing transactions "
                        f"{expected + 1}..{record.txn - 1} (found txn "
                        f"{record.txn} in {seg_path.name} after "
                        f"txn {expected})",
                        segment=str(seg_path),
                        offset=record.offset, index=record.index,
                    )
                expected = max(expected, record.txn)
                if record.txn <= self._checkpoint_txn:
                    info.records_skipped += 1
                else:
                    info.segment_records += 1
                segment.records += 1
                if segment.first_txn is None:
                    segment.first_txn = record.txn
                segment.last_txn = record.txn
            segment.size = scan.clean_bytes
            problem = scan.problem
            if problem is not None:
                tolerable = problem.torn and is_last
                if not tolerable and self.recovery == "strict":
                    raise WalCorruptionError(
                        f"corrupt journal record in {seg_path} at offset "
                        f"{problem.offset} (record {problem.index}): "
                        f"{problem.reason}",
                        segment=str(seg_path),
                        offset=problem.offset, index=problem.index,
                    )
                self._drop(info, seg_path, problem, repair)
                if not tolerable:
                    # tolerate_tail: everything after the damage goes too.
                    for later in paths[position + 1:]:
                        self._drop_segment(info, later, repair)
                    stop = True
            self._segments.append(segment)
            if stop:
                break
        self._next_txn = expected + 1
        self.last_recovery = info

    def _drop(
        self, info: RecoveryInfo, seg_path: Path,
        problem: _ScanProblem, repair: bool,
    ) -> None:
        """Truncate a segment at its first bad record, recording the drop."""
        dropped = DroppedRecord(
            segment=str(seg_path), offset=problem.offset,
            index=problem.index, reason=problem.reason,
        )
        logger.warning(
            "journal %s: dropping record %d at offset %d (%s)%s",
            seg_path, problem.index, problem.offset, problem.reason,
            "" if repair else " [read-only pass]",
        )
        self.dropped.append(dropped)
        info.dropped.append(dropped)
        info.records_dropped += 1
        if repair:
            with open(seg_path, "rb+") as handle:
                handle.truncate(problem.offset)

    def _drop_segment(
        self, info: RecoveryInfo, seg_path: Path, repair: bool
    ) -> None:
        """Drop a whole segment that follows damage (tolerate_tail only)."""
        scan = _SegmentScan(seg_path, self.max_record_bytes)
        count = sum(1 for _ in scan.records())
        dropped = DroppedRecord(
            segment=str(seg_path), offset=0, index=1,
            reason="follows a corrupt segment",
        )
        logger.warning(
            "journal %s: dropping whole segment (%d readable record(s)) "
            "because an earlier segment is corrupt", seg_path, count,
        )
        self.dropped.append(dropped)
        info.dropped.append(dropped)
        info.records_dropped += max(count, 1)
        if repair:
            seg_path.rename(seg_path.with_suffix(".seg.dropped"))

    # ------------------------------------------------------------- migration

    def _migration_marker(self) -> Path:
        return self.path.with_name(self.path.name + ".migrating")

    def _maybe_finish_migration(self) -> None:
        """A crash mid-migration leaves the original at ``*.migrating`` —
        throw away the partial directory and redo from the original."""
        marker = self._migration_marker()
        if not marker.exists():
            return
        if self.path.is_dir():
            shutil.rmtree(self.path)
        os.replace(marker, self.path)

    def _migrate_legacy(self) -> None:
        """Convert a v0 single-file journal into the segmented layout."""
        records = list(_replay_legacy(self.path, self.max_record_bytes))
        marker = self._migration_marker()
        os.replace(self.path, marker)
        self.path.mkdir()
        if records:
            seg_path = self.path / _segment_name(1)
            with open(seg_path, "wb") as handle:
                for txn_id, ops in records:
                    payload = json.dumps(
                        {"txn": txn_id, "ops": [list(op) for op in ops]},
                        separators=(",", ":"),
                    ).encode("utf-8")
                    handle.write(_frame(_RECORD_MAGIC, payload))
                handle.flush()
                os.fsync(handle.fileno())
        _fsync_dir(self.path)
        marker.unlink()
        logger.info(
            "journal %s: migrated %d legacy record(s) to the segmented "
            "layout", self.path, len(records),
        )

    # -------------------------------------------------------------- manifest

    def _write_manifest(self) -> None:
        """Publish the layout summary via write-temp / fsync / rename.

        The manifest is an observability cache — recovery trusts the
        directory scan — so a crash between these steps costs nothing.
        """
        manifest = {
            "version": 1,
            "segments": [
                {
                    "name": seg.path.name,
                    "records": seg.records,
                    "first_txn": seg.first_txn,
                    "last_txn": seg.last_txn,
                }
                for seg in self._segments
            ],
            "checkpoint": (
                {
                    "file": self._checkpoint_path.name,
                    "txn": self._checkpoint_txn,
                    "ops": self._checkpoint_ops,
                }
                if self._checkpoint_path is not None
                else None
            ),
            "last_txn": self.last_txn,
        }
        target = self.path / MANIFEST_NAME
        tmp = self.path / (MANIFEST_NAME + ".tmp")
        self._fire("manifest.write", path=str(tmp))
        with open(tmp, "wb") as handle:
            handle.write(json.dumps(manifest, indent=1).encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())
        self._fire("manifest.rename", path=str(target))
        os.replace(tmp, target)
        _fsync_dir(self.path)

    def manifest(self) -> dict[str, Any] | None:
        """The on-disk manifest document (None when unreadable)."""
        try:
            raw = (self.path / MANIFEST_NAME).read_bytes()
            return json.loads(raw)
        except (OSError, ValueError):
            return None

    # ------------------------------------------------------------- appending

    def _active_segment(self) -> SegmentInfo:
        if self._segments and self._segments[-1].size < self.segment_max_bytes:
            return self._segments[-1]
        seq = self._segments[-1].seq + 1 if self._segments else 1
        segment = SegmentInfo(seq=seq, path=self.path / _segment_name(seq))
        # No fault-hook step here: a crash with the file created but the
        # record unwritten is indistinguishable from one at append.start.
        with open(segment.path, "wb"):
            pass
        _fsync_dir(self.path)
        self._segments.append(segment)
        return segment

    def _segment_handle(self, segment: SegmentInfo) -> Any:
        if self._handle is not None and self._handle.name == str(segment.path):
            return self._handle
        self._close_handle()
        # "none" buffers appends in the process; the durable levels write
        # straight through so a record is OS-durable the moment the write
        # returns (the crash matrix's append.flush expectation).
        buffering = -1 if self.durability == "none" else 0
        self._handle = open(segment.path, "ab", buffering=buffering)
        return self._handle

    def _close_handle(self) -> None:
        if self._handle is None:
            return
        try:
            self._handle.close()
        finally:
            self._handle = None

    def append(self, ops: Sequence[WalOp]) -> int:
        """Journal one committed transaction; returns its id.

        On a disk fault (ENOSPC, I/O error, failed fsync) the partial
        record is truncated away and :class:`WalWriteError` raised — the
        journal stays valid and holds exactly the committed prefix.
        """
        txn_id = self._next_txn
        payload = json.dumps(
            {"txn": txn_id, "ops": [list(op) for op in ops]},
            separators=(",", ":"),
        ).encode("utf-8")
        if len(payload) > self.max_record_bytes:
            raise WalWriteError(
                f"refusing to journal a {len(payload)}-byte record "
                f"(max_record_bytes={self.max_record_bytes})"
            )
        data = _frame(_RECORD_MAGIC, payload)
        self._fire("append.start", txn=txn_id)
        segment = self._active_segment()
        handle = self._segment_handle(segment)
        offset = segment.size
        try:
            self._fire(
                "append.write", txn=txn_id, data=data, handle=handle,
                offset=offset,
            )
            handle.write(data)
            if self.durability != "none":
                self._fire("append.flush", txn=txn_id)
                handle.flush()
            if self.durability == "fsync":
                self._unsynced_appends += 1
                if self._unsynced_appends >= self.group_fsync_interval:
                    self._fire(
                        "append.fsync", txn=txn_id, data=data, handle=handle,
                        offset=offset,
                    )
                    os.fsync(handle.fileno())
                    self._unsynced_appends = 0
        except OSError as exc:
            self._unwind_partial_append(handle, offset)
            raise WalWriteError(
                f"journal append for txn {txn_id} failed: {exc}"
            ) from exc
        segment.size = offset + len(data)
        segment.records += 1
        if segment.first_txn is None:
            segment.first_txn = txn_id
        segment.last_txn = txn_id
        self._next_txn = txn_id + 1
        if segment.size >= self.segment_max_bytes:
            self._rotate()
        return txn_id

    def _unwind_partial_append(self, handle: Any, offset: int) -> None:
        """Erase whatever prefix of a failed append reached the file."""
        try:
            try:
                handle.flush()
            except OSError:
                pass
            os.ftruncate(handle.fileno(), offset)
        except OSError:  # pragma: no cover - second fault while unwinding
            logger.exception(
                "journal %s: could not truncate a failed append; the tail "
                "will be dropped as torn on the next open", self.path,
            )

    def _rotate(self) -> None:
        """Seal the active segment; the next append opens a fresh one."""
        self._fire("rotate.seal", segment=self._segments[-1].path.name)
        try:
            if self._handle is not None:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            self._close_handle()
            self._write_manifest()
        except OSError as exc:
            # Rotation is advisory — the record is already durable, so a
            # fault here must not fail the commit that triggered it.
            logger.warning("journal %s: segment rotation failed: %s",
                           self.path, exc)

    # ---------------------------------------------------------------- replay

    def replay(self) -> Iterator[tuple[int, list[WalOp]]]:
        """Yield ``(txn_id, ops)`` for the whole committed history.

        The checkpoint (if any) comes first as one consolidated entry,
        then every post-checkpoint record in commit order. Streams one
        record at a time; calling it again re-reads from disk and yields
        the same history (replay is idempotent).
        """
        if self._checkpoint_path is not None:
            txn, ops, _meta = _read_checkpoint(
                self._checkpoint_path, self.max_record_bytes
            )
            yield txn, ops
        for segment in list(self._segments):
            scan = _SegmentScan(segment.path, self.max_record_bytes)
            for record in scan.records():
                if record.txn <= self._checkpoint_txn:
                    continue
                yield record.txn, record.ops
            problem = scan.problem
            if problem is not None and not problem.torn:
                # Damage that appeared after the open-time repair pass.
                raise WalCorruptionError(
                    f"corrupt journal record in {segment.path} at offset "
                    f"{problem.offset} (record {problem.index}): "
                    f"{problem.reason}",
                    segment=str(segment.path),
                    offset=problem.offset, index=problem.index,
                )

    # ------------------------------------------------------------ durability

    def flush(self) -> None:
        """Push buffered appends to the OS (a no-op at durable levels)."""
        if self._handle is not None:
            self._handle.flush()

    def sync_to_disk(self) -> None:
        """Force everything appended so far onto stable storage."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._unsynced_appends = 0

    def close(self) -> None:
        """Flush, fsync, and release the active segment handle."""
        if self._handle is not None:
            try:
                self.sync_to_disk()
            finally:
                self._close_handle()

    # ------------------------------------------------------------ checkpoint

    def should_checkpoint(self) -> bool:
        """True when the auto-checkpoint policy says it is time."""
        if self.checkpoint_every_records is not None:
            if self.record_count >= self.checkpoint_every_records:
                return True
        if self.checkpoint_every_bytes is not None:
            if sum(seg.size for seg in self._segments) >= self.checkpoint_every_bytes:
                return True
        return False

    def checkpoint(self, meta: dict[str, Any] | None = None) -> CheckpointInfo:
        """Consolidate the committed prefix and compact covered segments.

        The net surviving delta of the old checkpoint plus every segment
        record is written to a new checksummed checkpoint file
        (write-temp, fsync, atomic rename), the manifest is republished,
        and only then are the covered segments and the superseded
        checkpoint deleted. Every step is crash-safe: recovery is scan-
        based and filters replay by the checkpoint's transaction id, so a
        kill between any two steps still recovers the exact committed
        state. The caller must hold the store's writer bracket (no
        concurrent commits).
        """
        last = self.last_txn
        if last <= 0:
            return CheckpointInfo(txn=0, ops=0, segments_removed=0, path="")
        net: dict[tuple[str, str, str], str] = {}
        for _txn, ops in self.replay():
            for tag, s, p, o in ops:
                net[(s, p, o)] = tag
        ops_out = [[tag, s, p, o] for (s, p, o), tag in net.items()]
        payload = json.dumps(
            {"txn": last, "ops": ops_out, "meta": meta or {}},
            separators=(",", ":"),
        ).encode("utf-8")

        target = self.path / _checkpoint_name(last)
        tmp = self.path / (_checkpoint_name(last) + ".tmp")
        self._fire("checkpoint.write", txn=last, path=str(tmp))
        with open(tmp, "wb") as handle:
            handle.write(_frame(_CHECKPOINT_MAGIC, payload))
            handle.flush()
            self._fire("checkpoint.sync", txn=last)
            os.fsync(handle.fileno())
        self._fire("checkpoint.rename", txn=last, path=str(target))
        os.replace(tmp, target)
        _fsync_dir(self.path)

        old_segments = self._segments
        old_checkpoint = self._checkpoint_path
        self._close_handle()
        self._segments = []
        self._checkpoint_txn = last
        self._checkpoint_path = target
        self._checkpoint_ops = len(ops_out)
        self._write_manifest()

        removed = 0
        for segment in old_segments:
            self._fire("compact.unlink", segment=segment.path.name)
            segment.path.unlink()
            removed += 1
        if old_checkpoint is not None and old_checkpoint != target:
            self._fire("compact.unlink", segment=old_checkpoint.name)
            old_checkpoint.unlink()
        _fsync_dir(self.path)
        logger.info(
            "journal %s: checkpoint at txn %d (%d op(s)), removed %d "
            "segment(s)", self.path, last, len(ops_out), removed,
        )
        return CheckpointInfo(
            txn=last, ops=len(ops_out), segments_removed=removed,
            path=str(target),
        )

    # ---------------------------------------------------------------- backup

    def backup_to(self, dest: str | os.PathLike) -> WalStatus:
        """Copy the journal into ``dest`` and verify the copy's checksums.

        The caller must hold the store's writer lock so no commit mutates
        the layout mid-copy; concurrent *readers* are unaffected. The
        manifest is copied last, after the data files it summarizes.
        Returns the verified :class:`WalStatus` of the copy; raises
        :class:`WalCorruptionError` if the copy fails verification.
        """
        target = Path(dest)
        target.mkdir(parents=True, exist_ok=True)
        if any(target.iterdir()):
            raise WalError(f"backup destination {target} is not empty")
        self.sync_to_disk()
        if self._checkpoint_path is not None:
            shutil.copyfile(
                self._checkpoint_path, target / self._checkpoint_path.name
            )
        for segment in self._segments:
            shutil.copyfile(segment.path, target / segment.path.name)
        manifest = self.path / MANIFEST_NAME
        if manifest.exists():
            shutil.copyfile(manifest, target / MANIFEST_NAME)
        _fsync_dir(target)
        status = inspect_wal(target, self.max_record_bytes)
        if not status.ok:
            raise WalCorruptionError(
                f"backup verification failed: {status.error}",
                segment=status.error,
            )
        return status
