"""An append-only write-ahead journal of committed transactions.

The journal is a commit log, not a redo-before-write log: a transaction's
net delta is appended in one line *at commit time*, after the in-memory
apply succeeded. A store reopened against the same path replays every
committed record to reconstruct its write history; anything that never
reached ``append`` simply never happened, which is exactly the rollback
semantics the transaction layer promises.

Format: one JSON object per line —

    {"txn": 3, "ops": [["+", "<s-key>", "<p-iri>", "<o-key>"], ...]}

Terms are serialized with :func:`~repro.rdf.terms.term_key` (URIs bare,
literals in N3), the same canonical encoding the dictionary tables and
cross-engine comparisons use. A torn *final* line — the footprint of a
crash mid-append — is tolerated and ignored on replay; a corrupt interior
record means real damage and raises :class:`~repro.update.errors.WalError`.

Replay streams the journal record by record: memory is bounded by the
largest single record, never the journal size, and ``max_record_bytes``
caps even that so a corrupt length cannot balloon the process.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

from .errors import WalError

#: one journalled operation: ("+"/"-", subject key, predicate IRI, object key)
WalOp = tuple[str, str, str, str]

#: default ceiling on a single journal record (16 MiB) — far above any real
#: commit, low enough that a corrupt record cannot exhaust memory on replay
DEFAULT_MAX_RECORD_BYTES = 16 * 1024 * 1024


class WriteAheadLog:
    """A durable, replayable journal at ``path``.

    ``sync=True`` adds an ``fsync`` per append for true crash durability;
    the default flushes only, which survives process death but not power
    loss — the right trade for tests and benchmarks.

    ``fault_hook``, when set, is called as ``hook(step, payload)`` at each
    append step boundary (``append.start`` / ``append.write`` /
    ``append.flush`` / ``append.fsync``) and may raise to simulate a crash
    at exactly that point — the seam the crash-consistency harness drives.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        sync: bool = False,
        max_record_bytes: int = DEFAULT_MAX_RECORD_BYTES,
        fault_hook: Callable[[str, dict[str, Any]], None] | None = None,
    ) -> None:
        self.path = Path(path)
        self.sync = sync
        self.max_record_bytes = max_record_bytes
        self.fault_hook = fault_hook
        self._next_txn = 1
        if self.path.exists():
            for txn_id, _ in self.replay():
                self._next_txn = txn_id + 1

    def _fire(self, step: str, **payload: Any) -> None:
        if self.fault_hook is not None:
            self.fault_hook(step, payload)

    def append(self, ops: Sequence[WalOp]) -> int:
        """Journal one committed transaction; returns its id."""
        txn_id = self._next_txn
        record = json.dumps(
            {"txn": txn_id, "ops": [list(op) for op in ops]},
            separators=(",", ":"),
        )
        data = record + "\n"
        self._fire("append.start", txn=txn_id)
        with open(self.path, "a", encoding="utf-8") as handle:
            self._fire("append.write", txn=txn_id, data=data, handle=handle)
            handle.write(data)
            self._fire("append.flush", txn=txn_id)
            handle.flush()
            if self.sync:
                self._fire("append.fsync", txn=txn_id)
                os.fsync(handle.fileno())
        self._next_txn = txn_id + 1
        return txn_id

    def replay(self) -> Iterator[tuple[int, list[WalOp]]]:
        """Yield ``(txn_id, ops)`` for every committed record, in order.

        Streams one line at a time — the journal is never read whole into
        memory — and refuses any record longer than ``max_record_bytes``.
        """
        if not self.path.exists():
            return
        limit = self.max_record_bytes
        with open(self.path, "r", encoding="utf-8") as handle:
            index = 0
            while True:
                # readline with a cap: a line that comes back longer than
                # the limit (no newline within it) is an oversized record.
                line = handle.readline(limit + 1)
                if not line:
                    return
                index += 1
                if len(line) > limit and not line.endswith("\n"):
                    raise WalError(
                        f"journal record at {self.path}:{index} exceeds "
                        f"max_record_bytes={limit}"
                    )
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    record = json.loads(stripped)
                    txn_id = record["txn"]
                    ops = [
                        (str(tag), str(s), str(p), str(o))
                        for tag, s, p, o in record["ops"]
                    ]
                except (ValueError, KeyError, TypeError) as exc:
                    if self._rest_is_blank(handle):
                        return  # torn tail: the crash the journal exists for
                    raise WalError(
                        f"corrupt journal record at {self.path}:{index}: {exc}"
                    ) from exc
                for op in ops:
                    if op[0] not in ("+", "-"):
                        raise WalError(
                            f"unknown operation tag {op[0]!r} "
                            f"at {self.path}:{index}"
                        )
                yield txn_id, ops

    @staticmethod
    def _rest_is_blank(handle: Any) -> bool:
        """True when nothing but whitespace follows the current position —
        i.e. the record just rejected was the journal's final line."""
        position = handle.tell()
        try:
            while True:
                chunk = handle.read(8192)
                if not chunk:
                    return True
                if chunk.strip():
                    return False
        finally:
            handle.seek(position)
