"""The SPARQL 1.1 Update subsystem: the store's transactional write path.

Reads and writes share one pipeline: the WHERE clause of ``DELETE WHERE``
and ``DELETE ... INSERT ... WHERE`` compiles through the same dataflow /
planbuilder / translator stages as SELECT queries. On top of that sit the
pieces a real write path needs:

* :mod:`repro.update.parser` — grammar + AST for ``INSERT DATA``,
  ``DELETE DATA``, ``DELETE WHERE`` and ``DELETE ... INSERT ... WHERE``;
* :mod:`repro.update.transaction` — atomic batches with an undo log and
  group commit (the stats epoch bumps once per transaction, so cached
  plans survive until commit);
* :mod:`repro.update.wal` — a checksummed, segmented journal of committed
  deltas (durable checkpoints, compaction, corruption-aware recovery)
  that a reopened store replays for crash recovery;
* :mod:`repro.update.apply` — the executor mapping update operations onto
  any store-like target (the DB2RDF store and the native-memory baseline
  share it, so differential testing covers writes).
"""

from .apply import UpdateResult, apply_update
from .ast import (
    DeleteData,
    DeleteWhere,
    InsertData,
    Modify,
    UpdateOperation,
    UpdateRequest,
)
from .errors import (
    TransactionError,
    UpdateError,
    UpdateSyntaxError,
    WalCorruptionError,
    WalError,
    WalWriteError,
)
from .parser import parse_update
from .transaction import Transaction
from .wal import CheckpointInfo, WalStatus, WriteAheadLog, inspect_wal

__all__ = [
    "CheckpointInfo",
    "DeleteData",
    "DeleteWhere",
    "InsertData",
    "Modify",
    "Transaction",
    "TransactionError",
    "UpdateError",
    "UpdateOperation",
    "UpdateRequest",
    "UpdateResult",
    "UpdateSyntaxError",
    "WalCorruptionError",
    "WalError",
    "WalStatus",
    "WalWriteError",
    "WriteAheadLog",
    "apply_update",
    "inspect_wal",
    "parse_update",
]
