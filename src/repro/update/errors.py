"""Errors raised by the write path.

``UpdateSyntaxError`` inherits from both :class:`~repro.core.errors.
StoreError` (the repro hierarchy) and :class:`~repro.sparql.parser.
SparqlSyntaxError` (itself a ``ValueError``), so callers can catch
malformed updates at whichever level they already handle.
"""

from __future__ import annotations

from ..core.errors import StoreError
from ..sparql.parser import SparqlSyntaxError


class UpdateError(StoreError):
    """Base class for write-path failures."""


class UpdateSyntaxError(UpdateError, SparqlSyntaxError):
    """Malformed SPARQL Update text (variable in a DATA block, unterminated
    quad block, unknown operation, ...)."""


class TransactionError(UpdateError):
    """Invalid transaction usage: nesting, reuse after commit/rollback,
    attaching a journal mid-transaction."""


class WalError(UpdateError):
    """The write-ahead journal is unreadable (corrupt interior record or
    unknown operation tag). A torn *final* line is tolerated silently — it
    is the expected shape of a crash mid-append."""
