"""Errors raised by the write path.

``UpdateSyntaxError`` inherits from both :class:`~repro.core.errors.
StoreError` (the repro hierarchy) and :class:`~repro.sparql.parser.
SparqlSyntaxError` (itself a ``ValueError``), so callers can catch
malformed updates at whichever level they already handle.
"""

from __future__ import annotations

from ..core.errors import StoreError
from ..sparql.parser import SparqlSyntaxError


class UpdateError(StoreError):
    """Base class for write-path failures."""


class UpdateSyntaxError(UpdateError, SparqlSyntaxError):
    """Malformed SPARQL Update text (variable in a DATA block, unterminated
    quad block, unknown operation, ...)."""


class TransactionError(UpdateError):
    """Invalid transaction usage: nesting, reuse after commit/rollback,
    attaching a journal mid-transaction."""


class WalError(UpdateError):
    """Base class for write-ahead-journal failures (corruption, failed
    writes, unusable layout). A torn *final* record is not an error — it
    is the expected footprint of a crash mid-append and is truncated (with
    a logged warning) on recovery."""


class WalCorruptionError(WalError):
    """The journal holds damage that is not a torn tail: a checksum
    mismatch, a mangled frame, or a gap in the committed-transaction
    sequence. Carries the location so operators can find the damage:
    ``segment`` (file path), ``offset`` (byte offset of the bad record),
    and ``index`` (1-based record number within that segment); any of the
    three may be None when the damage is structural (e.g. a missing
    segment rather than a bad record)."""

    def __init__(
        self,
        message: str,
        segment: str | None = None,
        offset: int | None = None,
        index: int | None = None,
    ) -> None:
        super().__init__(message)
        self.segment = segment
        self.offset = offset
        self.index = index


class WalWriteError(WalError):
    """Appending to the journal failed (disk full, I/O error, failed
    fsync). The partial record is truncated away before this is raised,
    so the journal stays valid; the transaction layer reacts by unwinding
    its in-memory effects — the commit never happened."""

