"""A recursive-descent parser for the SPARQL 1.1 Update subset:
``INSERT DATA``, ``DELETE DATA``, ``DELETE WHERE``, and
``DELETE ... INSERT ... WHERE``, with ``;``-separated sequences and the
shared PREFIX/BASE prologue.

It extends the query parser's machinery (tokenizer, term and group
productions), so templates and WHERE clauses accept exactly the syntax
queries do. ``INSERT``/``DELETE``/``DATA`` are *not* reserved words in the
query grammar; they are matched case-insensitively against plain NAME
tokens here so the query tokenizer stays untouched.
"""

from __future__ import annotations

from ..rdf.terms import BNode, Literal, Triple, URI
from ..sparql.ast import GroupPattern, TriplePattern, Var
from ..sparql.parser import SparqlSyntaxError, _Parser
from .ast import (
    DeleteData,
    DeleteWhere,
    InsertData,
    Modify,
    UpdateRequest,
)
from .errors import UpdateSyntaxError


class _UpdateParser(_Parser):
    # ------------------------------------------------------ word matching

    def _at_word(self, word: str) -> bool:
        token = self.current
        return token.kind in ("NAME", "KEYWORD") and token.text.upper() == word

    def _accept_word(self, word: str) -> bool:
        if self._at_word(word):
            self.advance()
            return True
        return False

    def _expect_word(self, word: str) -> None:
        if not self._accept_word(word):
            raise UpdateSyntaxError(f"expected {word}, found {self.current}")

    # ------------------------------------------------------------ request

    def parse_request(self) -> UpdateRequest:
        self._parse_prologue()
        operations = [self._parse_operation()]
        while self.accept("OP", ";"):
            if self.current.kind == "EOF":
                break  # trailing separator
            self._parse_prologue()  # each operation may add prefixes
            operations.append(self._parse_operation())
        if self.current.kind != "EOF":
            raise UpdateSyntaxError(f"trailing tokens: {self.current}")
        return UpdateRequest(operations)

    def _parse_operation(self):
        if self._accept_word("INSERT"):
            if self._accept_word("DATA"):
                return InsertData(self._parse_ground_block("INSERT DATA"))
            templates = self._parse_template_block("INSERT")
            self._expect_word("WHERE")
            return Modify((), templates, self._parse_group())
        if self._accept_word("DELETE"):
            if self._accept_word("DATA"):
                return DeleteData(self._parse_ground_block("DELETE DATA"))
            if self._at_word("WHERE"):
                self.advance()
                pattern = self._parse_group()
                self._check_template_pattern(pattern, "DELETE WHERE")
                return DeleteWhere(pattern)
            deletes = self._parse_template_block("DELETE")
            inserts: tuple[TriplePattern, ...] = ()
            if self._accept_word("INSERT"):
                inserts = self._parse_template_block("INSERT")
            self._expect_word("WHERE")
            return Modify(deletes, inserts, self._parse_group())
        raise UpdateSyntaxError(
            f"expected an update operation (INSERT or DELETE), "
            f"found {self.current}"
        )

    # ------------------------------------------------------------- blocks

    def _parse_template_block(self, context: str) -> tuple[TriplePattern, ...]:
        """A ``{ triples }`` template: triple patterns only — no FILTER,
        OPTIONAL, UNION, or nested groups."""
        group = self._parse_group()
        self._check_template_pattern(group, context)
        return tuple(group.elements)

    def _check_template_pattern(self, group: GroupPattern, context: str) -> None:
        if group.filters:
            raise UpdateSyntaxError(
                f"{context} templates cannot contain FILTER expressions"
            )
        for element in group.elements:
            if not isinstance(element, TriplePattern):
                raise UpdateSyntaxError(
                    f"{context} templates allow only triple patterns, "
                    f"found {type(element).__name__}"
                )

    def _parse_ground_block(self, context: str) -> tuple[Triple, ...]:
        """A ``{ triples }`` block of *ground* triples (no variables)."""
        templates = self._parse_template_block(context)
        triples = []
        for pattern in templates:
            for position, role in (
                (pattern.subject, "subject"),
                (pattern.predicate, "predicate"),
                (pattern.object, "object"),
            ):
                if isinstance(position, Var):
                    raise UpdateSyntaxError(
                        f"{context} requires ground triples; "
                        f"found variable ?{position.name} in {role} position"
                    )
            if isinstance(pattern.subject, Literal):
                raise UpdateSyntaxError(
                    f"{context}: a literal cannot be a subject "
                    f"({pattern.subject.n3()})"
                )
            assert isinstance(pattern.predicate, URI)
            assert isinstance(pattern.subject, (URI, BNode))
            triples.append(
                Triple(pattern.subject, pattern.predicate, pattern.object)
            )
        return tuple(triples)


def parse_update(text: str) -> UpdateRequest:
    """Parse a SPARQL Update string into an :class:`UpdateRequest`.

    All syntax failures raise :class:`~repro.update.errors.
    UpdateSyntaxError` (a :class:`~repro.core.errors.StoreError` *and* a
    ``ValueError``), including those detected by the shared query-grammar
    productions.
    """
    try:
        return _UpdateParser(text).parse_request()
    except UpdateSyntaxError:
        raise
    except SparqlSyntaxError as exc:
        raise UpdateSyntaxError(str(exc)) from exc
