"""Atomic write batches with an undo log and group commit.

The transaction applies writes to the store *eagerly* — each ``add`` /
``remove`` lands in the DPH/DS/RPH/RS tables immediately, so WHERE
clauses of later operations in the same request see earlier effects —
while recording an undo entry per effective change. ``rollback`` replays
the undo log in reverse; ``commit`` journals the net delta to the WAL (if
one is attached) and bumps the statistics epoch exactly once, which is
what lets cached query plans stay warm across a thousand-triple batch
instead of being invalidated a thousand times.

A transaction that changed nothing commits without bumping the epoch at
all: failed deletes and duplicate inserts keep the plan cache warm.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING

from ..rdf.terms import Triple, term_key
from ..sparql.ast import SelectQuery
from ..sparql.results import SelectResult
from .errors import TransactionError, WalError
from .wal import WalOp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.store import RdfStore

logger = logging.getLogger("repro.update.transaction")


class Transaction:
    """One atomic batch of writes against an :class:`RdfStore`.

    Created via :meth:`RdfStore.transaction`; usable as a context manager
    (commit on clean exit, rollback on exception) or driven manually::

        with store.transaction() as txn:
            txn.add(triple)
            txn.remove(other)
        # committed: epoch bumped once, delta journalled

    Also a valid :class:`~repro.update.apply.WriteTarget`, so
    :func:`~repro.update.apply.apply_update` can execute a whole parsed
    update request inside one transaction.
    """

    def __init__(self, store: "RdfStore") -> None:
        self.store = store
        self.state = "open"  # open | committed | rolled-back
        #: inverse operations, applied in reverse on rollback
        self._undo: list[tuple[str, Triple]] = []
        #: the net journal record, in apply order
        self._ops: list[WalOp] = []

    # ------------------------------------------------------------- writes

    def _check_open(self) -> None:
        if self.state != "open":
            raise TransactionError(f"transaction already {self.state}")

    def add(self, triple: Triple) -> bool:
        """Insert ``triple``; returns False for a duplicate no-op."""
        self._check_open()
        if not self.store._apply_add(triple):
            return False
        self._undo.append(("remove", triple))
        self._ops.append(("+", *_keys(triple)))
        return True

    def remove(self, triple: Triple) -> bool:
        """Delete ``triple``; returns False when it was absent."""
        self._check_open()
        if not self.store._apply_remove(triple):
            return False
        self._undo.append(("add", triple))
        self._ops.append(("-", *_keys(triple)))
        return True

    def select(self, query: SelectQuery) -> SelectResult:
        """Evaluate a WHERE clause against the in-transaction state."""
        self._check_open()
        return self.store.engine.query(query)

    # ------------------------------------------------------------ closing

    def commit(self) -> None:
        """Publish the batch: journal the delta, bump the epoch once.

        Crash-ordering contract (proven step-by-step by
        ``tests/update/test_crash_matrix.py``): the in-memory apply already
        happened eagerly, so the only durability point is the WAL append.
        A crash anywhere before the journal record is complete recovers to
        the pre-transaction state on replay; once the record is durable,
        recovery yields the post-transaction state — never anything in
        between.

        A *survivable* journal failure (:class:`WalError` — disk full, I/O
        error) is a different matter from a crash: the process lives on,
        so memory and journal must not diverge. The journal truncates its
        partial record, this method unwinds the in-memory effects via the
        undo log, and the error propagates — the commit never happened."""
        self._check_open()
        self.state = "committed"
        self.store._txn = None
        hooks = self.store.hooks
        published = False
        try:
            if self._ops:
                if hooks is not None:
                    hooks.fire("commit.wal", ops=len(self._ops))
                wal = self.store._wal
                if wal is not None:
                    try:
                        wal.append(self._ops)
                    except WalError:
                        self.state = "failed"
                        self._unwind()
                        raise
                self.store.stats.bump_epoch()
                self.store._engine = None
                published = True
                if wal is not None and wal.should_checkpoint():
                    # Policy-triggered compaction rides the commit while the
                    # writer bracket is still held. The record above is
                    # already durable, so a checkpoint *failure* must not
                    # fail the commit — but an injected SimulatedCrash is
                    # not an error and propagates untouched.
                    try:
                        wal.checkpoint(meta=self.store._checkpoint_meta())
                    except (WalError, OSError) as exc:
                        logger.warning(
                            "auto-checkpoint after txn %d failed "
                            "(will retry on a later commit): %s",
                            wal.last_txn, exc,
                        )
            if hooks is not None:
                hooks.fire("commit.publish.before", ops=len(self._ops))
        finally:
            # An empty batch aborts the backend bracket: no version is
            # published, so snapshot GC horizons don't creep on no-ops.
            self.store._end_write(publish=published)
        if hooks is not None:
            hooks.fire("commit.publish.after", ops=len(self._ops))

    def rollback(self) -> None:
        """Undo every effective write of this transaction, newest first.

        The epoch is *not* bumped: a rolled-back transaction never
        happened, so plans cached before it remain exactly as valid."""
        self._check_open()
        self.state = "rolled-back"
        self.store._txn = None
        try:
            self._unwind()
        finally:
            hooks = self.store.hooks
            if hooks is not None:
                hooks.fire("rollback", ops=len(self._ops))
            self.store._end_write(publish=False)

    def _unwind(self) -> None:
        """Reverse every effective write of this batch, newest first."""
        for action, triple in reversed(self._undo):
            if action == "add":
                self.store._apply_add(triple)
            else:
                self.store._apply_remove(triple)

    # ----------------------------------------------------- context manager

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.state != "open":
            return  # committed/rolled back manually inside the block
        if exc_type is None:
            self.commit()
        else:
            self.rollback()


def _keys(triple: Triple) -> tuple[str, str, str]:
    return (
        term_key(triple.subject),
        triple.predicate.value,
        term_key(triple.object),
    )
