"""Command-line interface: load RDF files, query, explain, inspect.

Usage examples::

    python -m repro query data.ttl "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 5"
    python -m repro update data.nt "INSERT DATA { <s> <p> 'o' }" --wal j.wal
    python -m repro explain data.nt query.rq
    python -m repro info data.nt --no-coloring
    python -m repro shell data.ttl
    python -m repro wal info j.wal
    python -m repro checkpoint data.nt --wal j.wal
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import threading
import time
from typing import Iterable

from .backends import SqliteBackend
from .core.observe import render_profile
from .core.resilience import BudgetExceededError
from .core.store import RdfStore
from .relational.errors import QueryTimeout
from .sparql.engine import EngineConfig
from .rdf.graph import Graph
from .rdf.ntriples import parse as parse_ntriples
from .rdf.turtle import parse_turtle
from .sparql.parser import SparqlSyntaxError
from .sparql.results import SelectResult
from .sparql.serialize import FORMATTERS
from .update.errors import WalError
from .update.wal import inspect_wal

#: typed-error exit codes — stable, scriptable contract (documented in README)
EXIT_SYNTAX = 2
EXIT_TIMEOUT = 3
EXIT_BUDGET = 4
EXIT_WAL = 5


def load_graph(paths: Iterable[str]) -> Graph:
    """Load one or more .nt / .ttl files into a graph."""
    graph = Graph()
    for path_text in paths:
        path = pathlib.Path(path_text)
        text = path.read_text()
        if path.suffix in (".ttl", ".turtle"):
            triples = parse_turtle(text)
        else:
            triples = parse_ntriples(text)
        for triple in triples:
            graph.add(triple)
    return graph


def build_store(args: argparse.Namespace) -> RdfStore:
    """Load the data files and build a store per the CLI flags."""
    graph = load_graph(args.data)
    backend = SqliteBackend() if args.backend == "sqlite" else None
    config = EngineConfig(cache_size=0) if getattr(args, "no_cache", False) else None
    started = time.perf_counter()
    store = RdfStore.from_graph(
        graph,
        backend=backend,
        use_coloring=not args.no_coloring,
        max_columns=args.max_columns,
        config=config,
    )
    wal_path = getattr(args, "wal", None)
    if wal_path is not None:
        # Attached after the bulk load so journalled incremental writes
        # replay on top of the loaded data.
        store.attach_wal(
            wal_path,
            durability=getattr(args, "durability", None),
            recovery=getattr(args, "recovery", None) or "strict",
        )
    elapsed = time.perf_counter() - started
    if not args.quiet:
        report = store.report()
        print(
            f"# loaded {report.triples} triples in {elapsed:.2f}s "
            f"(DPH {store.schema.direct_columns} cols, "
            f"{report.direct.spill_rows} spills; "
            f"RPH {store.schema.reverse_columns} cols)",
            file=sys.stderr,
        )
    return store


def _read_query(text_or_path: str) -> str:
    path = pathlib.Path(text_or_path)
    if path.suffix in (".rq", ".sparql", ".ru") and path.exists():
        return path.read_text()
    return text_or_path


def print_result(result: SelectResult, fmt: str = "plain") -> None:
    """Print a result in the requested output format."""
    if fmt in FORMATTERS:
        print(FORMATTERS[fmt](result), end="" if fmt == "csv" else "\n")
        return
    header = "\t".join(f"?{v}" for v in result.variables)
    print(header)
    for row in result.key_rows():
        print("\t".join("" if value is None else value for value in row))


def cmd_query(args: argparse.Namespace) -> int:
    """``repro query``: run a SPARQL query and print the results.

    ``--repeat N`` re-runs the query N times (plan-cache warm after the
    first run) and reports per-run timings plus the cache counters.
    """
    store = build_store(args)
    sparql = _read_query(args.query)
    repeats = max(1, getattr(args, "repeat", 1))
    profile = bool(getattr(args, "profile", False))
    timings: list[float] = []
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = store.query(
            sparql,
            timeout=args.timeout,
            max_rows=args.max_rows,
            profile=profile,
        )
        timings.append(time.perf_counter() - started)
    print_result(result, args.format)
    if profile and result.profile is not None:
        print(render_profile(result.profile), file=sys.stderr)
    if not args.quiet:
        if repeats > 1:
            runs = ", ".join(f"{seconds * 1000:.1f}" for seconds in timings)
            print(f"# {len(result)} rows; runs (ms): {runs}", file=sys.stderr)
        else:
            print(
                f"# {len(result)} rows in {timings[0] * 1000:.1f} ms",
                file=sys.stderr,
            )
        print(f"# {store.cache_info().summary()}", file=sys.stderr)
    return 0


def cmd_update(args: argparse.Namespace) -> int:
    """``repro update``: apply a SPARQL Update request to the loaded data.

    The request runs as one transaction; with ``--wal PATH`` its committed
    delta is journalled (and any previously journalled transactions are
    replayed before it runs — the crash-recovery path)."""
    store = build_store(args)
    sparql = _read_query(args.update)
    profile = bool(getattr(args, "profile", False))
    started = time.perf_counter()
    result = store.update(sparql, profile=profile)
    elapsed = time.perf_counter() - started
    if profile and result.profile is not None:
        print(render_profile(result.profile), file=sys.stderr)
    print(f"# {result.summary()} in {elapsed * 1000:.1f} ms", file=sys.stderr)
    if not args.quiet:
        report = store.report()
        print(f"# store now holds {report.triples} triples", file=sys.stderr)
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """``repro explain``: print the SQL generated for a query (with
    ``--plan``, also the compile configuration and the backend's plan)."""
    store = build_store(args)
    mode = "plan" if getattr(args, "plan", False) else "sql"
    print(store.explain(_read_query(args.query), mode=mode))
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    """``repro info``: print load statistics for the data files."""
    store = build_store(args)
    report = store.report()
    print(f"triples:              {report.triples}")
    print(f"subjects (DPH rows):  {report.direct.entities} "
          f"(+{report.direct.spill_rows} spill rows)")
    print(f"objects (RPH rows):   {report.reverse.entities} "
          f"(+{report.reverse.spill_rows} spill rows)")
    print(f"DPH columns:          {report.direct_columns}")
    print(f"RPH columns:          {report.reverse_columns}")
    print(f"multi-valued (direct): {len(report.direct.multivalued)}")
    print(f"multi-valued (reverse): {len(report.reverse.multivalued)}")
    print(f"online-assigned preds: {len(report.direct.online_assignments)}")
    print(f"distinct predicates:  {len(store.stats.predicate_counts)}")
    if store.wal is not None:
        print(f"wal segments:         {report.wal_segments}")
        print(f"wal last txn:         {report.wal_last_txn}")
        print(f"wal records dropped:  {report.wal_records_dropped}")
    top = sorted(
        store.stats.predicate_counts.items(), key=lambda kv: -kv[1]
    )[:10]
    print("top predicates:")
    for predicate, count in top:
        print(f"  {count:>8}  {predicate}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: expose the store over the SPARQL 1.1 Protocol.

    Queries (GET/POST ``/sparql``) run on concurrent snapshot reads;
    updates (POST ``/update``) serialize behind the store's writer lock.
    Error bodies carry the same exit codes this CLI uses."""
    # Deferred: repro.server imports this module for the exit codes.
    from .server.app import SparqlServer

    store = build_store(args)
    server = SparqlServer(
        store,
        host=args.host,
        port=args.port,
        max_concurrent=args.max_concurrent,
        workers=args.workers,
        default_timeout=args.timeout,
        default_max_rows=args.max_rows,
        drain_timeout=args.drain_timeout,
    )

    class _Announce(threading.Event):
        def set(self) -> None:  # port known once the listener is bound
            print(
                f"# serving SPARQL on http://{server.host}:{server.port}/sparql"
                f" (updates at /update, liveness at /health)",
                file=sys.stderr,
            )
            super().set()

    try:
        server.run(
            ready=None if args.quiet else _Announce(), install_signals=True
        )
    except KeyboardInterrupt:
        pass
    return 0


def cmd_wal_info(args: argparse.Namespace) -> int:
    """``repro wal info``: verify a journal's checksums and print its
    shape. Read-only — never repairs or truncates anything. Exits
    ``EXIT_WAL`` (5) when the journal holds real corruption."""
    status = inspect_wal(args.path)
    print(f"path:             {status.path}")
    print(f"format:           {status.format}")
    if status.format == "absent":
        print("status:           no journal at this path")
        return 0
    print(f"segments:         {status.segments}")
    print(f"records:          {status.records}")
    print(f"last txn:         {status.last_txn}")
    if status.checkpoint_txn:
        print(f"checkpoint:       txn {status.checkpoint_txn} "
              f"({status.checkpoint_ops} consolidated ops)")
    else:
        print("checkpoint:       none")
    if status.tail_torn:
        print("tail:             torn final record "
              "(expected crash footprint; truncated on next open)")
    if status.ok:
        print("checksums:        ok")
        return 0
    print(f"checksums:        CORRUPT — {status.error}")
    print(f"error (wal): {status.error}", file=sys.stderr)
    return EXIT_WAL


def cmd_checkpoint(args: argparse.Namespace) -> int:
    """``repro checkpoint``: consolidate the journal's committed prefix
    into a durable checkpoint and compact the covered segments."""
    if getattr(args, "wal", None) is None:
        print("error: checkpoint requires --wal PATH", file=sys.stderr)
        return 2
    store = build_store(args)
    info = store.checkpoint()
    if info.txn == 0:
        print("# journal is empty: nothing to checkpoint", file=sys.stderr)
        return 0
    print(
        f"# checkpoint at txn {info.txn}: {info.ops} consolidated op(s), "
        f"{info.segments_removed} segment(s) compacted",
        file=sys.stderr,
    )
    if not args.quiet:
        summary = store.wal_summary()
        print(f"# journal now: {summary['segments']} segment(s), "
              f"{summary['records']} record(s) past the checkpoint",
              file=sys.stderr)
    return 0


def cmd_shell(args: argparse.Namespace) -> int:
    """``repro shell``: an interactive SPARQL read-eval-print loop."""
    store = build_store(args)
    print("# repro SPARQL shell — end queries with a blank line, "
          "'\\q' quits, '\\e <query>' explains, '\\profile <query>' "
          "profiles, '\\update <stmt>' writes, '\\c' shows plan-cache stats",
          file=sys.stderr)
    buffer: list[str] = []
    while True:
        try:
            line = input("sparql> " if not buffer else "   ...> ")
        except EOFError:
            return 0
        if line.strip() == "\\q":
            return 0
        if line.strip() == "\\c":
            print(store.cache_info().summary(), file=sys.stderr)
            continue
        if line.startswith("\\e "):
            try:
                print(store.explain(line[3:], mode="plan"))
            except Exception as exc:  # interactive: report, keep going
                print(f"error: {exc}", file=sys.stderr)
            continue
        if line.startswith("\\update "):
            try:
                result = store.update(line[len("\\update "):])
                print(f"# {result.summary()}", file=sys.stderr)
            except Exception as exc:
                print(f"error: {exc}", file=sys.stderr)
            continue
        if line.startswith("\\profile "):
            try:
                result = store.query(
                    line[len("\\profile "):],
                    timeout=args.timeout,
                    max_rows=args.max_rows,
                    profile=True,
                )
                print_result(result)
                print(render_profile(result.profile), file=sys.stderr)
            except Exception as exc:
                print(f"error: {exc}", file=sys.stderr)
            continue
        if line.strip():
            buffer.append(line)
            continue
        if not buffer:
            continue
        sparql = "\n".join(buffer)
        buffer = []
        try:
            started = time.perf_counter()
            result = store.query(
                sparql, timeout=args.timeout, max_rows=args.max_rows
            )
            elapsed = time.perf_counter() - started
            print_result(result)
            print(f"# {len(result)} rows in {elapsed * 1000:.1f} ms",
                  file=sys.stderr)
        except Exception as exc:
            print(f"error: {exc}", file=sys.stderr)


def make_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DB2RDF-style RDF store over a relational database",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, with_query: bool = True) -> None:
        p.add_argument("data", nargs="+", help=".nt or .ttl file(s)")
        if with_query:
            p.add_argument("query", help="SPARQL text or a .rq file path")
        p.add_argument(
            "--backend", choices=["minirel", "sqlite"], default="minirel"
        )
        p.add_argument("--no-coloring", action="store_true",
                       help="use hash composition instead of graph coloring")
        p.add_argument("--max-columns", type=int, default=100)
        p.add_argument("--timeout", type=float, default=None,
                       help="query timeout in seconds")
        p.add_argument("--max-rows", type=int, default=None,
                       help="fail queries returning more than N result rows")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the query plan cache")
        p.add_argument("--quiet", action="store_true")
        p.add_argument(
            "--format",
            choices=["plain", "table", "csv", "tsv", "json"],
            default="plain",
            help="result output format",
        )
        p.add_argument(
            "--wal", default=None, metavar="PATH",
            help="replay (and keep journalling to) a write-ahead log",
        )
        _wal_tuning(p)

    def _wal_tuning(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--durability", choices=["none", "flush", "fsync"], default=None,
            help="journal durability per commit (default: flush)",
        )
        p.add_argument(
            "--recovery", choices=["strict", "tolerate_tail"], default=None,
            help="corrupt-journal policy: strict refuses (exit 5), "
                 "tolerate_tail truncates at the first bad record",
        )

    query_parser = sub.add_parser("query", help="run a SPARQL query")
    common(query_parser)
    query_parser.add_argument(
        "--repeat", type=int, default=1,
        help="run the query N times (warm plan cache after the first)",
    )
    query_parser.add_argument(
        "--profile", action="store_true",
        help="trace the query (compile stages, per-operator rows/timings) "
             "and print the profile to stderr",
    )
    query_parser.set_defaults(func=cmd_query)

    update_parser = sub.add_parser(
        "update", help="apply a SPARQL Update request"
    )
    update_parser.add_argument("data", nargs="+", help=".nt or .ttl file(s)")
    update_parser.add_argument(
        "update", help="SPARQL Update text or a .ru file path"
    )
    update_parser.add_argument(
        "--backend", choices=["minirel", "sqlite"], default="minirel"
    )
    update_parser.add_argument("--no-coloring", action="store_true",
                               help="use hash composition instead of coloring")
    update_parser.add_argument("--max-columns", type=int, default=100)
    update_parser.add_argument("--quiet", action="store_true")
    update_parser.add_argument(
        "--wal", default=None, metavar="PATH",
        help="write-ahead journal: replay it after load, append the commit",
    )
    _wal_tuning(update_parser)
    update_parser.add_argument(
        "--profile", action="store_true",
        help="trace parse/apply/commit stages and print the profile",
    )
    update_parser.set_defaults(func=cmd_update)

    explain_parser = sub.add_parser("explain", help="show the generated SQL")
    common(explain_parser)
    explain_parser.add_argument(
        "--plan", action="store_true",
        help="include the compile configuration and the backend's own plan",
    )
    explain_parser.set_defaults(func=cmd_explain)

    info_parser = sub.add_parser("info", help="load statistics")
    common(info_parser, with_query=False)
    info_parser.set_defaults(func=cmd_info)

    shell_parser = sub.add_parser("shell", help="interactive SPARQL shell")
    common(shell_parser, with_query=False)
    shell_parser.set_defaults(func=cmd_shell)

    serve_parser = sub.add_parser(
        "serve", help="serve the data over the SPARQL 1.1 Protocol"
    )
    common(serve_parser, with_query=False)
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=3030,
        help="TCP port (0 binds an ephemeral port)",
    )
    serve_parser.add_argument(
        "--max-concurrent", type=int, default=8,
        help="requests in flight before shedding load with 503",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=None,
        help="query worker threads (default: max-concurrent, floor 2)",
    )
    serve_parser.add_argument(
        "--drain-timeout", type=float, default=10.0,
        help="seconds to let in-flight requests finish on SIGTERM/SIGINT "
             "before closing (the WAL is flushed either way)",
    )
    serve_parser.set_defaults(func=cmd_serve)

    wal_parser = sub.add_parser(
        "wal", help="inspect a write-ahead journal"
    )
    wal_sub = wal_parser.add_subparsers(dest="wal_command", required=True)
    wal_info_parser = wal_sub.add_parser(
        "info",
        help="verify checksums and print segment/record/txn counts "
             "(read-only; exit 5 on corruption)",
    )
    wal_info_parser.add_argument("path", help="journal directory or file")
    wal_info_parser.set_defaults(func=cmd_wal_info)

    checkpoint_parser = sub.add_parser(
        "checkpoint",
        help="consolidate the journal into a checkpoint and compact it",
    )
    common(checkpoint_parser, with_query=False)
    checkpoint_parser.set_defaults(func=cmd_checkpoint)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Typed errors map to stable exit codes instead of tracebacks:
    syntax errors (query or update) → 2, query timeouts → 3, budget
    trips (``--max-rows``) → 4, journal corruption → 5. Anything else is
    a genuine bug and propagates with its traceback.
    """
    parser = make_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BudgetExceededError as exc:
        print(f"error (budget): {exc}", file=sys.stderr)
        return EXIT_BUDGET
    except QueryTimeout as exc:
        print(f"error (timeout): {exc}", file=sys.stderr)
        return EXIT_TIMEOUT
    except WalError as exc:
        print(f"error (wal): {exc}", file=sys.stderr)
        return EXIT_WAL
    except SparqlSyntaxError as exc:
        print(f"error (syntax): {exc}", file=sys.stderr)
        return EXIT_SYNTAX


if __name__ == "__main__":
    raise SystemExit(main())
