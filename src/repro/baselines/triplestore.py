"""The triple-store baseline (paper §2, first alternative).

One skinny relation ``TRIPLES(subj, pred, obj)``; every triple pattern
becomes a self-join, which is exactly the cost the entity-oriented layout
eliminates for star queries (Figure 2c shows the generated shape).

The baseline reuses the paper's hybrid optimizer — the optimizer is storage
independent (§3) — but its emitter produces one access per triple with no
merging.
"""

from __future__ import annotations

from ..backends import Backend, MiniRelBackend
from ..core import sqlfunctions  # noqa: F401
from ..core.errors import UnsupportedQueryError
from ..core.querycache import CacheInfo, QueryCache
from ..core.stats import DatasetStatistics
from ..rdf.graph import Graph
from ..rdf.terms import Triple, term_key
from ..relational import ast as sql
from ..relational.types import ColumnType
from ..sparql.ast import Var
from ..sparql.engine import EngineConfig, SparqlEngine
from ..sparql.optimizer.merge import MergedNode
from ..sparql.optimizer.planbuilder import AccessNode
from ..sparql.results import SelectResult
from ..sparql.translator.pipeline import (
    Ctx,
    SqlBuilder,
    TripleEmitter,
    compat_condition,
    compat_projection,
    passthrough_items,
    var_col,
)

TABLE = "TRIPLES"
SUBJ, PRED, OBJ = "subj", "pred", "obj"


class TripleTableEmitter(TripleEmitter):
    """One CTE per triple pattern against the 3-column relation."""

    supports_merge = False

    def __init__(self, table: str = TABLE) -> None:
        self.table = table

    def emit_access(
        self, builder: SqlBuilder, node: AccessNode | MergedNode, ctx: Ctx
    ) -> Ctx:
        if isinstance(node, MergedNode):
            raise UnsupportedQueryError("triple-store layout cannot merge accesses")
        triple = node.triple
        overrides: dict[str, sql.Expr] = {}
        extra_items: list[sql.SelectItem] = []
        where: list[sql.Expr] = []
        out_vars: list[str] = []
        now_definite: set[str] = set()
        produced: dict[str, sql.Expr] = {}

        for position, column in (
            (triple.subject, SUBJ),
            (triple.predicate, PRED),
            (triple.object, OBJ),
        ):
            source = sql.Column("T", column)
            if isinstance(position, Var):
                if position.name in produced:
                    # Repeated variable within one pattern: the two source
                    # columns must agree directly. A ctx compat check alone
                    # is vacuous when the incoming binding is NULL (e.g.
                    # after a UNION), which would drop the constraint.
                    where.append(sql.BinOp("=", source, produced[position.name]))
                    now_definite.add(position.name)
                elif ctx.has(position.name):
                    bound_col = sql.Column("I", ctx.col(position.name))
                    maybe = ctx.is_maybe(position.name)
                    where.append(compat_condition(source, bound_col, maybe))
                    replacement = compat_projection(source, bound_col, maybe)
                    if replacement is not None:
                        overrides[position.name] = replacement
                    produced[position.name] = source
                    now_definite.add(position.name)
                else:
                    produced[position.name] = source
                    extra_items.append(
                        sql.SelectItem(source, var_col(position.name))
                    )
                    out_vars.append(position.name)
                    now_definite.add(position.name)
            else:
                where.append(sql.BinOp("=", source, sql.Const(term_key(position))))

        items = passthrough_items(ctx, overrides=overrides) + extra_items
        from_: sql.FromItem = sql.TableRef(self.table, "T")
        if ctx.cte is not None:
            from_ = sql.Join(sql.TableRef(ctx.cte, "I"), from_, "INNER", None)
        select = sql.Select(items=tuple(items), from_=from_, where=sql.conjoin(where))
        name = builder.add_cte(select)
        return ctx.with_vars(name, out_vars, now_definite)


class TripleStore:
    """The runnable baseline store."""

    name = "triple-store"

    def __init__(
        self,
        backend: Backend | None = None,
        index_subjects: bool = True,
        index_objects: bool = True,
        table: str = TABLE,
        config: EngineConfig | None = None,
    ) -> None:
        self.backend = backend if backend is not None else MiniRelBackend()
        self.table = table
        self.backend.create_table(
            table,
            [
                (SUBJ, ColumnType.TEXT),
                (PRED, ColumnType.TEXT),
                (OBJ, ColumnType.TEXT),
            ],
        )
        if index_subjects:
            self.backend.create_index(f"{table}_subj", table, [SUBJ])
        if index_objects:
            self.backend.create_index(f"{table}_obj", table, [OBJ])
        self.stats = DatasetStatistics()
        self.config = config or EngineConfig(merge=False)
        # Survives engine rebuilds; stats-epoch keying invalidates stale plans.
        self._plan_cache = QueryCache(self.config.cache_size)
        self._engine: SparqlEngine | None = None

    @classmethod
    def from_graph(cls, graph: Graph, **kwargs) -> "TripleStore":
        store = cls(**kwargs)
        store.load_graph(graph)
        return store

    def load_graph(self, graph: Graph, top_k_stats: int = 1000) -> None:
        self.backend.insert_many(
            self.table,
            (
                (
                    term_key(triple.subject),
                    triple.predicate.value,
                    term_key(triple.object),
                )
                for triple in graph
            ),
        )
        fresh = DatasetStatistics.from_graph(graph, top_k=top_k_stats)
        fresh.epoch = self.stats.epoch + 1  # invalidates cached plans
        self.stats = fresh
        self._engine = None

    def add(self, triple: Triple) -> None:
        self.backend.insert_many(
            self.table,
            [
                (
                    term_key(triple.subject),
                    triple.predicate.value,
                    term_key(triple.object),
                )
            ],
        )
        self.stats.record_triple(
            term_key(triple.subject), triple.predicate.value, term_key(triple.object)
        )
        self.stats.bump_epoch()
        self._engine = None

    @property
    def engine(self) -> SparqlEngine:
        if self._engine is None:
            self._engine = SparqlEngine(
                backend=self.backend,
                emitter=TripleTableEmitter(self.table),
                stats=self.stats,
                config=self.config,
                cache=self._plan_cache,
            )
        return self._engine

    def query(self, sparql: str, timeout: float | None = None) -> SelectResult:
        return self.engine.query(sparql, timeout=timeout)

    def cache_info(self) -> CacheInfo:
        """Plan-cache counters for this store's persistent cache."""
        return self._plan_cache.info()

    def explain(self, sparql: str) -> str:
        return self.engine.explain(sparql)
