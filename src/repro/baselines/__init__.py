"""Baseline stores: the §2 relational layouts and a native in-memory store."""

from .native_memory import HexastoreIndexes, NativeMemoryStore
from .triplestore import TripleStore, TripleTableEmitter
from .typeoriented import TypeOrientedEmitter, TypeOrientedStore
from .vertical import VerticalEmitter, VerticalStore

__all__ = [
    "HexastoreIndexes",
    "NativeMemoryStore",
    "TripleStore",
    "TripleTableEmitter",
    "TypeOrientedEmitter",
    "TypeOrientedStore",
    "VerticalEmitter",
    "VerticalStore",
]
