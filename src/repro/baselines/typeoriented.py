"""The type-oriented baseline (paper §2, second alternative; Jena
SDB-style property tables).

One wide relation per ``rdf:type``: entities of a type share a table whose
columns are that type's predicates (one row per entity, like the
entity-oriented layout — but the column set is *per type* and fixed, so new
types and new predicates require DDL, and DBpedia-scale type counts
explode: "the number of relations can quickly get out of hand if one
considers that DBpedia includes 150K types").

Entities without a type land in a shared ``__untyped`` table. Multi-valued
cells route through a shared secondary table, like DB2RDF's DS. Queries
that do not fix the entity's type (any subject lookup, any reverse lookup)
must UNION over every type table — the flexibility cost the paper uses to
motivate the entity-oriented design.

The paper omits this layout from the micro-benchmark "because for this
micro-benchmark it is similar to the entity-oriented approach"; having it
runnable lets us check that footnote.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..backends import Backend, MiniRelBackend
from ..core import sqlfunctions  # noqa: F401
from ..core.errors import LoadError, UnsupportedQueryError
from ..core.querycache import CacheInfo, QueryCache
from ..core.stats import DatasetStatistics
from ..rdf.graph import Graph
from ..rdf.terms import RDF_TYPE, URI, term_key
from ..relational import ast as sql
from ..relational.types import ColumnType
from ..sparql.ast import Var
from ..sparql.engine import EngineConfig, SparqlEngine
from ..sparql.optimizer.merge import MergedNode
from ..sparql.optimizer.planbuilder import AccessNode
from ..sparql.results import SelectResult
from ..sparql.translator.pipeline import (
    Ctx,
    SqlBuilder,
    TripleEmitter,
    compat_condition,
    compat_projection,
    passthrough_items,
    var_col,
)

ENTRY = "entry"
UNTYPED = "__untyped"
LID_PREFIX = "@lid:t:"


@dataclass
class TypeTable:
    """One per-type property table."""

    name: str
    predicate_columns: dict[str, str] = field(default_factory=dict)
    multivalued: set[str] = field(default_factory=set)


class TypeOrientedEmitter(TripleEmitter):
    """Accesses against per-type property tables.

    Every access is a UNION ALL over the type tables that contain the
    predicate (all tables, for variable predicates) — the entity's type is
    not known from the pattern alone.
    """

    supports_merge = False

    def __init__(self, tables: dict[str, TypeTable], secondary: str) -> None:
        self.tables = tables
        self.secondary = secondary

    def emit_access(
        self, builder: SqlBuilder, node: AccessNode | MergedNode, ctx: Ctx
    ) -> Ctx:
        if isinstance(node, MergedNode):
            raise UnsupportedQueryError("type-oriented layout cannot merge accesses")
        triple = node.triple
        predicate = triple.predicate

        # (table, predicate value, column) target list
        targets: list[tuple[TypeTable, str, str]] = []
        if isinstance(predicate, Var):
            for table in self.tables.values():
                for predicate_value, column in sorted(table.predicate_columns.items()):
                    targets.append((table, predicate_value, column))
        else:
            for table in sorted(self.tables.values(), key=lambda t: t.name):
                column = table.predicate_columns.get(predicate.value)
                if column is not None:
                    targets.append((table, predicate.value, column))

        new_vars: list[str] = []
        for position in (triple.subject, predicate, triple.object):
            if isinstance(position, Var) and not ctx.has(position.name):
                if position.name not in new_vars:
                    new_vars.append(position.name)

        if not targets:
            empty = sql.Select(
                items=tuple(
                    passthrough_items(ctx)
                    + [
                        sql.SelectItem(sql.Const(None), var_col(v))
                        for v in new_vars
                    ]
                ),
                from_=sql.TableRef(ctx.cte, "I") if ctx.cte else None,
                where=sql.Const(False),
            )
            name = builder.add_cte(empty)
            return ctx.with_vars(name, new_vars)

        selects = [
            self._branch(table, predicate_value, column, triple, ctx, new_vars)
            for table, predicate_value, column in targets
        ]
        union = sql.union_all(selects)
        name = builder.add_cte(union)
        consumed = {
            v.name
            for v in (triple.subject, predicate, triple.object)
            if isinstance(v, Var) and ctx.has(v.name)
        }
        return ctx.with_vars(name, new_vars, set(new_vars) | consumed)

    def _branch(
        self,
        table: TypeTable,
        predicate_value: str,
        column: str,
        triple,
        ctx: Ctx,
        new_vars: list[str],
    ) -> sql.Select:
        overrides: dict[str, sql.Expr] = {}
        where: list[sql.Expr] = [
            sql.IsNull(sql.Column("T", column), negated=True)
        ]
        produced: dict[str, sql.Expr] = {}
        multivalued = predicate_value in table.multivalued or isinstance(
            triple.predicate, Var
        )

        from_: sql.FromItem = sql.TableRef(table.name, "T")
        if ctx.cte is not None:
            from_ = sql.Join(sql.TableRef(ctx.cte, "I"), from_, "INNER", None)
        if multivalued:
            from_ = sql.Join(
                from_,
                sql.TableRef(self.secondary, "S"),
                "LEFT",
                sql.BinOp("=", sql.Column("T", column), sql.Column("S", "l_id")),
            )
            value_source: sql.Expr = sql.FuncCall(
                "COALESCE", (sql.Column("S", "elm"), sql.Column("T", column))
            )
        else:
            value_source = sql.Column("T", column)

        # subject
        subject = triple.subject
        if isinstance(subject, Var):
            if ctx.has(subject.name):
                bound_col = sql.Column("I", ctx.col(subject.name))
                maybe = ctx.is_maybe(subject.name)
                where.append(
                    compat_condition(sql.Column("T", ENTRY), bound_col, maybe)
                )
                replacement = compat_projection(
                    sql.Column("T", ENTRY), bound_col, maybe
                )
                if replacement is not None:
                    overrides[subject.name] = replacement
                produced[subject.name] = sql.Column("T", ENTRY)
            else:
                produced[subject.name] = sql.Column("T", ENTRY)
        else:
            where.append(
                sql.BinOp("=", sql.Column("T", ENTRY), sql.Const(term_key(subject)))
            )

        # predicate (variable predicates bind to the branch's constant)
        predicate = triple.predicate
        if isinstance(predicate, Var):
            if predicate.name in produced:
                where.append(
                    sql.BinOp(
                        "=", sql.Const(predicate_value), produced[predicate.name]
                    )
                )
            elif ctx.has(predicate.name):
                bound_col = sql.Column("I", ctx.col(predicate.name))
                maybe = ctx.is_maybe(predicate.name)
                where.append(
                    compat_condition(sql.Const(predicate_value), bound_col, maybe)
                )
                replacement = compat_projection(
                    sql.Const(predicate_value), bound_col, maybe
                )
                if replacement is not None:
                    overrides[predicate.name] = replacement
            else:
                produced[predicate.name] = sql.Const(predicate_value)

        # object
        obj = triple.object
        if isinstance(obj, Var):
            if obj.name in produced:
                where.append(sql.BinOp("=", value_source, produced[obj.name]))
            elif ctx.has(obj.name):
                bound_col = sql.Column("I", ctx.col(obj.name))
                maybe = ctx.is_maybe(obj.name)
                where.append(compat_condition(value_source, bound_col, maybe))
                replacement = compat_projection(value_source, bound_col, maybe)
                if replacement is not None:
                    overrides[obj.name] = replacement
            else:
                produced[obj.name] = value_source
        else:
            where.append(
                sql.BinOp("=", value_source, sql.Const(term_key(obj)))
            )

        items = passthrough_items(ctx, overrides=overrides)
        for variable in new_vars:
            items.append(
                sql.SelectItem(
                    produced.get(variable, sql.Const(None)), var_col(variable)
                )
            )
        return sql.Select(items=tuple(items), from_=from_, where=sql.conjoin(where))


class TypeOrientedStore:
    """The runnable type-oriented baseline (bulk load only: the layout's
    schema is derived from the data, which is precisely its weakness)."""

    name = "type-oriented"

    def __init__(
        self,
        backend: Backend | None = None,
        config: EngineConfig | None = None,
    ) -> None:
        self.backend = backend if backend is not None else MiniRelBackend()
        self.tables: dict[str, TypeTable] = {}
        self.secondary = "TS"
        self.backend.create_table(
            self.secondary, [("l_id", ColumnType.TEXT), ("elm", ColumnType.TEXT)]
        )
        self.backend.create_index("TS_lid", self.secondary, ["l_id"])
        self.stats = DatasetStatistics()
        self.config = config or EngineConfig(merge=False)
        # Survives engine rebuilds; stats-epoch keying invalidates stale plans.
        self._plan_cache = QueryCache(self.config.cache_size)
        self._engine: SparqlEngine | None = None
        self._counter = 0
        self._lid_counter = 0

    @classmethod
    def from_graph(cls, graph: Graph, **kwargs) -> "TypeOrientedStore":
        store = cls(**kwargs)
        store.load_graph(graph)
        return store

    # ---------------------------------------------------------------- load

    def load_graph(self, graph: Graph, top_k_stats: int = 1000) -> None:
        type_uri = URI(RDF_TYPE)
        # 1. assign each subject to a type partition (first type, sorted)
        partition: dict[str, list] = {}
        for subject in graph.subjects():
            types = sorted(
                term_key(t.object)
                for t in graph.triples_for_subject(subject)
                if t.predicate == type_uri and isinstance(t.object, URI)
            )
            key = types[0] if types else UNTYPED
            partition.setdefault(key, []).append(subject)

        # 2. per partition: derive schema, pack rows
        for type_key, subjects in sorted(partition.items()):
            grouped_rows = []
            predicates: dict[str, None] = {}
            for subject in subjects:
                grouped: dict[str, list[str]] = {}
                for triple in graph.triples_for_subject(subject):
                    value = term_key(triple.object)
                    if value.startswith(LID_PREFIX):
                        raise LoadError(
                            f"data value collides with reserved lid prefix: {value!r}"
                        )
                    grouped.setdefault(triple.predicate.value, []).append(value)
                for predicate in grouped:
                    predicates.setdefault(predicate)
                grouped_rows.append((term_key(subject), grouped))

            table = self._table_for(type_key, list(predicates))
            secondary_batch = []
            primary_batch = []
            for entry, grouped in grouped_rows:
                row = [entry] + [None] * len(table.predicate_columns)
                positions = {
                    column: index + 1
                    for index, column in enumerate(table.predicate_columns.values())
                }
                for predicate, values in grouped.items():
                    column = table.predicate_columns[predicate]
                    if len(values) > 1:
                        self._lid_counter += 1
                        lid = f"{LID_PREFIX}{self._lid_counter}"
                        secondary_batch.extend((lid, value) for value in values)
                        table.multivalued.add(predicate)
                        row[positions[column]] = lid
                    else:
                        row[positions[column]] = values[0]
                primary_batch.append(row)
            self.backend.insert_many(table.name, primary_batch)
            if secondary_batch:
                self.backend.insert_many(self.secondary, secondary_batch)

        fresh = DatasetStatistics.from_graph(graph, top_k=top_k_stats)
        fresh.epoch = self.stats.epoch + 1  # invalidates cached plans
        self.stats = fresh
        self._engine = None

    def _table_for(self, type_key: str, predicates: list[str]) -> TypeTable:
        if type_key in self.tables:
            raise LoadError(
                "type-oriented layout does not support incremental reload of "
                f"type {type_key!r} (schema change) — this is the layout's "
                "documented weakness"
            )
        self._counter += 1
        name = f"TT{self._counter}"
        columns: list[tuple[str, ColumnType]] = [(ENTRY, ColumnType.TEXT)]
        predicate_columns: dict[str, str] = {}
        for index, predicate in enumerate(predicates):
            column = f"p{index}"
            predicate_columns[predicate] = column
            columns.append((column, ColumnType.TEXT))
        self.backend.create_table(name, columns)
        self.backend.create_index(f"{name}_entry", name, [ENTRY])
        table = TypeTable(name, predicate_columns)
        self.tables[type_key] = table
        return table

    # --------------------------------------------------------------- query

    @property
    def engine(self) -> SparqlEngine:
        if self._engine is None:
            self._engine = SparqlEngine(
                backend=self.backend,
                emitter=TypeOrientedEmitter(self.tables, self.secondary),
                stats=self.stats,
                config=self.config,
                cache=self._plan_cache,
            )
        return self._engine

    def query(self, sparql: str, timeout: float | None = None) -> SelectResult:
        return self.engine.query(sparql, timeout=timeout)

    def cache_info(self) -> CacheInfo:
        """Plan-cache counters for this store's persistent cache."""
        return self._plan_cache.info()

    def explain(self, sparql: str) -> str:
        return self.engine.explain(sparql)
