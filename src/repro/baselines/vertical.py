"""The predicate-oriented (vertical partitioning) baseline (paper §2,
third alternative; Abadi et al.'s column-store layout).

One binary relation per predicate. Stars join across predicate tables
(Figure 2d); dynamic schemas require new tables per new predicate — the
flexibility cost the paper calls out — and variable-predicate patterns
degenerate to a UNION ALL over every predicate table.
"""

from __future__ import annotations

from ..backends import Backend, MiniRelBackend
from ..core import sqlfunctions  # noqa: F401
from ..core.errors import UnsupportedQueryError
from ..core.querycache import CacheInfo, QueryCache
from ..core.stats import DatasetStatistics
from ..rdf.graph import Graph
from ..rdf.terms import Triple, term_key
from ..relational import ast as sql
from ..relational.types import ColumnType
from ..sparql.ast import Var
from ..sparql.engine import EngineConfig, SparqlEngine
from ..sparql.optimizer.merge import MergedNode
from ..sparql.optimizer.planbuilder import AccessNode
from ..sparql.results import SelectResult
from ..sparql.translator.pipeline import (
    Ctx,
    SqlBuilder,
    TripleEmitter,
    compat_condition,
    compat_projection,
    passthrough_items,
    var_col,
)

ENTRY, VAL = "entry", "val"


class VerticalEmitter(TripleEmitter):
    """Accesses against per-predicate binary tables."""

    supports_merge = False

    def __init__(self, tables: dict[str, str]) -> None:
        # predicate URI -> table name
        self.tables = tables

    def emit_access(
        self, builder: SqlBuilder, node: AccessNode | MergedNode, ctx: Ctx
    ) -> Ctx:
        if isinstance(node, MergedNode):
            raise UnsupportedQueryError("vertical layout cannot merge accesses")
        triple = node.triple
        predicate = triple.predicate
        if isinstance(predicate, Var):
            return self._emit_any_predicate(builder, node, ctx)
        table = self.tables.get(predicate.value)
        if table is None:
            # unknown predicate: provably empty
            empty = sql.Select(
                items=tuple(
                    passthrough_items(ctx)
                    + [
                        sql.SelectItem(sql.Const(None), var_col(v.name))
                        for v in (triple.subject, triple.object)
                        if isinstance(v, Var) and not ctx.has(v.name)
                    ]
                ),
                from_=sql.TableRef(ctx.cte, "I") if ctx.cte else None,
                where=sql.Const(False),
            )
            name = builder.add_cte(empty)
            new_vars = [
                v.name
                for v in (triple.subject, triple.object)
                if isinstance(v, Var) and not ctx.has(v.name)
            ]
            return ctx.with_vars(name, new_vars)
        select, new_vars = self._single_table_select(table, None, triple, ctx)
        name = builder.add_cte(select)
        consumed = {
            v.name
            for v in (triple.subject, triple.predicate, triple.object)
            if isinstance(v, Var) and ctx.has(v.name)
        }
        return ctx.with_vars(name, new_vars, set(new_vars) | consumed)

    def _single_table_select(
        self, table: str, predicate_value: str | None, triple, ctx: Ctx
    ) -> tuple[sql.Select, list[str]]:
        overrides: dict[str, sql.Expr] = {}
        extra_items: list[sql.SelectItem] = []
        where: list[sql.Expr] = []
        out_vars: list[str] = []
        produced: dict[str, sql.Expr] = {}
        for position, column in ((triple.subject, ENTRY), (triple.object, VAL)):
            source = sql.Column("T", column)
            if isinstance(position, Var):
                if position.name in produced:
                    # Repeated variable within one pattern: hard equality
                    # between the source columns — the ctx compat check is
                    # vacuous when the incoming binding is NULL.
                    where.append(sql.BinOp("=", source, produced[position.name]))
                elif ctx.has(position.name):
                    bound_col = sql.Column("I", ctx.col(position.name))
                    maybe = ctx.is_maybe(position.name)
                    where.append(compat_condition(source, bound_col, maybe))
                    replacement = compat_projection(source, bound_col, maybe)
                    if replacement is not None:
                        overrides[position.name] = replacement
                    produced[position.name] = source
                else:
                    produced[position.name] = source
                    extra_items.append(
                        sql.SelectItem(source, var_col(position.name))
                    )
                    out_vars.append(position.name)
            else:
                where.append(sql.BinOp("=", source, sql.Const(term_key(position))))
        if predicate_value is not None:
            pred_var = triple.predicate
            assert isinstance(pred_var, Var)
            if pred_var.name in produced:
                # ?p shared with subject/object: the constant must agree
                where.append(
                    sql.BinOp(
                        "=", sql.Const(predicate_value), produced[pred_var.name]
                    )
                )
            elif ctx.has(pred_var.name):
                bound_col = sql.Column("I", ctx.col(pred_var.name))
                maybe = ctx.is_maybe(pred_var.name)
                where.append(
                    compat_condition(sql.Const(predicate_value), bound_col, maybe)
                )
                replacement = compat_projection(
                    sql.Const(predicate_value), bound_col, maybe
                )
                if replacement is not None:
                    overrides[pred_var.name] = replacement
            else:
                extra_items.append(
                    sql.SelectItem(sql.Const(predicate_value), var_col(pred_var.name))
                )
                out_vars.append(pred_var.name)
        items = passthrough_items(ctx, overrides=overrides) + extra_items
        from_: sql.FromItem = sql.TableRef(table, "T")
        if ctx.cte is not None:
            from_ = sql.Join(sql.TableRef(ctx.cte, "I"), from_, "INNER", None)
        return (
            sql.Select(items=tuple(items), from_=from_, where=sql.conjoin(where)),
            out_vars,
        )

    def _emit_any_predicate(
        self, builder: SqlBuilder, node: AccessNode, ctx: Ctx
    ) -> Ctx:
        """Variable predicate: UNION ALL over every predicate table."""
        triple = node.triple
        selects: list[sql.Query] = []
        out_vars_union: list[str] = []
        for predicate_value, table in sorted(self.tables.items()):
            select, out_vars = self._single_table_select(
                table, predicate_value, triple, ctx
            )
            selects.append(select)
            for variable in out_vars:
                if variable not in out_vars_union:
                    out_vars_union.append(variable)
        if not selects:
            selects = [
                sql.Select(
                    items=tuple(passthrough_items(ctx)),
                    from_=sql.TableRef(ctx.cte, "I") if ctx.cte else None,
                    where=sql.Const(False),
                )
            ]
        union = sql.union_all(selects)
        name = builder.add_cte(union)
        consumed = {
            v.name
            for v in (triple.subject, triple.predicate, triple.object)
            if isinstance(v, Var) and ctx.has(v.name)
        }
        return ctx.with_vars(name, out_vars_union, set(out_vars_union) | consumed)


class VerticalStore:
    """The runnable predicate-oriented baseline."""

    name = "predicate-oriented"

    def __init__(
        self,
        backend: Backend | None = None,
        index_subjects: bool = True,
        index_objects: bool = True,
        config: EngineConfig | None = None,
    ) -> None:
        self.backend = backend if backend is not None else MiniRelBackend()
        self.index_subjects = index_subjects
        self.index_objects = index_objects
        self.tables: dict[str, str] = {}
        self.stats = DatasetStatistics()
        self.config = config or EngineConfig(merge=False)
        # Survives engine rebuilds; stats-epoch keying invalidates stale plans.
        self._plan_cache = QueryCache(self.config.cache_size)
        self._engine: SparqlEngine | None = None
        self._counter = 0

    @classmethod
    def from_graph(cls, graph: Graph, **kwargs) -> "VerticalStore":
        store = cls(**kwargs)
        store.load_graph(graph)
        return store

    def _table_for(self, predicate: str, create: bool = True) -> str | None:
        table = self.tables.get(predicate)
        if table is None and create:
            self._counter += 1
            table = f"VP{self._counter}"
            self.backend.create_table(
                table, [(ENTRY, ColumnType.TEXT), (VAL, ColumnType.TEXT)]
            )
            if self.index_subjects:
                self.backend.create_index(f"{table}_entry", table, [ENTRY])
            if self.index_objects:
                self.backend.create_index(f"{table}_val", table, [VAL])
            self.tables[predicate] = table
        return table

    def load_graph(self, graph: Graph, top_k_stats: int = 1000) -> None:
        by_predicate: dict[str, list[tuple[str, str]]] = {}
        for triple in graph:
            by_predicate.setdefault(triple.predicate.value, []).append(
                (term_key(triple.subject), term_key(triple.object))
            )
        for predicate, rows in by_predicate.items():
            self.backend.insert_many(self._table_for(predicate), rows)
        fresh = DatasetStatistics.from_graph(graph, top_k=top_k_stats)
        fresh.epoch = self.stats.epoch + 1  # invalidates cached plans
        self.stats = fresh
        self._engine = None

    def add(self, triple: Triple) -> None:
        self.backend.insert_many(
            self._table_for(triple.predicate.value),
            [(term_key(triple.subject), term_key(triple.object))],
        )
        self.stats.record_triple(
            term_key(triple.subject), triple.predicate.value, term_key(triple.object)
        )
        self.stats.bump_epoch()
        self._engine = None

    @property
    def engine(self) -> SparqlEngine:
        if self._engine is None:
            self._engine = SparqlEngine(
                backend=self.backend,
                emitter=VerticalEmitter(self.tables),
                stats=self.stats,
                config=self.config,
                cache=self._plan_cache,
            )
        return self._engine

    def query(self, sparql: str, timeout: float | None = None) -> SelectResult:
        return self.engine.query(sparql, timeout=timeout)

    def cache_info(self) -> CacheInfo:
        """Plan-cache counters for this store's persistent cache."""
        return self._plan_cache.info()

    def explain(self, sparql: str) -> str:
        return self.engine.explain(sparql)
