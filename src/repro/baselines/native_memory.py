"""A native in-memory RDF store: the stand-in for the paper's native
competitors (RDF-3X / Jena TDB / Sesame class systems).

Design follows the published recipes those systems share:

* **hexastore-style permutation indexes** (Weiss et al.) — SPO, POS, OSP
  two-level dictionaries give constant-time lookups for every bound-position
  combination;
* **bottom-up BGP optimization** (Stocker et al., RDF-3X) — before
  evaluating a conjunctive group, triple patterns are greedily reordered by
  estimated cardinality given the variables bound so far, using exact index
  counts. This is precisely the per-triple, selectivity-driven optimization
  style the paper contrasts its flow-based optimizer against.

UNION / OPTIONAL / FILTER semantics reuse the reference algebra; evaluation
adds a cooperative deadline so the harness can classify timeouts.
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Iterable

from ..rdf.graph import Graph
from ..rdf.terms import Term, Triple, URI
from ..relational.errors import QueryTimeout
from ..sparql.algebra import normalize
from ..sparql.ast import (
    AskQuery,
    GroupPattern,
    OptionalPattern,
    SelectQuery,
    TriplePattern,
    UnionPattern,
    Var,
)
from ..sparql.parser import parse_sparql
from ..sparql.reference import Bindings, _filter_passes, _substitute
from ..sparql.results import SelectResult, project_rows
from ..update.apply import UpdateResult, apply_update
from ..update.parser import parse_update


class HexastoreIndexes:
    """Three two-level permutation indexes over a triple set."""

    def __init__(self) -> None:
        self.sp: dict[Term, dict[URI, set[Term]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self.po: dict[URI, dict[Term, set[Term]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self.os: dict[Term, dict[Term, set[URI]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self.p_count: dict[URI, int] = defaultdict(int)
        self.total = 0

    def add(self, triple: Triple) -> bool:
        subject, predicate, obj = triple.subject, triple.predicate, triple.object
        if obj in self.sp[subject].get(predicate, ()):  # duplicate
            return False
        self.sp[subject][predicate].add(obj)
        self.po[predicate][subject].add(obj)
        self.os[obj][subject].add(predicate)
        self.p_count[predicate] += 1
        self.total += 1
        return True

    def remove(self, triple: Triple) -> bool:
        subject, predicate, obj = triple.subject, triple.predicate, triple.object
        by_pred = self.sp.get(subject)
        if not by_pred or obj not in by_pred.get(predicate, ()):
            return False
        by_pred[predicate].discard(obj)
        if not by_pred[predicate]:
            del by_pred[predicate]
            if not by_pred:
                del self.sp[subject]
        self.po[predicate][subject].discard(obj)
        if not self.po[predicate][subject]:
            del self.po[predicate][subject]
            if not self.po[predicate]:
                del self.po[predicate]
        self.os[obj][subject].discard(predicate)
        if not self.os[obj][subject]:
            del self.os[obj][subject]
            if not self.os[obj]:
                del self.os[obj]
        self.p_count[predicate] -= 1
        if not self.p_count[predicate]:
            del self.p_count[predicate]
        self.total -= 1
        return True

    # ------------------------------------------------------------- matching

    def match(
        self, subject: Term | None, predicate: URI | None, obj: Term | None
    ) -> Iterable[tuple[Term, URI, Term]]:
        if subject is not None:
            by_pred = self.sp.get(subject)
            if not by_pred:
                return
            predicates = [predicate] if predicate is not None else list(by_pred)
            for p in predicates:
                for o in by_pred.get(p, ()):
                    if obj is None or obj == o:
                        yield (subject, p, o)
            return
        if obj is not None:
            by_subj = self.os.get(obj)
            if not by_subj:
                return
            for s, predicates in by_subj.items():
                for p in predicates:
                    if predicate is None or predicate == p:
                        yield (s, p, obj)
            return
        if predicate is not None:
            for s, objects in self.po.get(predicate, {}).items():
                for o in objects:
                    yield (s, predicate, o)
            return
        for s, by_pred in self.sp.items():
            for p, objects in by_pred.items():
                for o in objects:
                    yield (s, p, o)

    # ----------------------------------------------------------- estimates

    def cardinality(
        self, subject: Term | None, predicate: URI | None, obj: Term | None
    ) -> float:
        """Exact-ish cardinality estimate from the index shapes."""
        if subject is not None and predicate is not None and obj is not None:
            return 1.0
        if subject is not None:
            by_pred = self.sp.get(subject)
            if not by_pred:
                return 0.0
            if predicate is not None:
                return float(len(by_pred.get(predicate, ())))
            return float(sum(len(objects) for objects in by_pred.values()))
        if obj is not None:
            by_subj = self.os.get(obj)
            if not by_subj:
                return 0.0
            return float(sum(len(preds) for preds in by_subj.values()))
        if predicate is not None:
            return float(self.p_count.get(predicate, 0))
        return float(self.total)


class NativeMemoryStore:
    """The runnable native baseline."""

    name = "native-memory"

    def __init__(self, optimize_bgp: bool = True) -> None:
        self.indexes = HexastoreIndexes()
        self.optimize_bgp = optimize_bgp

    @classmethod
    def from_graph(cls, graph: Graph, **kwargs) -> "NativeMemoryStore":
        store = cls(**kwargs)
        store.load_graph(graph)
        return store

    def load_graph(self, graph: Graph) -> None:
        for triple in graph:
            self.indexes.add(triple)

    def add(self, triple: Triple) -> bool:
        return self.indexes.add(triple)

    def remove(self, triple: Triple) -> bool:
        return self.indexes.remove(triple)

    def update(self, sparql) -> UpdateResult:
        """Execute a SPARQL Update request (text or parsed) against the
        permutation indexes — the same executor the DB2RDF store runs, so
        write semantics are differentially testable across engines."""
        request = sparql if not isinstance(sparql, str) else parse_update(sparql)
        return apply_update(request, self)

    # ------------------------------------------------------------ querying

    def query(self, sparql: str, timeout: float | None = None) -> SelectResult:
        parsed = parse_sparql(sparql)
        if isinstance(parsed, AskQuery):
            select = SelectQuery(variables=None, where=parsed.where, limit=1)
        else:
            select = parsed
        return self._select(select, timeout)

    def select(self, query: SelectQuery) -> SelectResult:
        """Evaluate a parsed SELECT query (the update executor's read hook)."""
        return self._select(query, None)

    def _select(self, select: SelectQuery, timeout: float | None) -> SelectResult:
        deadline = time.monotonic() + timeout if timeout is not None else None
        select = normalize(select)
        evaluator = _Evaluator(self.indexes, self.optimize_bgp, deadline)
        solutions = evaluator.group(select.where, [{}])
        solutions = _sort(solutions, select)
        variables = select.projected_variables()
        rows = project_rows(variables, solutions)
        if select.distinct or select.reduced:
            rows = list(dict.fromkeys(rows))
        start = select.offset or 0
        if select.limit is not None:
            rows = rows[start:start + select.limit]
        elif start:
            rows = rows[start:]
        return SelectResult(variables, rows)


def _sort(solutions: list[Bindings], query: SelectQuery) -> list[Bindings]:
    from ..sparql.reference import _sort_solutions

    return _sort_solutions(solutions, query)


class _Evaluator:
    def __init__(
        self, indexes: HexastoreIndexes, optimize: bool, deadline: float | None
    ) -> None:
        self.indexes = indexes
        self.optimize = optimize
        self.deadline = deadline
        self._ticks = 0

    def _tick(self) -> None:
        if self.deadline is None:
            return
        self._ticks += 1
        if self._ticks >= 2048:
            self._ticks = 0
            if time.monotonic() > self.deadline:
                raise QueryTimeout("native store query exceeded its deadline")

    # --------------------------------------------------------------- group

    def group(self, group: GroupPattern, inputs: list[Bindings]) -> list[Bindings]:
        elements = list(group.elements)
        if self.optimize:
            elements = self._reorder(elements)
        solutions = inputs
        for element in elements:
            if isinstance(element, TriplePattern):
                solutions = self._triple(element, solutions)
            elif isinstance(element, GroupPattern):
                solutions = self.group(element, solutions)
            elif isinstance(element, UnionPattern):
                solutions = [
                    extended
                    for bindings in solutions
                    for branch in element.branches
                    for extended in self.group(branch, [bindings])
                ]
            elif isinstance(element, OptionalPattern):
                next_solutions: list[Bindings] = []
                for bindings in solutions:
                    extensions = self.group(element.pattern, [bindings])
                    if extensions:
                        next_solutions.extend(extensions)
                    else:
                        next_solutions.append(bindings)
                solutions = next_solutions
            else:
                raise TypeError(f"unknown element {element!r}")
        for condition in group.filters:
            solutions = [
                bindings for bindings in solutions if _filter_passes(condition, bindings)
            ]
        return solutions

    def _reorder(self, elements: list) -> list:
        """Greedy bottom-up BGP ordering: repeatedly pick the cheapest
        triple given the variables bound so far. Non-triple elements keep
        their relative (textual) order and run after the triples, except
        OPTIONALs which always stay last."""
        triples = [e for e in elements if isinstance(e, TriplePattern)]
        composites = [
            e
            for e in elements
            if not isinstance(e, (TriplePattern, OptionalPattern))
        ]
        optionals = [e for e in elements if isinstance(e, OptionalPattern)]

        ordered: list = []
        bound: set[str] = set()
        remaining = list(triples)
        while remaining:
            best = min(remaining, key=lambda t: self._estimate(t, bound))
            remaining.remove(best)
            ordered.append(best)
            bound |= best.variables()
        return ordered + composites + optionals

    def _estimate(self, triple: TriplePattern, bound: set[str]) -> float:
        subject = None if isinstance(triple.subject, Var) else triple.subject
        predicate = (
            None if isinstance(triple.predicate, Var) else triple.predicate
        )
        obj = None if isinstance(triple.object, Var) else triple.object
        base = self.indexes.cardinality(subject, predicate, obj)
        # Bound variables shrink the result by rough independence factors.
        shrink = 1.0
        if isinstance(triple.subject, Var) and triple.subject.name in bound:
            shrink *= 0.1
        if isinstance(triple.object, Var) and triple.object.name in bound:
            shrink *= 0.1
        if isinstance(triple.predicate, Var) and triple.predicate.name in bound:
            shrink *= 0.5
        return max(base * shrink, 0.001)

    # -------------------------------------------------------------- triple

    def _triple(
        self, pattern: TriplePattern, solutions: list[Bindings]
    ) -> list[Bindings]:
        out: list[Bindings] = []
        for bindings in solutions:
            subject = _substitute(pattern.subject, bindings)
            predicate = _substitute(pattern.predicate, bindings)
            obj = _substitute(pattern.object, bindings)
            if predicate is not None and not isinstance(predicate, URI):
                continue
            for s, p, o in self.indexes.match(subject, predicate, obj):
                self._tick()
                extended = dict(bindings)
                consistent = True
                for position, value in (
                    (pattern.subject, s),
                    (pattern.predicate, p),
                    (pattern.object, o),
                ):
                    if isinstance(position, Var):
                        existing = extended.get(position.name)
                        if existing is None:
                            extended[position.name] = value
                        elif existing != value:
                            consistent = False
                            break
                if consistent:
                    out.append(extended)
        return out
