"""The PRBench scenario: RDF as the integration layer across software tools.

The paper's private benchmark came from exactly this use case — bug
trackers, requirement managers, and test tools each emit artifacts with
their own vocabulary; RDF's schema-freedom lets one store integrate them
all, and SPARQL joins across tool boundaries. This example runs the
cross-tool traceability queries a release manager would ask.

Run with:  python examples/tool_integration.py
"""

from repro import RdfStore, SqliteBackend
from repro.workloads import prbench


def main() -> None:
    data = prbench.generate(target_triples=25_000)
    # sqlite3 backend this time — same SQL, different engine.
    store = RdfStore.from_graph(data.graph, backend=SqliteBackend())
    print(f"integrated {len(data.graph)} triples from 5 tools\n")

    prefix = (
        "PREFIX pr: <http://example.org/pr/> "
        "PREFIX dc: <http://purl.org/dc/elements/1.1/> "
        "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>"
    )

    # Traceability: bugs that have BOTH a validating test and a fixing
    # change set (three entities from three different tools).
    traced = store.query(
        f"""{prefix} SELECT ?bug ?test ?change WHERE {{
            ?bug rdf:type pr:BugReport .
            ?test pr:validates ?bug .
            ?change pr:implements ?bug
        }} LIMIT 5"""
    )
    print("fully traced bugs (bug / test / change):")
    for bug, test, change in traced:
        print(f"  {str(bug).split('/')[-1]:>8} <- {str(test).split('/')[-1]:>8}"
              f" / {str(change).split('/')[-1]}")

    # Open blockers: open bugs blocked by other open bugs.
    blockers = store.query(
        f"""{prefix} SELECT ?bug ?blocker WHERE {{
            ?bug pr:blockedBy ?blocker .
            ?bug pr:state "open" .
            ?blocker pr:state "open"
        }}"""
    )
    print(f"\nopen bugs blocked by open bugs: {len(blockers)}")

    # Per-creator triage load, with optional severity.
    triage = store.query(
        f"""{prefix} SELECT ?who ?bug ?sev WHERE {{
            ?bug rdf:type pr:BugReport .
            ?bug dc:creator ?who .
            ?bug pr:state "open" .
            OPTIONAL {{ ?bug pr:severity ?sev }}
        }} ORDER BY ?who LIMIT 8"""
    )
    print("\nopen-bug triage sample (creator / bug / severity):")
    for who, bug, severity in triage:
        print(
            f"  {str(who).split('/')[-1]:<8} "
            f"{str(bug).split('/')[-1]:<10} {severity or '-'}"
        )

    # The paper's wide-UNION query: one conjunctive branch per
    # (tool, state) pair — PRBench had unions of 100 conjunctive queries.
    wide = prbench.queries(wide_union_branches=25)["PQ5"]
    result = store.query(wide, timeout=30.0)
    print(f"\nwide union (25 branches): {len(result)} artifact/creator rows")

    # Timeouts classify runaway queries instead of hanging the harness.
    from repro.relational.errors import QueryTimeout

    try:
        store.query(
            f"""{prefix} SELECT ?a ?b ?c ?d WHERE {{
                ?a pr:relatesTo ?x . ?b pr:relatesTo ?x .
                ?c pr:relatesTo ?x . ?d pr:relatesTo ?x
            }}""",
            timeout=0.05,
        )
        print("\nrunaway query finished within its budget")
    except QueryTimeout:
        print("\nrunaway 4-way self-join was cancelled by the 50 ms deadline")


if __name__ == "__main__":
    main()
