"""Exploring a DBpedia-scale schema: dynamic predicates, coloring limits,
and variable-predicate queries.

DBpedia's challenge (paper §2): ~54k predicates with power-law usage — no
fixed relational schema fits. This example generates a synthetic DBpedia,
shows how coloring covers the frequent predicates while hashing absorbs the
tail, and runs describe-style queries that no per-predicate layout handles
gracefully.

Run with:  python examples/dbpedia_explorer.py
"""

from repro import RdfStore
from repro.core.coloring import direct_interference_graph, greedy_color
from repro.workloads import dbpedia


def main() -> None:
    data = dbpedia.generate(target_triples=20_000, tail_predicates=300)
    graph = data.graph
    predicates = len(set(graph.predicates()))
    print(f"generated {len(graph)} triples, {predicates} distinct predicates")

    # How many columns would a naive one-column-per-predicate layout need?
    interference = direct_interference_graph(graph)
    unlimited = greedy_color(interference)
    capped = greedy_color(interference, max_colors=60)
    print(f"one-column-per-predicate would need: {predicates} columns")
    print(f"greedy coloring needs:               {unlimited.colors_used} columns")
    print(
        f"capped at 60 columns it still covers  "
        f"{100 * capped.covered_triple_fraction:.1f}% of triples "
        f"({len(capped.uncovered)} rare predicates fall back to hashing)"
    )

    store = RdfStore.from_graph(graph, max_columns=60)
    print(
        f"\nloaded: DPH={store.schema.direct_columns} columns, "
        f"{store.direct_meta.spill_rows} spill rows "
        f"({100 * store.direct_meta.spill_rows / max(store.direct_meta.rows, 1):.2f}%)"
    )

    # DESCRIBE-style query: all properties of one entity. On the
    # entity-oriented layout this is one DPH row; on a predicate-oriented
    # layout it is a UNION over every predicate table.
    describe = "SELECT ?p ?o WHERE { <http://dbpedia.org/resource/Entity_0> ?p ?o }"
    print("\nEntity_0 description:")
    for p, o in store.query(describe):
        print(f"  {p} -> {o}")

    # Who was born after 1950?  (typed-literal numeric FILTER)
    births = """
        PREFIX dbo: <http://dbpedia.org/ontology/>
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        SELECT ?s ?date WHERE {
            ?s rdf:type dbo:Person .
            ?s dbo:birthDate ?date
            FILTER (?date > 1950)
        } ORDER BY ?date LIMIT 5
    """
    print("\nfirst five people born after 1950:")
    for s, date in store.query(births):
        print(f"  {s}  ({date})")

    # Union over alternative predicates, with optional labels.
    founders = """
        PREFIX dbo: <http://dbpedia.org/ontology/>
        PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
        SELECT ?org ?person ?label WHERE {
            { ?org dbo:foundedBy ?person } UNION { ?org dbo:keyPerson ?person }
            OPTIONAL { ?org rdfs:label ?label }
        } LIMIT 5
    """
    print("\norganizations and their people:")
    for org, person, label in store.query(founders):
        print(f"  {org} | {person} | {label}")


if __name__ == "__main__":
    main()
