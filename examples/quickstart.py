"""Quickstart: load RDF, run SPARQL, peek at the generated SQL.

Run with:  python examples/quickstart.py
"""

from repro import Graph, RdfStore, Triple, URI

# The paper's Figure 1(a) sample of DBpedia.
DATA = [
    ("Charles_Flint", "born", "1850"),
    ("Charles_Flint", "died", "1934"),
    ("Charles_Flint", "founder", "IBM"),
    ("Larry_Page", "born", "1973"),
    ("Larry_Page", "founder", "Google"),
    ("Larry_Page", "board", "Google"),
    ("Larry_Page", "home", "Palo_Alto"),
    ("Android", "developer", "Google"),
    ("Android", "version", "4.1"),
    ("Android", "kernel", "Linux"),
    ("Android", "preceded", "4.0"),
    ("Android", "graphics", "OpenGL"),
    ("Google", "industry", "Software"),
    ("Google", "industry", "Internet"),
    ("Google", "employees", "54604"),
    ("Google", "HQ", "Mountain_View"),
    ("IBM", "industry", "Software"),
    ("IBM", "industry", "Hardware"),
    ("IBM", "industry", "Services"),
    ("IBM", "employees", "433362"),
    ("IBM", "HQ", "Armonk"),
]


def main() -> None:
    graph = Graph(Triple(URI(s), URI(p), URI(o)) for s, p, o in DATA)

    # from_graph colors the predicate interference graph (Figure 4: the 13
    # predicates fit in 5 columns) and bulk-loads DPH/DS/RPH/RS.
    store = RdfStore.from_graph(graph)
    report = store.report()
    print(f"loaded {report.triples} triples")
    print(
        f"DPH: {report.direct.entities} entities in "
        f"{store.schema.direct_columns} predicate columns, "
        f"{report.direct.spill_rows} spill rows"
    )
    print(f"multi-valued predicates: {sorted(report.direct.multivalued)}\n")

    # A star query: who is in the software industry AND headquartered where?
    star = """
        SELECT ?company ?hq WHERE {
            ?company <industry> <Software> .
            ?company <HQ> ?hq
        }
    """
    print("software companies and their HQs:")
    for company, hq in store.query(star):
        print(f"  {company}  ->  {hq}")

    # The paper's running query (Figure 6a): founders or board members of
    # software companies, the products they develop, optional headcount.
    fig6 = """
        SELECT ?x ?y ?z ?m WHERE {
            ?x <home> <Palo_Alto> .
            { ?x <founder> ?y } UNION { ?x <board> ?y }
            ?y <industry> <Software> .
            ?z <developer> ?y .
            OPTIONAL { ?y <employees> ?m }
        }
    """
    print("\nFigure 6 query:")
    for row in store.query(fig6):
        print(" ", [str(v) if v else None for v in row])

    # The store is a SPARQL-to-SQL compiler: inspect the generated SQL
    # (Figure 13's CTE pipeline, with the merged star accesses).
    print("\ngenerated SQL for the star query:")
    print(store.explain(star))

    # Incremental insert works too (the §2.2 hashing path).
    store.add(Triple(URI("IBM"), URI("industry"), URI("Consulting")))
    result = store.query("SELECT ?i WHERE { <IBM> <industry> ?i }")
    print(f"\nIBM industries after insert: {sorted(str(r[0]) for r in result)}")


if __name__ == "__main__":
    main()
