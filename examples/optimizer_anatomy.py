"""Anatomy of the hybrid optimizer: watch a query move through the
Figure 5 pipeline — parse tree, data-flow graph, optimal flow tree,
execution tree, merged plan, SQL.

Run with:  python examples/optimizer_anatomy.py
"""

from repro import Graph, RdfStore, Triple, URI
from repro.core.stats import DatasetStatistics
from repro.sparql.algebra import PatternTree, normalize
from repro.sparql.optimizer.dataflow import (
    build_data_flow_graph,
    optimal_flow_tree,
)
from repro.sparql.optimizer.merge import MergeContext, merge_execution_tree
from repro.sparql.optimizer.planbuilder import build_execution_tree
from repro.sparql.parser import parse_sparql

DATA = [
    ("Charles_Flint", "founder", "IBM"),
    ("Larry_Page", "founder", "Google"),
    ("Larry_Page", "member", "Google"),
    ("Larry_Page", "home", "Palo_Alto"),
    ("Android", "developer", "Google"),
    ("Google", "industry", "Software"),
    ("Google", "revenue", "89B"),
    ("Google", "employees", "54604"),
    ("IBM", "industry", "Software"),
    ("IBM", "revenue", "79B"),
]

# Figure 6(a): the paper's running query.
QUERY = """
SELECT * WHERE {
  ?x <home> <Palo_Alto> .
  { ?x <founder> ?y } UNION { ?x <member> ?y }
  ?y <industry> <Software> .
  ?z <developer> ?y .
  ?y <revenue> ?n .
  OPTIONAL { ?y <employees> ?m }
}
"""


def show_plan(node, depth=0):
    from repro.sparql.optimizer.merge import MergedNode
    from repro.sparql.optimizer.planbuilder import (
        AccessNode, AndNode, EmptyNode, FilterNode, OptNode, OrNode,
    )

    pad = "  " * depth
    if isinstance(node, (AccessNode, MergedNode)):
        print(f"{pad}{node!r}")
    elif isinstance(node, AndNode):
        print(f"{pad}AND")
        show_plan(node.left, depth + 1)
        show_plan(node.right, depth + 1)
    elif isinstance(node, OrNode):
        print(f"{pad}OR")
        for branch in node.branches:
            show_plan(branch, depth + 1)
    elif isinstance(node, OptNode):
        print(f"{pad}OPTIONAL-JOIN")
        show_plan(node.left, depth + 1)
        show_plan(node.right, depth + 1)
    elif isinstance(node, FilterNode):
        print(f"{pad}FILTER {node.filters}")
        show_plan(node.child, depth + 1)
    elif isinstance(node, EmptyNode):
        print(f"{pad}(unit)")


def main() -> None:
    graph = Graph(Triple(URI(s), URI(p), URI(o)) for s, p, o in DATA)
    stats = DatasetStatistics.from_graph(graph)

    query = normalize(parse_sparql(QUERY))
    tree = PatternTree.build(query.where)
    triples = list(query.where.triples())
    print(f"query has {len(triples)} triple patterns:")
    for i, triple in enumerate(triples, 1):
        print(f"  t{i}: {triple}")

    # --- Data Flow Builder (§3.1.1) ---------------------------------
    flow_graph = build_data_flow_graph(triples, tree, stats)
    print(
        f"\ndata flow graph: {len(flow_graph.nodes)} (triple, method) nodes, "
        f"{sum(len(e) for e in flow_graph.edges.values())} edges, "
        f"{len(flow_graph.root_edges)} root edges"
    )

    flow = optimal_flow_tree(flow_graph)
    print("\noptimal flow tree (greedy, Figure 9):")
    for rank, node in enumerate(flow.order):
        parent = flow.parent.get(node)
        arrow = f" <- {parent!r}" if parent else " <- root"
        cost = flow_graph.costs[node]
        print(f"  {rank}: {node!r}  cost={cost:.1f}{arrow}")

    # --- Query Plan Builder (§3.1.2) --------------------------------
    execution = build_execution_tree(query.where, flow)
    print("\nexecution tree (late fusing, Figure 10):")
    show_plan(execution)

    # --- Node merging (§3.2.1) --------------------------------------
    ctx = MergeContext.build(tree, triples)
    plan = merge_execution_tree(execution, ctx)
    print("\nmerged query plan (Figure 11):")
    show_plan(plan)

    # --- SQL (§3.2.2) -------------------------------------------------
    store = RdfStore.from_graph(graph)
    print("\ngenerated SQL (Figure 13):")
    print(store.explain(QUERY))

    print("\nanswers:")
    for row in store.query(QUERY):
        print(" ", [str(v) if v else None for v in row])


if __name__ == "__main__":
    main()
