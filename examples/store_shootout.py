"""A miniature Figure 15: compare the five stores on a LUBM workload.

Run with:  python examples/store_shootout.py
"""

from repro import RdfStore
from repro.baselines import (
    NativeMemoryStore,
    TripleStore,
    TypeOrientedStore,
    VerticalStore,
)
from repro.workloads import lubm, runner


def main() -> None:
    data = lubm.generate(universities=2)
    graph = data.graph
    queries = lubm.queries()
    print(f"LUBM: {len(graph)} triples, {len(queries)} queries\n")

    oracle = NativeMemoryStore.from_graph(graph)
    stores = {
        "DB2RDF": RdfStore.from_graph(graph),
        "triple-store": TripleStore.from_graph(graph),
        "pred-oriented": VerticalStore.from_graph(graph),
        "type-oriented": TypeOrientedStore.from_graph(graph),
        "native-mem": oracle,
    }

    summaries = runner.run_benchmark(
        stores, queries, oracle, timeout=30.0, runs=3
    )
    print(runner.format_summary_table("LUBM", summaries))
    print()
    print(runner.format_per_query_table(summaries, list(queries)))


if __name__ == "__main__":
    main()
