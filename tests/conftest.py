"""Shared fixtures: the paper's running example and helpers."""

from __future__ import annotations

import pytest

from repro import Graph, Triple, URI

#: Figure 1(a): the DBpedia sample used throughout the paper.
FIGURE1_DATA = [
    ("Charles_Flint", "born", "1850"),
    ("Charles_Flint", "died", "1934"),
    ("Charles_Flint", "founder", "IBM"),
    ("Larry_Page", "born", "1973"),
    ("Larry_Page", "founder", "Google"),
    ("Larry_Page", "board", "Google"),
    ("Larry_Page", "home", "Palo_Alto"),
    ("Android", "developer", "Google"),
    ("Android", "version", "4.1"),
    ("Android", "kernel", "Linux"),
    ("Android", "preceded", "4.0"),
    ("Android", "graphics", "OpenGL"),
    ("Google", "industry", "Software"),
    ("Google", "industry", "Internet"),
    ("Google", "employees", "54604"),
    ("Google", "HQ", "Mountain_View"),
    ("IBM", "industry", "Software"),
    ("IBM", "industry", "Hardware"),
    ("IBM", "industry", "Services"),
    ("IBM", "employees", "433362"),
    ("IBM", "HQ", "Armonk"),
]


def figure1_graph() -> Graph:
    return Graph(
        Triple(URI(s), URI(p), URI(o)) for s, p, o in FIGURE1_DATA
    )


@pytest.fixture
def fig1_graph() -> Graph:
    return figure1_graph()


#: Figure 6(a): the paper's running query (with valid IRIs).
FIGURE6_QUERY = """
SELECT ?x ?y ?z ?n ?m WHERE {
  ?x <home> <Palo_Alto> .
  { ?x <founder> ?y } UNION { ?x <board> ?y }
  ?y <industry> <Software> .
  ?z <developer> ?y .
  ?y <employees> ?n .
  OPTIONAL { ?y <HQ> ?m }
}
"""
