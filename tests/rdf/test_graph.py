"""In-memory graph: indexes, matching, predicate sets."""

from repro import Graph, Triple, URI
from repro.rdf.terms import Literal


def t(s, p, o):
    return Triple(URI(s), URI(p), URI(o))


class TestGraphBasics:
    def test_add_and_len(self):
        g = Graph()
        assert g.add(t("a", "p", "b"))
        assert not g.add(t("a", "p", "b"))  # duplicate
        assert len(g) == 1

    def test_discard(self):
        g = Graph([t("a", "p", "b")])
        assert g.discard(t("a", "p", "b"))
        assert not g.discard(t("a", "p", "b"))
        assert len(g) == 0
        assert list(g.match(subject=URI("a"))) == []

    def test_contains(self):
        g = Graph([t("a", "p", "b")])
        assert t("a", "p", "b") in g
        assert t("a", "p", "c") not in g


class TestMatch:
    def setup_method(self):
        self.g = Graph(
            [
                t("a", "p", "b"),
                t("a", "q", "c"),
                t("d", "p", "b"),
                t("d", "p", "c"),
            ]
        )

    def test_match_subject(self):
        assert len(list(self.g.match(subject=URI("a")))) == 2

    def test_match_object(self):
        assert len(list(self.g.match(obj=URI("b")))) == 2

    def test_match_predicate(self):
        assert len(list(self.g.match(predicate=URI("p")))) == 3

    def test_match_combined(self):
        matches = list(self.g.match(subject=URI("d"), predicate=URI("p")))
        assert len(matches) == 2

    def test_match_exact(self):
        assert len(list(self.g.match(URI("a"), URI("p"), URI("b")))) == 1
        assert len(list(self.g.match(URI("a"), URI("p"), URI("c")))) == 0

    def test_match_all(self):
        assert len(list(self.g.match())) == 4


class TestPredicateSets:
    def test_by_subject(self, fig1_graph):
        sets = fig1_graph.predicate_sets_by_subject()
        flint = sets[URI("Charles_Flint")]
        assert {p.value for p in flint} == {"born", "died", "founder"}

    def test_by_object(self, fig1_graph):
        sets = fig1_graph.predicate_sets_by_object()
        google = sets[URI("Google")]
        assert {p.value for p in google} == {"founder", "board", "developer"}

    def test_literals_index_as_objects(self):
        g = Graph([Triple(URI("a"), URI("p"), Literal("x"))])
        assert len(list(g.match(obj=Literal("x")))) == 1


class TestFileIO:
    def test_ntriples_round_trip(self, tmp_path, fig1_graph):
        path = tmp_path / "g.nt"
        fig1_graph.to_file(path)
        loaded = Graph.from_file(path)
        assert {t.n3() for t in loaded} == {t.n3() for t in fig1_graph}

    def test_turtle_round_trip(self, tmp_path, fig1_graph):
        path = tmp_path / "g.ttl"
        fig1_graph.to_file(path)
        loaded = Graph.from_file(path)
        assert {t.n3() for t in loaded} == {t.n3() for t in fig1_graph}

    def test_turtle_with_prefixes(self, tmp_path):
        g = Graph([Triple(URI("http://e/s"), URI("http://e/p"), URI("http://e/o"))])
        path = tmp_path / "g.ttl"
        g.to_file(path, prefixes={"ex": "http://e/"})
        assert "ex:s" in path.read_text()
        assert Graph.from_file(path).__len__() == 1
