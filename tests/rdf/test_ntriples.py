"""N-Triples parsing and serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.rdf import ntriples
from repro.rdf.terms import BNode, Literal, Triple, URI, XSD_INTEGER


class TestParseLine:
    def test_simple_triple(self):
        triple = ntriples.parse_line("<s> <p> <o> .")
        assert triple == Triple(URI("s"), URI("p"), URI("o"))

    def test_literal_object(self):
        triple = ntriples.parse_line('<s> <p> "v" .')
        assert triple.object == Literal("v")

    def test_typed_literal(self):
        triple = ntriples.parse_line(f'<s> <p> "5"^^<{XSD_INTEGER}> .')
        assert triple.object == Literal("5", datatype=XSD_INTEGER)

    def test_lang_literal(self):
        triple = ntriples.parse_line('<s> <p> "chat"@fr .')
        assert triple.object == Literal("chat", lang="fr")

    def test_bnode_subject(self):
        triple = ntriples.parse_line("_:b1 <p> <o> .")
        assert triple.subject == BNode("b1")

    def test_escapes(self):
        triple = ntriples.parse_line('<s> <p> "a\\nb\\"c" .')
        assert triple.object == Literal('a\nb"c')

    def test_blank_and_comment_lines(self):
        assert ntriples.parse_line("") is None
        assert ntriples.parse_line("# a comment") is None

    def test_missing_dot_rejected(self):
        with pytest.raises(ntriples.NTriplesError):
            ntriples.parse_line("<s> <p> <o>")

    def test_literal_subject_rejected(self):
        with pytest.raises(ntriples.NTriplesError):
            ntriples.parse_line('"lit" <p> <o> .')

    def test_literal_predicate_rejected(self):
        with pytest.raises(ntriples.NTriplesError):
            ntriples.parse_line('<s> "p" <o> .')

    def test_error_reports_line_number(self):
        with pytest.raises(ntriples.NTriplesError, match="line 2"):
            list(ntriples.parse("<s> <p> <o> .\ngarbage here\n"))


_terms = st.one_of(
    st.from_regex(r"[a-z][a-z0-9/._-]{0,20}", fullmatch=True).map(URI),
    st.text(
        alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=20
    ).map(Literal),
    st.from_regex(r"[A-Za-z0-9_]{1,10}", fullmatch=True).map(BNode),
)


class TestRoundTrip:
    @given(
        st.lists(
            st.tuples(
                st.one_of(
                    st.from_regex(r"[a-z][a-z0-9]{0,10}", fullmatch=True).map(URI),
                    st.from_regex(r"[A-Za-z0-9_]{1,10}", fullmatch=True).map(BNode),
                ),
                st.from_regex(r"[a-z][a-z0-9]{0,10}", fullmatch=True).map(URI),
                _terms,
            ),
            max_size=20,
        )
    )
    def test_serialize_parse_round_trip(self, raw):
        triples = [Triple(s, p, o) for s, p, o in raw]
        text = ntriples.serialize(triples)
        assert list(ntriples.parse(text)) == triples
