"""Turtle-subset parsing and serialization."""

import pytest

from repro.rdf.graph import Graph
from repro.rdf.terms import (
    BNode,
    Literal,
    Triple,
    URI,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_INTEGER,
)
from repro.rdf.turtle import (
    TurtleError,
    load_turtle,
    parse_turtle,
    serialize_turtle,
)


class TestParsing:
    def test_simple_statement(self):
        triples = list(parse_turtle("<s> <p> <o> ."))
        assert triples == [Triple(URI("s"), URI("p"), URI("o"))]

    def test_prefixes(self):
        text = "@prefix ex: <http://e/> . ex:s ex:p ex:o ."
        (triple,) = parse_turtle(text)
        assert triple.subject == URI("http://e/s")

    def test_base(self):
        text = "@base <http://b/> . <s> <p> <o> ."
        (triple,) = parse_turtle(text)
        assert triple.object == URI("http://b/o")

    def test_predicate_and_object_lists(self):
        text = "<s> <p> <a>, <b> ; <q> <c> ."
        triples = list(parse_turtle(text))
        assert len(triples) == 3
        assert {t.predicate.value for t in triples} == {"p", "q"}

    def test_a_keyword(self):
        (triple,) = parse_turtle("<s> a <C> .")
        assert triple.predicate.value.endswith("#type")

    def test_literals(self):
        text = (
            '<s> <p> "plain" . <s> <q> "chat"@fr . '
            '<s> <r> "5"^^<http://www.w3.org/2001/XMLSchema#integer> . '
            "<s> <n> 42 . <s> <d> 4.5 . <s> <b> true ."
        )
        objects = [t.object for t in parse_turtle(text)]
        assert objects[0] == Literal("plain")
        assert objects[1] == Literal("chat", lang="fr")
        assert objects[2] == Literal("5", datatype=XSD_INTEGER)
        assert objects[3] == Literal("42", datatype=XSD_INTEGER)
        assert objects[4] == Literal("4.5", datatype=XSD_DECIMAL)
        assert objects[5] == Literal("true", datatype=XSD_BOOLEAN)

    def test_long_string(self):
        (triple,) = parse_turtle('<s> <p> """multi\nline "quoted"""" .')
        assert triple.object == Literal('multi\nline "quoted"')

    def test_escapes(self):
        (triple,) = parse_turtle('<s> <p> "a\\tb\\"c" .')
        assert triple.object == Literal('a\tb"c')

    def test_blank_nodes(self):
        (triple,) = parse_turtle("_:x <p> _:y .")
        assert triple.subject == BNode("x")
        assert triple.object == BNode("y")

    def test_comments(self):
        triples = list(parse_turtle("# header\n<s> <p> <o> . # trailing"))
        assert len(triples) == 1

    def test_trailing_semicolon(self):
        (triple,) = parse_turtle("<s> <p> <o> ; .")
        assert triple.predicate == URI("p")

    def test_undeclared_prefix_rejected(self):
        with pytest.raises(TurtleError, match="undeclared prefix"):
            list(parse_turtle("nope:s <p> <o> ."))

    def test_missing_dot_rejected(self):
        with pytest.raises(TurtleError):
            list(parse_turtle("<s> <p> <o>"))


class TestSerialization:
    def test_round_trip(self):
        graph = Graph(
            [
                Triple(URI("http://e/s"), URI("http://e/p"), URI("http://e/o")),
                Triple(URI("http://e/s"), URI("http://e/p"), Literal("x")),
                Triple(URI("http://e/s"), URI("http://e/q"), Literal("5", datatype=XSD_INTEGER)),
                Triple(URI("http://e/t"), URI("http://e/p"), Literal("hé", lang="fr")),
            ]
        )
        text = serialize_turtle(graph, {"ex": "http://e/"})
        assert "ex:s" in text and ";" in text
        reparsed = load_turtle(text)
        assert {t.n3() for t in reparsed} == {t.n3() for t in graph}

    def test_type_abbreviated_as_a(self):
        graph = Graph(
            [
                Triple(
                    URI("http://e/s"),
                    URI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
                    URI("http://e/C"),
                )
            ]
        )
        text = serialize_turtle(graph, {"ex": "http://e/"})
        assert " a ex:C" in text

    def test_store_loads_turtle(self):
        from repro import RdfStore

        graph = load_turtle(
            "@prefix ex: <http://e/> . ex:IBM ex:industry ex:Software, ex:Services ."
        )
        store = RdfStore.from_graph(graph)
        result = store.query(
            "PREFIX ex: <http://e/> SELECT ?i WHERE { ex:IBM ex:industry ?i }"
        )
        assert len(result) == 2
