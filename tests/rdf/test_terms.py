"""RDF term model: construction, N3 rendering, key round-trips."""

import pytest

from repro.rdf.terms import (
    BNode,
    Literal,
    Triple,
    URI,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_INTEGER,
    XSD_STRING,
    term_from_key,
    term_key,
)


class TestUri:
    def test_n3(self):
        assert URI("http://x/a").n3() == "<http://x/a>"

    def test_equality_and_hash(self):
        assert URI("http://x/a") == URI("http://x/a")
        assert hash(URI("http://x/a")) == hash(URI("http://x/a"))
        assert URI("http://x/a") != URI("http://x/b")


class TestLiteral:
    def test_plain_n3(self):
        assert Literal("hello").n3() == '"hello"'

    def test_escaping(self):
        assert Literal('he said "hi"\n').n3() == '"he said \\"hi\\"\\n"'

    def test_lang_tag(self):
        assert Literal("chat", lang="fr").n3() == '"chat"@fr'

    def test_typed(self):
        assert (
            Literal("5", datatype=XSD_INTEGER).n3()
            == f'"5"^^<{XSD_INTEGER}>'
        )

    def test_xsd_string_renders_plain(self):
        assert Literal("x", datatype=XSD_STRING).n3() == '"x"'

    def test_both_lang_and_datatype_rejected(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=XSD_INTEGER, lang="en")

    def test_to_python(self):
        assert Literal("5", datatype=XSD_INTEGER).to_python() == 5
        assert Literal("5.5", datatype=XSD_DECIMAL).to_python() == 5.5
        assert Literal("true", datatype=XSD_BOOLEAN).to_python() is True
        assert Literal("plain").to_python() == "plain"

    def test_is_numeric(self):
        assert Literal("5", datatype=XSD_INTEGER).is_numeric
        assert not Literal("5").is_numeric


class TestTripleAndKeys:
    def test_triple_iteration(self):
        t = Triple(URI("s"), URI("p"), URI("o"))
        assert list(t) == [URI("s"), URI("p"), URI("o")]

    def test_triple_n3(self):
        t = Triple(URI("s"), URI("p"), Literal("v"))
        assert t.n3() == '<s> <p> "v" .'

    @pytest.mark.parametrize(
        "term",
        [
            URI("http://example.org/x"),
            BNode("b1"),
            Literal("plain"),
            Literal("5", datatype=XSD_INTEGER),
            Literal("bonjour", lang="fr"),
            Literal('tricky "quote" \\slash'),
        ],
    )
    def test_key_round_trip(self, term):
        assert term_from_key(term_key(term)) == term

    def test_keys_distinguish_literal_kinds(self):
        keys = {
            term_key(Literal("5")),
            term_key(Literal("5", datatype=XSD_INTEGER)),
            term_key(Literal("5", lang="en")),
            term_key(URI("5")),
        }
        assert len(keys) == 4

    def test_uri_key_is_bare(self):
        assert term_key(URI("http://x/a")) == "http://x/a"
