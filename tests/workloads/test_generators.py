"""Workload generators: determinism, scale, and structural claims."""

import pytest

from repro.rdf.terms import URI
from repro.workloads import dbpedia, lubm, microbench, prbench, sp2bench


class TestMicrobench:
    def test_deterministic(self):
        a = microbench.generate(target_triples=2000, seed=1)
        b = microbench.generate(target_triples=2000, seed=1)
        assert sorted(t.n3() for t in a.graph) == sorted(t.n3() for t in b.graph)

    def test_scale_roughly_honored(self):
        data = microbench.generate(target_triples=10_000)
        assert 8_000 <= data.triples <= 12_000

    def test_group_frequencies(self):
        data = microbench.generate(target_triples=20_000)
        total = sum(data.subjects_per_group)
        assert data.subjects_per_group[0] / total == pytest.approx(0.01, abs=0.01)
        assert data.subjects_per_group[2] / total == pytest.approx(0.25, abs=0.02)

    def test_multivalued_predicates_have_three_values(self):
        data = microbench.generate(target_triples=2000)
        subject = next(
            s for s in data.graph.subjects()
            if any(
                t.predicate.value.endswith("MV1")
                for t in data.graph.triples_for_subject(s)
            )
        )
        values = [
            t.object
            for t in data.graph.triples_for_subject(subject)
            if t.predicate.value.endswith("MV1")
        ]
        assert len(values) == microbench.MV_VALUES_PER_PREDICATE

    def test_query_set(self):
        qs = microbench.queries()
        assert len(qs) == 10
        assert "SV1" in qs["Q1"] and "MV4" in qs["Q2"]


class TestLubm:
    def test_deterministic(self):
        a = lubm.generate(universities=1, seed=3)
        b = lubm.generate(universities=1, seed=3)
        assert len(a.graph) == len(b.graph)

    def test_type_skew(self):
        """rdf:type dominates object in-degree, as in real LUBM."""
        data = lubm.generate(universities=1)
        types = data.graph.triples_for_predicate(
            URI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
        )
        assert len(types) > len(data.graph) / 10

    def test_out_degree_around_six(self):
        data = lubm.generate(universities=2)
        sets = data.graph.predicate_sets_by_subject()
        average = len(data.graph) / len(sets)
        assert 4 <= average <= 9  # LUBM's reported avg out-degree is 6

    def test_twelve_queries(self):
        assert len(lubm.queries()) == 12


class TestSp2bench:
    def test_seventeen_queries(self):
        assert len(sp2bench.queries()) == 17

    def test_document_mix(self):
        data = sp2bench.generate(target_triples=5000)
        articles = data.graph.triples_for_object(sp2bench.BENCH.Article)
        inproc = data.graph.triples_for_object(sp2bench.BENCH.Inproceedings)
        assert len(articles) > len(inproc) > 0


class TestDbpedia:
    def test_twenty_queries(self):
        assert len(dbpedia.queries()) == 20

    def test_power_law_out_degree(self):
        data = dbpedia.generate(target_triples=20_000)
        sizes = sorted(
            (len(data.graph.triples_for_subject(s)) for s in data.graph.subjects()),
            reverse=True,
        )
        # heavy tail: the biggest entity is much larger than the median
        assert sizes[0] >= 4 * sizes[len(sizes) // 2]

    def test_many_predicates(self):
        data = dbpedia.generate(target_triples=20_000, tail_predicates=300)
        assert len(set(data.graph.predicates())) > 100


class TestPrbench:
    def test_twentynine_queries(self):
        assert len(prbench.queries()) == 29

    def test_wide_union_scales(self):
        narrow = prbench.queries(wide_union_branches=5)["PQ5"]
        wide = prbench.queries(wide_union_branches=50)["PQ5"]
        assert wide.count("UNION") == 49
        assert narrow.count("UNION") == 4

    def test_cross_references_exist(self):
        data = prbench.generate(target_triples=5000)
        assert len(data.graph.triples_for_predicate(prbench.PR.validates)) > 0
        assert len(data.graph.triples_for_predicate(prbench.PR.implements)) > 0
