"""Integration: every workload query, every store, against the oracle.

This is the repository's end-to-end gate: all 88 benchmark queries across
the five workloads must return reference-identical answers on the DB2RDF
store (both optimizer modes) and the four baselines, at reduced scale.
"""

import pytest

from repro import EngineConfig, RdfStore
from repro.baselines import (
    NativeMemoryStore,
    TripleStore,
    TypeOrientedStore,
    VerticalStore,
)
from repro.sparql import query_graph
from repro.workloads import dbpedia, lubm, microbench, prbench, sp2bench

SCALES = {
    microbench: dict(target_triples=3000),
    lubm: dict(universities=1),
    sp2bench: dict(target_triples=2500),
    dbpedia: dict(target_triples=2500),
    prbench: dict(target_triples=2500),
}


def _expected(graph, sparql):
    result = query_graph(graph, sparql)
    return 1 if result is True else (0 if result is False else len(result))


@pytest.fixture(scope="module", params=list(SCALES), ids=lambda m: m.__name__.split(".")[-1])
def workload(request):
    module = request.param
    data = module.generate(**SCALES[module])
    return module, data.graph, module.queries()


def test_db2rdf_hybrid(workload):
    module, graph, queries = workload
    store = RdfStore.from_graph(graph)
    for name, sparql in queries.items():
        assert len(store.query(sparql)) == _expected(graph, sparql), name


def test_db2rdf_naive_optimizer(workload):
    module, graph, queries = workload
    store = RdfStore.from_graph(graph, config=EngineConfig(optimizer="naive"))
    for name, sparql in queries.items():
        assert len(store.query(sparql)) == _expected(graph, sparql), name


def test_triplestore(workload):
    module, graph, queries = workload
    store = TripleStore.from_graph(graph)
    for name, sparql in queries.items():
        assert len(store.query(sparql)) == _expected(graph, sparql), name


def test_vertical(workload):
    module, graph, queries = workload
    store = VerticalStore.from_graph(graph)
    for name, sparql in queries.items():
        assert len(store.query(sparql)) == _expected(graph, sparql), name


def test_typeoriented(workload):
    module, graph, queries = workload
    store = TypeOrientedStore.from_graph(graph)
    for name, sparql in queries.items():
        assert len(store.query(sparql)) == _expected(graph, sparql), name


def test_native(workload):
    module, graph, queries = workload
    store = NativeMemoryStore.from_graph(graph)
    for name, sparql in queries.items():
        assert len(store.query(sparql)) == _expected(graph, sparql), name
