"""The Figure-15 harness: classification and reporting."""

import pytest

from repro import Graph, RdfStore, Triple, URI
from repro.baselines import NativeMemoryStore
from repro.core.errors import UnsupportedQueryError
from repro.relational.errors import QueryTimeout
from repro.sparql.results import SelectResult
from repro.workloads import runner


def t(s, p, o):
    return Triple(URI(s), URI(p), URI(o))


@pytest.fixture
def small():
    graph = Graph([t("a", "p", "b"), t("b", "p", "c"), t("a", "q", "c")])
    return graph


class _FlakyStore:
    """A stand-in store with controllable failure modes."""

    def __init__(self, mode):
        self.mode = mode

    def query(self, sparql, timeout=None):
        if self.mode == "timeout":
            raise QueryTimeout("too slow")
        if self.mode == "unsupported":
            raise UnsupportedQueryError("no can do")
        if self.mode == "crash":
            raise RuntimeError("boom")
        if self.mode == "wrong":
            return SelectResult(["x"], [])
        return SelectResult(["x"], [(URI("a"),)])


class TestClassification:
    QUERIES = {"q1": "SELECT ?x WHERE { ?x <p> <b> }"}

    def run(self, store):
        expected = {"q1": 1}
        return runner.run_system("sys", store, self.QUERIES, expected, runs=1)

    def test_complete(self):
        summary = self.run(_FlakyStore("ok"))
        assert summary.complete == 1 and summary.error == 0

    def test_timeout(self):
        summary = self.run(_FlakyStore("timeout"))
        assert summary.timeout == 1

    def test_unsupported(self):
        summary = self.run(_FlakyStore("unsupported"))
        assert summary.unsupported == 1

    def test_crash_is_error(self):
        summary = self.run(_FlakyStore("crash"))
        assert summary.error == 1
        assert "boom" in summary.outcomes["q1"].detail

    def test_wrong_count_is_error(self):
        summary = self.run(_FlakyStore("wrong"))
        assert summary.error == 1
        assert summary.outcomes["q1"].detail == "wrong result count"


class TestEndToEnd:
    def test_real_stores(self, small):
        queries = {
            "lookup": "SELECT ?x WHERE { ?x <p> <b> }",
            "join": "SELECT ?x ?z WHERE { ?x <p> ?y . ?y <p> ?z }",
            "all": "SELECT ?s ?p ?o WHERE { ?s ?p ?o }",
        }
        oracle = NativeMemoryStore.from_graph(small)
        stores = {
            "db2rdf": RdfStore.from_graph(small),
            "native": oracle,
        }
        summaries = runner.run_benchmark(stores, queries, oracle, runs=2)
        for summary in summaries.values():
            assert summary.complete == 3
            assert summary.mean_seconds >= 0

    def test_expected_counts(self, small):
        oracle = NativeMemoryStore.from_graph(small)
        counts = runner.expected_counts(
            oracle, {"q": "SELECT ?s ?p ?o WHERE { ?s ?p ?o }"}
        )
        assert counts == {"q": 3}

    def test_format_summary_table(self, small):
        oracle = NativeMemoryStore.from_graph(small)
        summaries = runner.run_benchmark(
            {"native": oracle},
            {"q": "SELECT ?x WHERE { ?x <p> <b> }"},
            oracle,
            runs=1,
        )
        text = runner.format_summary_table("tiny", summaries)
        assert "tiny" in text and "native" in text and "Complete" in text

    def test_format_per_query_table(self, small):
        oracle = NativeMemoryStore.from_graph(small)
        summaries = runner.run_benchmark(
            {"native": oracle},
            {"q": "SELECT ?x WHERE { ?x <p> <b> }"},
            oracle,
            runs=1,
        )
        text = runner.format_per_query_table(summaries, ["q"])
        assert "q" in text and ("ms" in text)


class TestProfiledRuns:
    QUERIES = {
        "lookup": "SELECT ?x WHERE { ?x <p> <b> }",
        "join": "SELECT ?x ?z WHERE { ?x <p> ?y . ?y <p> ?z }",
    }

    def test_profile_attaches_operator_breakdowns(self, small):
        oracle = NativeMemoryStore.from_graph(small)
        store = RdfStore.from_graph(small)
        expected = runner.expected_counts(oracle, self.QUERIES)
        summary = runner.run_system(
            "db2rdf", store, self.QUERIES, expected, runs=1, profile=True
        )
        for outcome in summary.outcomes.values():
            assert outcome.status == runner.COMPLETE
            assert outcome.operators, outcome.query
            assert all(
                "operator" in op and "seconds" in op
                for op in outcome.operators
            )

    def test_profile_skips_stores_without_support(self, small):
        """A store whose query() rejects the profile kwarg is left alone."""
        oracle = NativeMemoryStore.from_graph(small)
        expected = runner.expected_counts(oracle, self.QUERIES)
        summary = runner.run_system(
            "flaky", _FlakyStore("ok"),
            {"q1": "SELECT ?x WHERE { ?x <p> <b> }"}, {"q1": 1},
            runs=1, profile=True,
        )
        assert summary.outcomes["q1"].operators is None
        assert expected  # oracle still consulted normally

    def test_unprofiled_outcomes_have_no_operators(self, small):
        oracle = NativeMemoryStore.from_graph(small)
        store = RdfStore.from_graph(small)
        expected = runner.expected_counts(oracle, self.QUERIES)
        summary = runner.run_system(
            "db2rdf", store, self.QUERIES, expected, runs=1
        )
        assert all(o.operators is None for o in summary.outcomes.values())

    def test_json_payload_round_trips(self, small):
        import json

        oracle = NativeMemoryStore.from_graph(small)
        store = RdfStore.from_graph(small)
        summaries = runner.run_benchmark(
            {"db2rdf": store}, self.QUERIES, oracle, runs=1, profile=True
        )
        payload = runner.summaries_to_dict("tiny", summaries)
        decoded = json.loads(json.dumps(payload))
        assert decoded["dataset"] == "tiny"
        system = decoded["systems"]["db2rdf"]
        assert system["complete"] == 2
        assert "cache" in system  # RdfStore exposes cache_info()
        for query in self.QUERIES:
            assert system["queries"][query]["operators"]

    def test_format_operator_table(self, small):
        oracle = NativeMemoryStore.from_graph(small)
        store = RdfStore.from_graph(small)
        expected = runner.expected_counts(oracle, self.QUERIES)
        summary = runner.run_system(
            "db2rdf", store, self.QUERIES, expected, runs=1, profile=True
        )
        text = runner.format_operator_table(summary.outcomes["join"])
        assert "join" in text and "operator" in text and "rows_out" in text
