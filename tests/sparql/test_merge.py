"""Node merging (§3.2.1), replaying the paper's Figure 11 outcome."""


from repro.core.stats import DatasetStatistics
from repro.sparql.algebra import PatternTree, normalize
from repro.sparql.optimizer.dataflow import build_flow
from repro.sparql.optimizer.merge import (
    MergeContext,
    MergedNode,
    merge_execution_tree,
)
from repro.sparql.optimizer.planbuilder import (
    AccessNode,
    AndNode,
    FilterNode,
    OptNode,
    OrNode,
    build_execution_tree,
)
from repro.sparql.parser import parse_sparql

from .test_algebra import FIG7


def build_plan(text, spill_direct=frozenset(), spill_reverse=frozenset(),
               stats=None):
    query = normalize(parse_sparql(text))
    tree = PatternTree.build(query.where)
    triples = list(query.where.triples())
    stats = stats or DatasetStatistics(
        total_triples=26, distinct_subjects=5, distinct_objects=26,
        top_objects={"Software": 2, "Palo_Alto": 4},
    )
    flow = build_flow(triples, tree, stats)
    execution = build_execution_tree(query.where, flow)
    ctx = MergeContext.build(tree, triples, spill_direct, spill_reverse)
    return merge_execution_tree(execution, ctx)


def collect_merged(node, out=None):
    if out is None:
        out = []
    if isinstance(node, MergedNode):
        out.append(node)
    elif isinstance(node, AndNode) or isinstance(node, OptNode):
        collect_merged(node.left, out)
        collect_merged(node.right, out)
    elif isinstance(node, OrNode):
        for branch in node.branches:
            collect_merged(branch, out)
    elif isinstance(node, FilterNode):
        collect_merged(node.child, out)
    return out


class TestFigure11:
    def test_or_and_opt_merges_found(self):
        plan = build_plan(FIG7)
        merged = collect_merged(plan)
        kinds = {}
        for node in merged:
            key = tuple(sorted(t.predicate.value for t in node.triples))
            kinds[key] = node.kind
        # {t2, t3} merge disjunctively...
        assert kinds.get(("founder", "member")) == "OR"
        # ...and {t6, t7} merge with the optional member
        opt_merge = [
            node for node in merged
            if {t.predicate.value for t in node.triples} == {"revenue", "employees"}
        ]
        assert opt_merge and opt_merge[0].members[-1].optional

    def test_t5_not_merged_with_union(self):
        """The counter-example: (t5, aco) shares entity ?y and method with
        the {t2,t3} node but mixing conjunction into a disjunction is
        semantically invalid."""
        plan = build_plan(FIG7)
        for node in collect_merged(plan):
            predicates = {t.predicate.value for t in node.triples}
            assert not ({"developer", "founder"} & predicates == {"developer", "founder"})
            if "developer" in predicates:
                assert predicates == {"developer"} or "founder" not in predicates


class TestStructuralConstraints:
    def test_subject_star_merges(self):
        plan = build_plan("SELECT * WHERE { <IBM> <HQ> ?h . <IBM> <employees> ?e }")
        merged = collect_merged(plan)
        assert len(merged) == 1 and len(merged[0].members) == 2

    def test_variable_star_merges(self):
        plan = build_plan(
            "SELECT * WHERE { ?s <HQ> ?h . ?s <employees> ?e . ?s <industry> ?i }"
        )
        merged = collect_merged(plan)
        assert any(len(node.members) == 3 for node in merged)

    def test_different_entities_do_not_merge(self):
        plan = build_plan("SELECT * WHERE { ?a <p> ?x . ?b <q> ?y }")
        assert collect_merged(plan) == []

    def test_spill_predicate_vetoes_merge(self):
        text = "SELECT * WHERE { ?s <HQ> ?h . ?s <employees> ?e }"
        merged_without = collect_merged(build_plan(text))
        merged_with = collect_merged(
            build_plan(text, spill_direct=frozenset({"employees"}))
        )
        assert merged_without and len(merged_without[0].members) == 2
        assert all(len(node.members) == 1 for node in merged_with) or not merged_with

    def test_variable_predicate_vetoes_merge(self):
        plan = build_plan("SELECT * WHERE { ?s <HQ> ?h . ?s ?p ?v }")
        for node in collect_merged(plan):
            assert len(node.members) == 1 or all(
                not isinstance(m.triple.predicate, type(None)) for m in node.members
            )

    def test_shared_value_variable_vetoes_and_merge(self):
        """?s p ?v . ?s q ?v would need cross-member equality in a single
        access; the merger declines (kept as separate accesses)."""
        plan = build_plan("SELECT * WHERE { ?s <p> ?v . ?s <q> ?v }")
        for node in collect_merged(plan):
            values = [
                m.triple.object.name
                for m in node.members
                if hasattr(m.triple.object, "name")
            ]
            assert len(values) == len(set(values)) <= 1

    def test_optional_with_shared_variable_not_merged(self):
        """The optional's object var appears elsewhere: cannot opt-merge."""
        plan = build_plan(
            "SELECT * WHERE { ?s <p> ?v . OPTIONAL { ?s <q> ?w } ?x <r> ?w }"
        )
        for node in collect_merged(plan):
            assert not any(member.optional for member in node.members)
