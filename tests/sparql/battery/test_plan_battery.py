"""The plan-quality battery (the opteryx ``sql_battery`` idiom).

For every battery query the engine's chosen plan is *executed* against
every enumerated alternative join order, under a deterministic work meter
(``Budget.ticks`` counts logical intermediate rows on the minirel
backend). The regret ratio — chosen work over best-alternative work — is
asserted per query (bounded blow-up) and as a geomean across the battery
(the same gate CI applies through ``benchmarks/check_regressions.py``).

Executing every alternative also proves a correctness property the
differential harness alone cannot: *all* enumerated orders produce the
same result multiset, so join-order choice can never change answers.
"""

import math

import pytest

from repro.core.resilience import Budget
from repro.workloads import planbattery

#: geomean regret gate, mirrored by the CI benchmark gate
GEOMEAN_REGRET_LIMIT = 1.3
#: no single query may blow up by more than this factor
SINGLE_QUERY_REGRET_LIMIT = 20.0

_QUERIES = sorted(planbattery.queries())


def _ticks(backend, compiled) -> int:
    budget = Budget(max_intermediate_rows=10**9)
    backend.execute(compiled, budget=budget)
    return max(1, budget.ticks)


def _rows(backend, compiled):
    return sorted(backend.execute(compiled)[1])


def test_battery_covers_required_shapes():
    """≥ 20 shapes; every required family is represented."""
    queries = planbattery.queries()
    assert len(queries) >= 20
    for family in ("chain", "star", "sel", "opt", "mix"):
        assert any(name.startswith(family) for name in queries), family
    # chains really are length >= 5
    chains = [q for name, q in queries.items() if name.startswith("chain")]
    assert chains and all(q.count(" . ") >= 4 for q in chains)


@pytest.mark.parametrize("name", _QUERIES)
def test_alternative_orders_agree_and_regret_is_bounded(
    name, cost_store, battery_queries, record_property
):
    """Each enumerated order returns identical results; the chosen plan's
    measured work is within the single-query regret bound."""
    sparql = battery_queries[name]
    engine = cost_store.engine
    backend = cost_store.backend

    select, plans = engine.plan_alternatives(sparql)
    assert plans, f"{name}: enumerator produced no complete order"

    chosen_sql = engine.compile(sparql)[0]
    chosen_ticks = _ticks(backend, chosen_sql)
    chosen_rows = _rows(backend, chosen_sql)

    best_ticks = chosen_ticks
    for plan in plans:
        compiled = engine.compile_with_order(select, plan)
        assert _rows(backend, compiled) == chosen_rows, (
            f"{name}: order {plan.describe()} changed results"
        )
        best_ticks = min(best_ticks, _ticks(backend, compiled))

    regret = chosen_ticks / best_ticks
    record_property("plan_regret", round(regret, 3))
    assert regret <= SINGLE_QUERY_REGRET_LIMIT, (
        f"{name}: chosen plan does {regret:.1f}x the work of the best "
        f"enumerated alternative"
    )


def test_geomean_regret_gate(cost_store, battery_queries):
    """The battery-wide geomean regret stays under the CI gate."""
    engine = cost_store.engine
    backend = cost_store.backend
    log_sum = 0.0
    measured = 0
    for name in _QUERIES:
        select, plans = engine.plan_alternatives(battery_queries[name])
        chosen_ticks = _ticks(backend, engine.compile(battery_queries[name])[0])
        best = chosen_ticks
        for plan in plans:
            best = min(best, _ticks(backend, engine.compile_with_order(select, plan)))
        log_sum += math.log(chosen_ticks / best)
        measured += 1
    geomean = math.exp(log_sum / measured)
    assert measured >= 20
    assert geomean <= GEOMEAN_REGRET_LIMIT, (
        f"geomean plan regret {geomean:.3f} exceeds {GEOMEAN_REGRET_LIMIT}"
    )
