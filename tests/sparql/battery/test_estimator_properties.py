"""Property tests for the cardinality estimator (hypothesis).

The contracts the enumerator relies on:

* estimates are **non-negative** and confidences stay in ``[0, 1]``, for
  single triples and for every join extension;
* exact estimation paths are **monotone under data growth** — adding
  triples never shrinks a scan estimate or a top-k constant's count;
* constants inside the statistics' top-k are **exact** (the Figure 6b
  contract: the outer-join fringe is priced from true counts);
* estimation is **seed-stable** — statistics built twice from the same
  graph, in any insertion order, price every pattern identically.
"""

from hypothesis import given, settings, strategies as st

from repro.core.stats import DatasetStatistics
from repro.rdf.graph import Graph
from repro.rdf.terms import Triple, URI
from repro.sparql.ast import TriplePattern, Var
from repro.sparql.optimizer.cost import CardinalityEstimator

BASE = "http://example.org/est/"
PREDICATES = [f"{BASE}p{i}" for i in range(3)]

# Small random edge lists: (subject index, predicate index, object index).
edges = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=9),
    ),
    min_size=1,
    max_size=40,
)


def make_graph(edge_list) -> Graph:
    graph = Graph()
    for s, p, o in edge_list:
        graph.add(Triple(URI(f"{BASE}s{s}"), URI(PREDICATES[p]), URI(f"{BASE}o{o}")))
    return graph


def some_patterns(edge_list) -> list[TriplePattern]:
    s, p, o = edge_list[0]
    subject, predicate, obj = URI(f"{BASE}s{s}"), URI(PREDICATES[p]), URI(f"{BASE}o{o}")
    return [
        TriplePattern(Var("x"), predicate, Var("y")),
        TriplePattern(subject, predicate, Var("y")),
        TriplePattern(Var("x"), predicate, obj),
        TriplePattern(subject, Var("p"), Var("y")),
        TriplePattern(Var("x"), Var("p"), obj),
        TriplePattern(Var("x"), Var("p"), Var("y")),
        TriplePattern(Var("x"), URI(f"{BASE}unseen"), Var("y")),
    ]


@given(edges)
@settings(max_examples=80, deadline=None)
def test_estimates_non_negative_and_confidence_bounded(edge_list):
    estimator = CardinalityEstimator(
        DatasetStatistics.from_graph(make_graph(edge_list))
    )
    state = estimator.fresh_state()
    for triple in some_patterns(edge_list):
        est = estimator.triple_estimate(triple)
        assert est.rows >= 0.0
        assert 0.0 <= est.confidence <= 1.0
        state = estimator.extend(state, triple)
        assert state.rows >= 0.0
        assert 0.0 <= state.confidence <= 1.0


@given(edges, edges)
@settings(max_examples=60, deadline=None)
def test_exact_paths_monotone_under_growth(base_edges, extra_edges):
    """Exact estimation paths (predicate scans, top-k constants, full
    scans) never shrink when the dataset grows."""
    small = CardinalityEstimator(DatasetStatistics.from_graph(make_graph(base_edges)))
    big = CardinalityEstimator(
        DatasetStatistics.from_graph(make_graph(base_edges + extra_edges))
    )
    s, p, _ = base_edges[0]
    probes = [
        TriplePattern(Var("x"), URI(PREDICATES[p]), Var("y")),
        TriplePattern(Var("x"), Var("p"), Var("y")),
        TriplePattern(URI(f"{BASE}s{s}"), Var("p"), Var("y")),
    ]
    for triple in probes:
        assert (
            big.triple_estimate(triple).rows >= small.triple_estimate(triple).rows
        )


@given(edges)
@settings(max_examples=80, deadline=None)
def test_top_k_constants_are_exact(edge_list):
    """Figure 6b: a constant inside the retained top-k is priced at its
    true count, with full confidence, when the predicate is unconstrained."""
    graph = make_graph(edge_list)
    estimator = CardinalityEstimator(DatasetStatistics.from_graph(graph))
    s, _, o = edge_list[0]
    subject, obj = URI(f"{BASE}s{s}"), URI(f"{BASE}o{o}")
    true_subject = sum(1 for _ in graph.triples_for_subject(subject))
    true_object = sum(1 for _ in graph.triples_for_object(obj))

    est = estimator.triple_estimate(TriplePattern(subject, Var("p"), Var("y")))
    assert est.rows == true_subject

    est = estimator.triple_estimate(TriplePattern(Var("x"), Var("p"), obj))
    assert est.rows == true_object


@given(edges)
@settings(max_examples=60, deadline=None)
def test_estimates_seed_stable(edge_list):
    """Same data, independent builds, reversed insertion order: every
    estimate (rows and confidence) is bit-identical. This is the property
    that makes plans reproducible across processes."""
    first = CardinalityEstimator(DatasetStatistics.from_graph(make_graph(edge_list)))
    second = CardinalityEstimator(
        DatasetStatistics.from_graph(make_graph(list(reversed(edge_list))))
    )
    for triple in some_patterns(edge_list):
        a = first.triple_estimate(triple)
        b = second.triple_estimate(triple)
        assert (a.rows, a.confidence) == (b.rows, b.confidence)
        left = first.extend(first.fresh_state(), triple)
        right = second.extend(second.fresh_state(), triple)
        assert (left.rows, left.confidence) == (right.rows, right.confidence)
