"""Differential proof that cost-based planning never changes answers.

For every battery query, four stores must return identical canonical
results: the cost-based planner and the heuristic hybrid planner on the
minirel backend, and the same pair on sqlite (PR 1's cross-engine idiom,
here crossed with the planner axis). Warm (plan-cache hit) runs must match
cold runs, and the cache books must balance afterwards.
"""

import pytest

from repro import EngineConfig, RdfStore
from repro.workloads import planbattery

_QUERIES = sorted(planbattery.queries())


@pytest.mark.parametrize("name", _QUERIES)
def test_planners_and_backends_agree(
    name,
    battery_queries,
    cost_store,
    hybrid_store,
    sqlite_store,
    sqlite_cost_store,
):
    sparql = battery_queries[name]
    stores = {
        "minirel-cost": cost_store,
        "minirel-hybrid": hybrid_store,
        "sqlite-hybrid": sqlite_store,
        "sqlite-cost": sqlite_cost_store,
    }
    results = {label: s.query(sparql).canonical() for label, s in stores.items()}
    reference = results["minirel-hybrid"]
    for label, rows in results.items():
        assert rows == reference, f"{name}: {label} diverged"
    # Warm runs (served from the plan cache) must be byte-identical.
    for label, store in stores.items():
        assert store.query(sparql).canonical() == reference, (
            f"{name}: warm {label} diverged"
        )


def test_cost_planner_was_actually_used(cost_store, battery_queries):
    """The agreement above is vacuous if the cost store silently fell back
    on everything — assert most battery plans came from the enumerator."""
    engine = cost_store.engine
    planners = {
        name: engine.compile_cached(sparql).planner
        for name, sparql in battery_queries.items()
    }
    assert set(planners.values()) <= {"cost", "cost-fallback"}
    cost_planned = [n for n, p in planners.items() if p == "cost"]
    assert len(cost_planned) >= len(planners) * 3 // 4, planners


def test_cache_books_balance(battery_data, battery_queries):
    """Fresh cost store: cold pass is all misses, warm pass all hits, and
    hits + misses + invalidations == lookups exactly."""
    store = RdfStore.from_graph(
        battery_data.graph,
        use_coloring=False,
        config=EngineConfig(optimizer="cost"),
    )
    for sparql in battery_queries.values():
        store.query(sparql)
    cold = store.cache_info()
    assert cold.misses == len(battery_queries)
    assert cold.hits == 0
    for sparql in battery_queries.values():
        store.query(sparql)
    warm = store.cache_info()
    assert warm.hits == len(battery_queries)
    assert warm.misses == cold.misses
    assert warm.lookups == warm.hits + warm.misses + warm.invalidations
