"""Low-confidence fallback and stats-epoch plan invalidation.

Two safety valves around the cost-based planner:

* when the statistics carry too little evidence (empty store, variable
  predicates), the planner must *explicitly* fall back to the heuristic
  plan — and the decision must be visible in the cached plan's ``planner``
  tag and in ``explain``;
* a commit that shifts per-predicate counts bumps the stats epoch, and
  plans compiled under the old epoch must be invalidated — with the cache
  books still balancing exactly.
"""

from repro import EngineConfig, RdfStore
from repro.rdf.graph import Graph
from repro.rdf.terms import Triple, URI
from repro.workloads import planbattery

B = planbattery.PB.base
CHAIN = (
    f"SELECT ?a ?c WHERE {{ ?a <{B}knows> ?b . ?b <{B}knows> ?c . "
    f"?c <{B}livesIn> <{B}city0> }}"
)


def cost_config(**overrides) -> EngineConfig:
    return EngineConfig(optimizer="cost", **overrides)


class TestLowConfidenceFallback:
    def test_empty_store_falls_back(self):
        """No data → no statistics → zero confidence → heuristic plan."""
        store = RdfStore.from_graph(Graph(), config=cost_config())
        plan = store.engine.compile_cached(CHAIN)
        assert plan.planner == "cost-fallback"
        assert "heuristic fallback" in store.explain(CHAIN, mode="plan")

    def test_variable_predicate_falls_back(self, battery_data):
        """Variable predicates leave the estimator nearly blind; their
        confidence sits below the default threshold."""
        store = RdfStore.from_graph(
            battery_data.graph, use_coloring=False, config=cost_config()
        )
        query = "SELECT ?s ?p ?o WHERE { ?s ?p ?o . ?o ?q ?x }"
        assert store.engine.compile_cached(query).planner == "cost-fallback"

    def test_threshold_zero_never_falls_back(self, battery_data):
        """The threshold is the knob: at 0.0 the enumerator's plan is
        always taken, even from weak evidence."""
        store = RdfStore.from_graph(
            battery_data.graph,
            use_coloring=False,
            config=cost_config(min_plan_confidence=0.0),
        )
        query = "SELECT ?s ?p ?o WHERE { ?s ?p ?o . ?o ?q ?x }"
        assert store.engine.compile_cached(query).planner == "cost"

    def test_confident_battery_plan_is_cost_based(self, battery_data):
        store = RdfStore.from_graph(
            battery_data.graph, use_coloring=False, config=cost_config()
        )
        plan = store.engine.compile_cached(CHAIN)
        assert plan.planner == "cost"
        assert "cost-based" in store.explain(CHAIN, mode="plan")

    def test_fallback_matches_heuristic_results(self, battery_data):
        """A fallback plan is the heuristic plan — same answers as the
        hybrid store, not a degraded variant."""
        cost = RdfStore.from_graph(
            battery_data.graph, use_coloring=False, config=cost_config()
        )
        hybrid = RdfStore.from_graph(battery_data.graph, use_coloring=False)
        query = f"SELECT ?s ?p ?o WHERE {{ ?s ?p ?o . ?s <{B}leads> ?co }}"
        assert cost.engine.compile_cached(query).planner == "cost-fallback"
        assert cost.query(query).canonical() == hybrid.query(query).canonical()


class TestEpochInvalidation:
    def test_commit_invalidates_cached_cost_plans(self, battery_data):
        """Commit → new epoch → the old plan is dropped on next lookup and
        recompiled against the shifted per-predicate counts."""
        store = RdfStore.from_graph(
            battery_data.graph, use_coloring=False, config=cost_config()
        )
        before_epoch = store.stats.epoch
        knows_before = store.stats.predicate_counts[f"{B}knows"]

        store.query(CHAIN)  # miss: compile + cache
        store.query(CHAIN)  # hit
        info = store.cache_info()
        assert (info.hits, info.invalidations) == (1, 0)

        with store.transaction() as txn:
            for i in range(40):
                txn.add(
                    Triple(
                        URI(f"{B}npc{i}"),
                        URI(f"{B}knows"),
                        URI(f"{B}person{i % battery_data.persons}"),
                    )
                )
        assert store.stats.epoch == before_epoch + 1
        assert store.stats.predicate_counts[f"{B}knows"] == knows_before + 40

        store.query(CHAIN)  # stale entry → invalidation + recompile
        info = store.cache_info()
        assert info.invalidations == 1
        assert info.lookups == info.hits + info.misses + info.invalidations

        store.query(CHAIN)  # the recompiled plan is cached again
        assert store.cache_info().hits == 2

    def test_recompiled_plan_sees_new_statistics(self, battery_data):
        """After the commit the plan is re-chosen from the *new* counts —
        the cached entry's epoch matches the post-commit epoch."""
        store = RdfStore.from_graph(
            battery_data.graph, use_coloring=False, config=cost_config()
        )
        store.query(CHAIN)
        with store.transaction() as txn:
            txn.add(Triple(URI(f"{B}x"), URI(f"{B}knows"), URI(f"{B}person0")))
        plan = store.engine.compile_cached(CHAIN)
        assert plan.epoch == store.stats.epoch
        assert plan.planner in ("cost", "cost-fallback")
