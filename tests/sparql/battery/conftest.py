"""Shared fixtures for the plan-quality battery.

One battery graph, loaded once per session into the stores the harnesses
compare: the cost-based planner, the heuristic hybrid planner, and a
sqlite-backed baseline.
"""

import pytest

from repro import EngineConfig, RdfStore, SqliteBackend
from repro.workloads import planbattery


@pytest.fixture(scope="session")
def battery_data():
    return planbattery.generate()


@pytest.fixture(scope="session")
def battery_queries():
    return planbattery.queries()


@pytest.fixture(scope="session")
def cost_store(battery_data):
    return RdfStore.from_graph(
        battery_data.graph,
        use_coloring=False,
        config=EngineConfig(optimizer="cost"),
    )


@pytest.fixture(scope="session")
def hybrid_store(battery_data):
    return RdfStore.from_graph(battery_data.graph, use_coloring=False)


@pytest.fixture(scope="session")
def sqlite_store(battery_data):
    return RdfStore.from_graph(
        battery_data.graph, backend=SqliteBackend(), use_coloring=False
    )


@pytest.fixture(scope="session")
def sqlite_cost_store(battery_data):
    return RdfStore.from_graph(
        battery_data.graph,
        backend=SqliteBackend(),
        use_coloring=False,
        config=EngineConfig(optimizer="cost"),
    )
