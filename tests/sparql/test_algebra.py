"""Pattern-tree machinery: normalization, LCA, the Defs 3.4–3.11 relations,
checked against the paper's Figure 7 example."""

import pytest

from repro.sparql.algebra import PatternTree, normalize
from repro.sparql.ast import (
    OptionalPattern,
    TriplePattern,
    UnionPattern,
)
from repro.sparql.parser import parse_sparql

# Figure 6(a) / Figure 7: the paper's running query.
FIG7 = """
SELECT * WHERE {
  ?x <home> <Palo_Alto> .
  { ?x <founder> ?y } UNION { ?x <member> ?y }
  { ?y <industry> <Software> .
    ?z <developer> ?y .
    ?y <revenue> ?n .
    OPTIONAL { ?y <employees> ?m } }
}
"""


@pytest.fixture
def fig7():
    query = normalize(parse_sparql(FIG7))
    tree = PatternTree.build(query.where)
    triples = {}
    for triple in query.where.triples():
        triples[triple.predicate.value] = triple
    return tree, triples


class TestNormalize:
    def test_nested_plain_group_flattens(self):
        query = normalize(parse_sparql("SELECT * WHERE { { ?x <p> ?y } }"))
        assert isinstance(query.where.elements[0], TriplePattern)

    def test_nested_group_filters_lift(self):
        query = normalize(
            parse_sparql("SELECT * WHERE { { ?x <p> ?y FILTER (?y > 1) } }")
        )
        assert len(query.where.filters) == 1

    def test_union_branches_stay_grouped(self):
        query = normalize(
            parse_sparql("SELECT * WHERE { { ?x <p> ?y } UNION { ?x <q> ?y } }")
        )
        assert isinstance(query.where.elements[0], UnionPattern)

    def test_fig7_shape(self, fig7):
        tree, triples = fig7
        root = tree.root
        kinds = [type(e).__name__ for e in root.elements]
        # t1, the union, then the nested AND's elements flattened in
        assert kinds[0] == "TriplePattern"
        assert kinds[1] == "UnionPattern"


class TestLcaAndConnections:
    def test_or_connected(self, fig7):
        tree, triples = fig7
        assert tree.or_connected(triples["founder"], triples["member"])
        assert not tree.or_connected(triples["founder"], triples["industry"])

    def test_optional_connected(self, fig7):
        tree, triples = fig7
        # employees (t7) is optional with respect to revenue (t6)
        assert tree.optional_connected(triples["revenue"], triples["employees"])
        assert not tree.optional_connected(triples["employees"], triples["revenue"])

    def test_lca_of_union_branches_is_union(self, fig7):
        tree, triples = fig7
        lca = tree.lca(triples["founder"], triples["member"])
        assert isinstance(lca, UnionPattern)

    def test_ancestors_to_lca(self, fig7):
        tree, triples = fig7
        chain = tree.ancestors_to_lca(triples["employees"], triples["revenue"])
        assert any(isinstance(a, OptionalPattern) for a in chain)


class TestMergeableDefinitions:
    def test_and_mergeable(self, fig7):
        tree, triples = fig7
        assert tree.and_mergeable(triples["industry"], triples["revenue"])
        assert not tree.and_mergeable(triples["founder"], triples["member"])

    def test_or_mergeable_fig11(self, fig7):
        """Figure 11: ORMergeable(t2, t3) holds, ORMergeable(t2, t5) fails."""
        tree, triples = fig7
        assert tree.or_mergeable(triples["founder"], triples["member"])
        assert not tree.or_mergeable(triples["founder"], triples["developer"])

    def test_opt_mergeable_fig11(self, fig7):
        """Figure 11: OPTMergeable(t6, t7) holds."""
        tree, triples = fig7
        assert tree.opt_mergeable(triples["revenue"], triples["employees"])
        # but not in the other direction, nor across the union
        assert not tree.opt_mergeable(triples["employees"], triples["revenue"])
        assert not tree.opt_mergeable(triples["founder"], triples["employees"])

    def test_mergeable_through_nested_ands_only(self):
        query = normalize(
            parse_sparql(
                "SELECT * WHERE { ?x <p> ?a { { ?x <q> ?b } UNION { ?x <r> ?c } } }"
            )
        )
        tree = PatternTree.build(query.where)
        by_pred = {t.predicate.value: t for t in query.where.triples()}
        assert not tree.and_mergeable(by_pred["p"], by_pred["q"])
