"""The TMC cost function, checked against the paper's §3.1 walkthrough."""

import pytest

from repro.core.stats import DatasetStatistics
from repro.rdf.terms import URI
from repro.sparql.ast import TriplePattern, Var
from repro.sparql.optimizer.cost import (
    ACO,
    ACS,
    SC,
    produced_vars,
    required_vars,
    triple_method_cost,
)


@pytest.fixture
def paper_stats():
    """Figure 6(b): total 26 triples, avg 5 per subject, 1 per object,
    Software appears in 2 triples."""
    return DatasetStatistics(
        total_triples=26,
        distinct_subjects=5,
        distinct_objects=26,
        top_subjects={"IBM": 7},
        top_objects={"Software": 2, "Google": 5},
    )


T4 = TriplePattern(Var("y"), URI("industry"), URI("Software"))
T5 = TriplePattern(Var("z"), URI("developer"), Var("y"))


class TestPaperWalkthrough:
    def test_tmc_t4_aco_exact(self, paper_stats):
        # "TMC(t4, aco, S) = 2 because the exact lookup cost using the
        #  object Software is known"
        assert triple_method_cost(T4, ACO, paper_stats) == 2.0

    def test_tmc_t4_sc_total(self, paper_stats):
        assert triple_method_cost(T4, SC, paper_stats) == 26.0

    def test_tmc_t4_acs_average(self, paper_stats):
        # avg triples per subject = 26/5; the paper rounds to 5
        assert triple_method_cost(T4, ACS, paper_stats) == pytest.approx(26 / 5)


class TestRequiredProduced:
    def test_required_acs_var_subject(self):
        assert required_vars(T5, ACS) == {"z"}

    def test_required_aco_var_object(self):
        assert required_vars(T5, ACO) == {"y"}

    def test_required_empty_for_constant_position(self):
        assert required_vars(T4, ACO) == frozenset()

    def test_required_empty_for_scan(self):
        assert required_vars(T5, SC) == frozenset()

    def test_produced_is_all_variables(self):
        assert produced_vars(T5, ACO) == {"z", "y"}
        assert produced_vars(T4, ACO) == {"y"}

    def test_variable_predicate_is_produced(self):
        triple = TriplePattern(Var("s"), Var("p"), Var("o"))
        assert produced_vars(triple, SC) == {"s", "p", "o"}


class TestCostFallbacks:
    def test_unknown_constant_uses_average(self, paper_stats):
        triple = TriplePattern(Var("x"), URI("p"), URI("Rareville"))
        assert triple_method_cost(triple, ACO, paper_stats) == pytest.approx(1.0)

    def test_unknown_method_rejected(self, paper_stats):
        with pytest.raises(ValueError):
            triple_method_cost(T4, "warp", paper_stats)
