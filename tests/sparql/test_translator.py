"""SPARQL-to-SQL translation details: generated SQL structure and the
DB2RDF-specific access shapes of §3.2.2 / Figures 12–13."""

import pytest

from repro import Graph, RdfStore, Triple, URI
from repro.rdf.terms import Literal
from repro.sparql import EngineConfig, query_graph


def t(s, p, o):
    obj = o if not isinstance(o, str) else URI(o)
    return Triple(URI(s), URI(p), obj)


@pytest.fixture
def store(fig1_graph):
    return RdfStore.from_graph(fig1_graph)


class TestGeneratedSqlShapes:
    def test_cte_pipeline(self, store):
        sql = store.explain(
            "SELECT ?z WHERE { ?y <industry> <Software> . ?z <developer> ?y }"
        )
        assert sql.startswith("WITH")
        assert sql.count('"RPH"') >= 2  # one access per entity

    def test_multivalued_access_joins_secondary(self, store):
        """industry is multi-valued: the access must LEFT JOIN the
        secondary table and COALESCE (Figure 13's QT4DS)."""
        sql = store.explain("SELECT ?i WHERE { <IBM> <industry> ?i }")
        assert "LEFT OUTER JOIN" in sql and "COALESCE" in sql and '"DS"' in sql

    def test_single_valued_access_skips_secondary(self, store):
        """'the access to the secondary table is avoided' for single-valued
        predicates."""
        sql = store.explain("SELECT ?hq WHERE { <IBM> <HQ> ?hq }")
        assert '"DS"' not in sql and "COALESCE" not in sql

    def test_or_merge_emits_flip(self, store):
        sql = store.explain(
            "SELECT ?y WHERE { { <Larry_Page> <founder> ?y } UNION "
            "{ <Larry_Page> <board> ?y } }"
        )
        assert "UNION ALL" in sql
        assert sql.count('"DPH"') == 1  # single merged access

    def test_optional_merge_uses_case(self, store):
        sql = store.explain(
            "SELECT ?n ?m WHERE { <Google> <employees> ?n "
            "OPTIONAL { <Google> <HQ> ?m } }"
        )
        assert sql.count('"DPH"') == 1
        assert "CASE" in sql

    def test_unmerged_optional_uses_left_join_on_rowid(self, store):
        sql = store.explain(
            "SELECT ?x ?b WHERE { ?x <founder> ?y "
            "OPTIONAL { ?z <developer> ?y . ?z <version> ?b } }"
        )
        assert "ROW_NUMBER() OVER ()" in sql
        assert "LEFT OUTER JOIN" in sql

    def test_variable_predicate_unpivots(self, store):
        sql = store.explain("SELECT ?p ?o WHERE { <IBM> ?p ?o }")
        # one UNION ALL branch per physical predicate column
        assert sql.count("UNION ALL") == store.schema.direct_columns - 1

    def test_filter_becomes_where_cte(self, store):
        sql = store.explain(
            "SELECT ?n WHERE { <IBM> <employees> ?n FILTER (?n != <x>) }"
        )
        assert "<>" in sql


class TestFilterTranslation:
    def make_store(self):
        from repro.rdf.terms import XSD_INTEGER

        graph = Graph(
            [
                t("a", "age", Literal("30", datatype=XSD_INTEGER)),
                t("b", "age", Literal("40", datatype=XSD_INTEGER)),
                t("a", "name", Literal("alice")),
                t("b", "name", Literal("bob")),
                t("c", "label", Literal("chat", lang="fr")),
                t("a", "p", "b"),
            ]
        )
        return graph, RdfStore.from_graph(graph)

    @pytest.mark.parametrize(
        "query",
        [
            "SELECT ?x WHERE { ?x <age> ?a FILTER (?a > 35) }",
            "SELECT ?x WHERE { ?x <age> ?a FILTER (?a = 40) }",
            'SELECT ?x WHERE { ?x <name> ?n FILTER (?n < "b") }',
            'SELECT ?x WHERE { ?x <name> ?n FILTER regex(?n, "^al", "i") }',
            "SELECT ?x WHERE { ?x <age> ?a FILTER (?a > 25 && ?a < 35) }",
            "SELECT ?x WHERE { ?x <age> ?a FILTER (!(?a > 35)) }",
            'SELECT ?x WHERE { ?x <label> ?l FILTER langMatches(lang(?l), "fr") }',
            'SELECT ?x WHERE { ?x <name> ?n FILTER (str(?n) = "bob") }',
            "SELECT ?x WHERE { ?x <p> ?o FILTER isURI(?o) }",
            "SELECT ?x WHERE { ?x <age> ?a FILTER (?a * 2 >= 80) }",
            "SELECT ?x WHERE { ?x <age> ?a FILTER sameTerm(?x, <b>) }",
        ],
    )
    def test_translated_filters_match_reference(self, query):
        graph, store = self.make_store()
        reference = query_graph(graph, query)
        assert store.query(query).matches(reference), query


class TestNaiveTranslator:
    def test_naive_config_still_correct(self, fig1_graph):
        from ..conftest import FIGURE6_QUERY

        naive = RdfStore.from_graph(
            fig1_graph, config=EngineConfig(optimizer="naive")
        )
        reference = query_graph(fig1_graph, FIGURE6_QUERY)
        assert naive.query(FIGURE6_QUERY).matches(reference)

    def test_merge_off_still_correct(self, fig1_graph):
        from ..conftest import FIGURE6_QUERY

        unmerged = RdfStore.from_graph(fig1_graph, config=EngineConfig(merge=False))
        reference = query_graph(fig1_graph, FIGURE6_QUERY)
        assert unmerged.query(FIGURE6_QUERY).matches(reference)

    def test_merge_off_generates_more_accesses(self, fig1_graph):
        query = "SELECT ?h ?e WHERE { <IBM> <HQ> ?h . <IBM> <employees> ?e }"
        merged = RdfStore.from_graph(fig1_graph)
        unmerged = RdfStore.from_graph(fig1_graph, config=EngineConfig(merge=False))
        assert merged.explain(query).count('"DPH"') == 1
        assert unmerged.explain(query).count('"DPH"') == 2


class TestNestedOptionals:
    """Regression: nested OPTIONALs must each use their own row-id (a shared
    __rid column produced a cross product when the outer optional matched
    multiple rows)."""

    def make_graph(self):
        g = Graph(
            [
                t("a", "p", "b"),
                t("b", "q", "c1"),
                t("b", "q", "c2"),
                t("c1", "r", "d1"),
                t("c2", "r", "d2"),
            ]
        )
        return g

    def test_nested_optional_multiplied_rows(self):
        g = self.make_graph()
        query = (
            "SELECT * WHERE { ?s <p> ?o "
            "OPTIONAL { ?o <q> ?v OPTIONAL { ?v <r> ?w } } }"
        )
        expected = query_graph(g, query)
        assert len(expected) == 2
        store = RdfStore.from_graph(g)
        assert store.query(query).matches(expected)

    def test_sibling_optionals_inside_optional(self):
        g = self.make_graph()
        g.add(t("c1", "s", "e1"))
        query = (
            "SELECT * WHERE { ?s <p> ?o OPTIONAL { ?o <q> ?v "
            "OPTIONAL { ?v <r> ?w } OPTIONAL { ?v <s> ?u } } }"
        )
        expected = query_graph(g, query)
        store = RdfStore.from_graph(g)
        assert store.query(query).matches(expected)

    def test_optional_inside_union_branch(self):
        g = self.make_graph()
        query = (
            "SELECT * WHERE { { ?s <p> ?o OPTIONAL { ?o <q> ?v } } "
            "UNION { ?s <q> ?o } }"
        )
        expected = query_graph(g, query)
        store = RdfStore.from_graph(g)
        assert store.query(query).matches(expected)
