"""The Query Plan Builder: execution-tree construction with late fusing,
replaying the paper's Figure 10."""

import pytest

from repro.core.stats import DatasetStatistics
from repro.sparql.algebra import PatternTree, normalize
from repro.sparql.optimizer.dataflow import build_flow
from repro.sparql.optimizer.planbuilder import (
    AccessNode,
    AndNode,
    EmptyNode,
    FilterNode,
    OptNode,
    OrNode,
    build_execution_tree,
    textual_execution_tree,
)
from repro.sparql.parser import parse_sparql

from .test_algebra import FIG7


def leftmost_access(node):
    while isinstance(node, (AndNode, OptNode, FilterNode)):
        node = node.left if not isinstance(node, FilterNode) else node.child
    return node


def fused_order(node, out=None):
    """Triples in left-deep fuse order."""
    if out is None:
        out = []
    if isinstance(node, AccessNode):
        out.append(node.triple)
    elif isinstance(node, AndNode):
        fused_order(node.left, out)
        fused_order(node.right, out)
    elif isinstance(node, OptNode):
        fused_order(node.left, out)
        fused_order(node.right, out)
    elif isinstance(node, OrNode):
        for branch in node.branches:
            fused_order(branch, out)
    elif isinstance(node, FilterNode):
        fused_order(node.child, out)
    return out


@pytest.fixture
def fig10():
    query = normalize(parse_sparql(FIG7))
    tree = PatternTree.build(query.where)
    stats = DatasetStatistics(
        total_triples=26,
        distinct_subjects=5,
        distinct_objects=26,
        top_objects={"Software": 2, "Palo_Alto": 4},
    )
    flow = build_flow(list(query.where.triples()), tree, stats)
    return query, flow, build_execution_tree(query.where, flow)


class TestFigure10Shape:
    def test_t4_fused_first(self, fig10):
        """The selective (t4, aco) anchors the plan."""
        _, _, tree = fig10
        anchor = leftmost_access(tree)
        assert isinstance(anchor, AccessNode)
        assert anchor.triple.predicate.value == "industry"

    def test_optional_fused_last(self, fig10):
        _, _, tree = fig10
        assert isinstance(tree, OptNode)
        optional_triples = fused_order(tree.right)
        assert [t.predicate.value for t in optional_triples] == ["employees"]

    def test_union_kept_as_or_node(self, fig10):
        _, _, tree = fig10
        def find_or(node):
            if isinstance(node, OrNode):
                return node
            for child in getattr(node, "__dict__", {}).values():
                if isinstance(child, (AccessNode, str, list)):
                    continue
                found = find_or(child)
                if found is not None:
                    return found
            return None
        or_node = find_or(tree)
        assert or_node is not None
        predicates = {t.predicate.value for b in or_node.branches for t in fused_order(b)}
        assert predicates == {"founder", "member"}

    def test_fuse_order_follows_flow_ranks(self, fig10):
        _, flow, tree = fig10
        order = fused_order(tree)
        # Units fuse in nondecreasing rank of their anchor triples, except
        # inside OR branches (whole unit placed at min rank).
        assert order[0].predicate.value == "industry"
        non_optional = [t for t in order if t.predicate.value != "employees"]
        # t5/t6 (developer/revenue) must come after the union and t1 per the
        # paper's walkthrough only if their ranks say so; at minimum the
        # anchor is first and OPTIONAL last, verified elsewhere.
        assert len(non_optional) == 6

    def test_all_triples_present_exactly_once(self, fig10):
        query, _, tree = fig10
        order = fused_order(tree)
        assert sorted(id(t) for t in order) == sorted(
            id(t) for t in query.where.triples()
        )


class TestSmallShapes:
    def make(self, text):
        query = normalize(parse_sparql(text))
        tree = PatternTree.build(query.where)
        stats = DatasetStatistics(total_triples=10, distinct_subjects=5,
                                  distinct_objects=5)
        flow = build_flow(list(query.where.triples()), tree, stats)
        return build_execution_tree(query.where, flow)

    def test_single_triple(self):
        tree = self.make("SELECT * WHERE { ?x <p> ?y }")
        assert isinstance(tree, AccessNode)

    def test_filters_wrap_group(self):
        tree = self.make("SELECT * WHERE { ?x <p> ?y FILTER (?y > 1) }")
        assert isinstance(tree, FilterNode)
        assert isinstance(tree.child, AccessNode)

    def test_empty_group_with_optional(self):
        tree = self.make("SELECT * WHERE { OPTIONAL { ?x <p> ?y } }")
        assert isinstance(tree, OptNode)
        assert isinstance(tree.left, EmptyNode)

    def test_two_optionals_in_textual_order(self):
        tree = self.make(
            "SELECT * WHERE { ?x <p> ?y OPTIONAL { ?x <q> ?a } OPTIONAL { ?x <r> ?b } }"
        )
        assert isinstance(tree, OptNode)
        assert fused_order(tree.right)[0].predicate.value == "r"
        assert isinstance(tree.left, OptNode)
        assert fused_order(tree.left.right)[0].predicate.value == "q"


class TestTextualTree:
    def test_textual_order_preserved(self):
        query = normalize(
            parse_sparql("SELECT * WHERE { ?x <p> ?y . ?y <q> ?z . ?z <r> <End> }")
        )

        def chooser(triple, bound):
            return "sc"

        tree = textual_execution_tree(query.where, chooser)
        order = [t.predicate.value for t in fused_order(tree)]
        assert order == ["p", "q", "r"]

    def test_chooser_sees_bound_variables(self):
        query = normalize(
            parse_sparql("SELECT * WHERE { ?x <p> ?y . ?y <q> ?z }")
        )
        seen = []

        def chooser(triple, bound):
            seen.append(set(bound))
            return "sc"

        textual_execution_tree(query.where, chooser)
        assert seen[0] == set()
        assert seen[1] == {"x", "y"}
