"""SPARQL parsing: terms, pattern structure, filters, modifiers."""

import pytest

from repro.rdf.terms import BNode, Literal, URI, XSD_BOOLEAN, XSD_DECIMAL, XSD_INTEGER
from repro.sparql.ast import (
    AskQuery,
    FBinary,
    FBound,
    FRegex,
    FVar,
    GroupPattern,
    OptionalPattern,
    UnionPattern,
    Var,
)
from repro.sparql.parser import SparqlSyntaxError, parse_sparql


class TestSelectClause:
    def test_variables(self):
        query = parse_sparql("SELECT ?a ?b WHERE { ?a <p> ?b }")
        assert query.variables == ["a", "b"]

    def test_star(self):
        query = parse_sparql("SELECT * WHERE { ?a <p> ?b }")
        assert query.variables is None
        assert query.projected_variables() == ["a", "b"]

    def test_distinct_and_reduced(self):
        assert parse_sparql("SELECT DISTINCT ?a WHERE { ?a <p> ?b }").distinct
        assert parse_sparql("SELECT REDUCED ?a WHERE { ?a <p> ?b }").reduced

    def test_where_keyword_optional(self):
        query = parse_sparql("SELECT ?a { ?a <p> ?b }")
        assert len(query.where.elements) == 1


class TestTerms:
    def test_prefixed_names(self):
        query = parse_sparql(
            "PREFIX ex: <http://e/> SELECT ?x WHERE { ?x ex:p ex:o }"
        )
        triple = query.where.elements[0]
        assert triple.predicate == URI("http://e/p")
        assert triple.object == URI("http://e/o")

    def test_undeclared_prefix_rejected(self):
        with pytest.raises(SparqlSyntaxError, match="undeclared prefix"):
            parse_sparql("SELECT ?x WHERE { ?x nope:p ?y }")

    def test_a_keyword(self):
        query = parse_sparql("SELECT ?x WHERE { ?x a <C> }")
        triple = query.where.elements[0]
        assert triple.predicate.value.endswith("#type")

    def test_literals(self):
        query = parse_sparql(
            'SELECT ?x WHERE { ?x <p> "plain" . ?x <q> "tagged"@en . '
            '?x <r> "5"^^<http://www.w3.org/2001/XMLSchema#integer> . '
            "?x <s> 7 . ?x <t> 2.5 . ?x <u> true }"
        )
        objects = [e.object for e in query.where.elements]
        assert objects[0] == Literal("plain")
        assert objects[1] == Literal("tagged", lang="en")
        assert objects[2] == Literal("5", datatype=XSD_INTEGER)
        assert objects[3] == Literal("7", datatype=XSD_INTEGER)
        assert objects[4] == Literal("2.5", datatype=XSD_DECIMAL)
        assert objects[5] == Literal("true", datatype=XSD_BOOLEAN)

    def test_bnode(self):
        query = parse_sparql("SELECT ?x WHERE { _:b <p> ?x }")
        assert query.where.elements[0].subject == BNode("b")

    def test_base_resolution(self):
        query = parse_sparql("BASE <http://e/> SELECT ?x WHERE { ?x <p> <o> }")
        assert query.where.elements[0].object == URI("http://e/o")


class TestPatternStructure:
    def test_predicate_object_lists(self):
        query = parse_sparql("SELECT * WHERE { ?x <p> ?a ; <q> ?b , ?c . }")
        triples = query.where.elements
        assert len(triples) == 3
        assert all(t.subject == Var("x") for t in triples)
        assert [t.predicate.value for t in triples] == ["p", "q", "q"]

    def test_union(self):
        query = parse_sparql(
            "SELECT * WHERE { { ?x <p> ?y } UNION { ?x <q> ?y } UNION { ?x <r> ?y } }"
        )
        union = query.where.elements[0]
        assert isinstance(union, UnionPattern)
        assert len(union.branches) == 3

    def test_optional(self):
        query = parse_sparql("SELECT * WHERE { ?x <p> ?y OPTIONAL { ?x <q> ?z } }")
        assert isinstance(query.where.elements[1], OptionalPattern)

    def test_nested_group(self):
        query = parse_sparql("SELECT * WHERE { { ?x <p> ?y . ?y <q> ?z } }")
        assert isinstance(query.where.elements[0], GroupPattern)

    def test_ask(self):
        query = parse_sparql("ASK { ?x <p> ?y }")
        assert isinstance(query, AskQuery)


class TestFilters:
    def test_comparison(self):
        query = parse_sparql("SELECT * WHERE { ?x <p> ?y FILTER (?y > 5) }")
        (condition,) = query.where.filters
        assert isinstance(condition, FBinary) and condition.op == ">"

    def test_logical_precedence(self):
        query = parse_sparql(
            "SELECT * WHERE { ?x <p> ?y FILTER (?y > 1 || ?y < 0 && ?y != 9) }"
        )
        (condition,) = query.where.filters
        assert condition.op == "||"
        assert condition.right.op == "&&"

    def test_bound(self):
        query = parse_sparql("SELECT * WHERE { ?x <p> ?y FILTER (!bound(?y)) }")
        (condition,) = query.where.filters
        assert condition.op == "!"
        assert isinstance(condition.operand, FBound)

    def test_regex(self):
        query = parse_sparql(
            'SELECT * WHERE { ?x <p> ?y FILTER regex(?y, "^ab", "i") }'
        )
        (condition,) = query.where.filters
        assert isinstance(condition, FRegex)
        assert condition.pattern == "^ab" and condition.flags == "i"

    def test_filter_scoped_to_group(self):
        query = parse_sparql(
            "SELECT * WHERE { ?x <p> ?y OPTIONAL { ?x <q> ?z FILTER (?z > 1) } }"
        )
        optional = query.where.elements[1]
        assert len(optional.pattern.filters) == 1
        assert not query.where.filters


class TestModifiers:
    def test_order_limit_offset(self):
        query = parse_sparql(
            "SELECT ?x WHERE { ?x <p> ?y } ORDER BY DESC(?y) ?x LIMIT 10 OFFSET 4"
        )
        assert not query.order_by[0].ascending
        assert query.order_by[1].ascending
        assert isinstance(query.order_by[1].expr, FVar)
        assert (query.limit, query.offset) == (10, 4)

    def test_comments_ignored(self):
        query = parse_sparql(
            "SELECT ?x WHERE { # star pattern\n ?x <p> ?y }"
        )
        assert len(query.where.elements) == 1

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT ?x WHERE { ?x <p> ?y } garbage")
