"""The Data Flow Builder, replaying the paper's §3.1.1 example (Figure 8)."""

import pytest

from repro.core.stats import DatasetStatistics
from repro.sparql.algebra import PatternTree, normalize
from repro.sparql.optimizer.cost import ACO, ACS, SC
from repro.sparql.optimizer.dataflow import (
    build_data_flow_graph,
    optimal_flow_tree,
)
from repro.sparql.parser import parse_sparql

from .test_algebra import FIG7


@pytest.fixture
def fig7_setup():
    query = normalize(parse_sparql(FIG7))
    tree = PatternTree.build(query.where)
    triples = {t.predicate.value: t for t in query.where.triples()}
    # Figure 6(b): Software is highly selective (2), everything else larger.
    stats = DatasetStatistics(
        total_triples=26,
        distinct_subjects=5,
        distinct_objects=26,
        top_subjects={},
        top_objects={"Software": 2, "Palo_Alto": 4},
    )
    graph = build_data_flow_graph(list(query.where.triples()), tree, stats)
    return query, tree, triples, stats, graph


def edges_between(graph, source_triple, target_triple):
    found = []
    for node, successors in graph.edges.items():
        if node.triple is source_triple:
            for successor, weight in successors:
                if successor.triple is target_triple:
                    found.append((node.method, successor.method, weight))
    return found


class TestDataFlowGraph:
    def test_root_edges_cover_no_required_nodes(self, fig7_setup):
        _, _, triples, _, graph = fig7_setup
        root_triples = {(node.triple.predicate.value, node.method)
                        for node, _ in graph.root_edges}
        # t4 by constant object, t1 by constant object, and every scan
        assert ("industry", ACO) in root_triples
        assert ("home", ACO) in root_triples
        assert all(
            method in (SC, ACO, ACS) for _, method in root_triples
        )
        assert ("developer", ACO) not in root_triples  # needs ?y

    def test_producer_feeds_consumer(self, fig7_setup):
        """(t4, aco) -> (t2, aco): t4 produces y, t2-via-object needs y."""
        _, _, triples, _, graph = fig7_setup
        found = edges_between(graph, triples["industry"], triples["founder"])
        assert (ACO, ACO) in {(a, b) for a, b, _ in found}

    def test_no_edges_between_or_branches(self, fig7_setup):
        _, _, triples, _, graph = fig7_setup
        assert not edges_between(graph, triples["founder"], triples["member"])
        assert not edges_between(graph, triples["member"], triples["founder"])

    def test_optional_producer_excluded(self, fig7_setup):
        """t7 (employees, optional) may not feed t6 (revenue)."""
        _, _, triples, _, graph = fig7_setup
        assert not edges_between(graph, triples["employees"], triples["revenue"])
        # but the required t6 may feed the optional t7
        assert edges_between(graph, triples["revenue"], triples["employees"])


class TestOptimalFlowTree:
    def test_covers_every_triple_once(self, fig7_setup):
        query, _, _, _, graph = fig7_setup
        flow = optimal_flow_tree(graph)
        triples = list(query.where.triples())
        assert len(flow.order) == len(triples)
        assert {id(node.triple) for node in flow.order} == {id(t) for t in triples}

    def test_starts_with_cheapest_root(self, fig7_setup):
        """The paper: root -> (t4, aco) with weight 2 is chosen first."""
        _, _, triples, _, graph = fig7_setup
        flow = optimal_flow_tree(graph)
        first = flow.order[0]
        assert first.triple is triples["industry"]
        assert first.method == ACO

    def test_flow_respects_dependencies(self, fig7_setup):
        """Every non-root node's parent precedes it in the order."""
        _, _, _, _, graph = fig7_setup
        flow = optimal_flow_tree(graph)
        positions = {node: i for i, node in enumerate(flow.order)}
        for node, parent in flow.parent.items():
            if parent is not None:
                assert positions[parent] < positions[node]

    def test_rank_and_method_accessors(self, fig7_setup):
        _, _, triples, _, graph = fig7_setup
        flow = optimal_flow_tree(graph)
        assert flow.rank_of(triples["industry"]) == 0
        assert flow.method_of(triples["industry"]) == ACO

    def test_selective_constant_beats_scan(self, fig7_setup):
        """No scan should appear: every triple is reachable via lookups."""
        _, _, _, _, graph = fig7_setup
        flow = optimal_flow_tree(graph)
        assert all(node.method != SC for node in flow.order)


class TestRestrictedMethods:
    def test_scan_fallback_for_disconnected(self, fig7_setup):
        """With only acs available, object-constant triples can't start the
        flow; the fallback still covers everything via scans."""
        query, tree, _, stats, _ = fig7_setup
        graph = build_data_flow_graph(
            list(query.where.triples()), tree, stats, methods=(ACS, SC)
        )
        flow = optimal_flow_tree(graph)
        assert len(flow.order) == len(list(query.where.triples()))
